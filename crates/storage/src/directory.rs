//! Segment metadata: the `<Tmin-insertion, Tmax-deletion, start-page>`
//! directory of thesis §4.2/§6.1.1, extended with a max-insertion bound.
//!
//! Every database object is partitioned by insertion time into *segments* —
//! contiguous page ranges of its heap file. Each segment is annotated with:
//!
//! * `tmin_insert` — smallest committed insertion timestamp in the segment
//!   (unset until the first insert commits);
//! * `tmax_insert` — largest committed insertion timestamp. The thesis
//!   derives an upper bound from the *next* segment's `Tmin`, but with
//!   commit-time timestamp assignment a transaction that inserted into
//!   segment *i* can commit after segment *i+1* has already received
//!   commits, so the derived bound is not sound; tracking the maximum
//!   explicitly is, and costs 8 bytes per segment.
//! * `tmax_delete` — most recent time a tuple in the segment was deleted or
//!   updated (zero if never).
//!
//! These annotations let the three recovery range predicates
//! (`insertion-time <= T`, `insertion-time > T`, `deletion-time > T`) prune
//! whole segments (§4.2).
//!
//! The directory is persisted in a chain of header pages at the front of the
//! heap file. **Durability invariant**: the on-disk directory is rewritten
//! before any data page whose segment annotations have advanced is flushed,
//! so that after a crash the on-disk annotations are never *behind* the
//! on-disk data — stale-small `tmax_delete`/`tmax_insert` would make Phase 1
//! and Phase 2 skip segments that still need scanning. The buffer pool calls
//! [`Directory::is_stale`] / persist hooks to enforce this.

use crate::file::TableFile;
use harbor_common::config::PAGE_SIZE;
use harbor_common::{DbError, DbResult, SegmentNo, Timestamp};

/// Annotations and extent of one segment.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SegmentMeta {
    /// Smallest committed insertion timestamp ([`Timestamp::UNCOMMITTED`]
    /// until the first commit touches the segment).
    pub tmin_insert: Timestamp,
    /// Largest committed insertion timestamp ([`Timestamp::ZERO`] until the
    /// first commit).
    pub tmax_insert: Timestamp,
    /// Most recent deletion/update time ([`Timestamp::ZERO`] if none).
    pub tmax_delete: Timestamp,
    /// First data page of the segment.
    pub start_page: u32,
    /// Data pages currently allocated to the segment.
    pub page_count: u32,
}

impl SegmentMeta {
    fn new(start_page: u32) -> Self {
        SegmentMeta {
            tmin_insert: Timestamp::UNCOMMITTED,
            tmax_insert: Timestamp::ZERO,
            tmax_delete: Timestamp::ZERO,
            start_page,
            page_count: 0,
        }
    }

    /// Page numbers covered by this segment.
    pub fn pages(&self) -> std::ops::Range<u32> {
        self.start_page..self.start_page + self.page_count
    }

    pub fn contains_page(&self, page_no: u32) -> bool {
        self.pages().contains(&page_no)
    }
}

/// Segment-prunable range predicates on the two timestamp columns (§4.2).
/// `None` bounds are unconstrained. All present bounds must hold
/// simultaneously for a segment to survive pruning.
#[derive(Clone, Copy, Debug, Default)]
pub struct ScanBounds {
    /// Keep segments that may contain committed tuples with
    /// `insertion_time <= t`.
    pub ins_at_or_before: Option<Timestamp>,
    /// Keep segments that may contain committed tuples with
    /// `insertion_time > t`.
    pub ins_after: Option<Timestamp>,
    /// Keep segments that may contain tuples with `deletion_time > t`.
    pub del_after: Option<Timestamp>,
    /// Also keep segments that may hold uncommitted tuples (recovery
    /// Phase 1's `insertion_time = uncommitted` disjunct). Expressed as the
    /// lowest segment index that can contain them, recorded at checkpoint
    /// time; `None` disables the disjunct.
    pub uncommitted_from_segment: Option<u32>,
}

impl ScanBounds {
    /// Unbounded: scan everything.
    pub fn all() -> Self {
        ScanBounds::default()
    }

    pub fn inserted_at_or_before(t: Timestamp) -> Self {
        ScanBounds {
            ins_at_or_before: Some(t),
            ..Default::default()
        }
    }

    pub fn inserted_after(t: Timestamp) -> Self {
        ScanBounds {
            ins_after: Some(t),
            ..Default::default()
        }
    }

    pub fn deleted_after(t: Timestamp) -> Self {
        ScanBounds {
            del_after: Some(t),
            ..Default::default()
        }
    }

    /// Does segment `idx` with metadata `m` possibly match?
    pub fn segment_may_match(&self, idx: u32, m: &SegmentMeta) -> bool {
        if let Some(from) = self.uncommitted_from_segment {
            if idx >= from {
                return true; // may hold uncommitted tuples: always scanned
            }
        }
        if let Some(t) = self.ins_at_or_before {
            // No committed tuple at or before t: tmin unset or > t.
            if m.tmin_insert > t {
                return false;
            }
        }
        if let Some(t) = self.ins_after {
            if m.tmax_insert <= t {
                return false;
            }
        }
        if let Some(t) = self.del_after {
            if m.tmax_delete <= t {
                return false;
            }
        }
        true
    }
}

const MAGIC: u32 = 0x4842_5347; // "HBSG"
const HDR_MAGIC: usize = 0;
const HDR_TUPLE_SIZE: usize = 4;
const HDR_ENTRIES: usize = 8;
const HDR_NEXT: usize = 10; // next header page number, 0 = none
const HDR_LEN: usize = 14;
const ENTRY_LEN: usize = 32;
const ENTRIES_PER_PAGE: usize = (PAGE_SIZE - HDR_LEN) / ENTRY_LEN;

/// In-memory segment directory plus its persistence state.
#[derive(Debug)]
pub struct Directory {
    tuple_size: u32,
    segments: Vec<SegmentMeta>,
    /// Page numbers of the header-page chain; `[0]` is always page 0.
    header_pages: Vec<u32>,
    /// Copy of `segments` as last persisted, for staleness checks.
    persisted: Vec<SegmentMeta>,
}

impl Directory {
    /// Fresh directory with one empty segment. Writes the initial header
    /// page so the file is immediately reopenable.
    pub fn create(file: &TableFile, tuple_size: u32) -> DbResult<Self> {
        let mut dir = Directory {
            tuple_size,
            segments: vec![SegmentMeta::new(1)], // page 0 is the header
            header_pages: vec![0],
            persisted: Vec::new(),
        };
        dir.persist(file)?;
        Ok(dir)
    }

    /// Loads the directory from the header-page chain.
    pub fn load(file: &TableFile, expect_tuple_size: u32) -> DbResult<Self> {
        let mut segments = Vec::new();
        let mut header_pages = Vec::new();
        let mut page_no = 0u32;
        loop {
            header_pages.push(page_no);
            let page = file.read_page(page_no)?;
            let magic = u32::from_le_bytes(page[HDR_MAGIC..HDR_MAGIC + 4].try_into().unwrap());
            if magic != MAGIC {
                return Err(DbError::corrupt(format!(
                    "bad segment directory magic on page {page_no}"
                )));
            }
            let ts =
                u32::from_le_bytes(page[HDR_TUPLE_SIZE..HDR_TUPLE_SIZE + 4].try_into().unwrap());
            if ts != expect_tuple_size {
                return Err(DbError::corrupt(format!(
                    "directory tuple size {ts} does not match schema width {expect_tuple_size}"
                )));
            }
            let n =
                u16::from_le_bytes(page[HDR_ENTRIES..HDR_ENTRIES + 2].try_into().unwrap()) as usize;
            if n > ENTRIES_PER_PAGE {
                return Err(DbError::corrupt("directory entry count out of range"));
            }
            for i in 0..n {
                let off = HDR_LEN + i * ENTRY_LEN;
                let e = &page[off..off + ENTRY_LEN];
                segments.push(SegmentMeta {
                    tmin_insert: Timestamp(u64::from_le_bytes(e[0..8].try_into().unwrap())),
                    tmax_insert: Timestamp(u64::from_le_bytes(e[8..16].try_into().unwrap())),
                    tmax_delete: Timestamp(u64::from_le_bytes(e[16..24].try_into().unwrap())),
                    start_page: u32::from_le_bytes(e[24..28].try_into().unwrap()),
                    page_count: u32::from_le_bytes(e[28..32].try_into().unwrap()),
                });
            }
            let next = u32::from_le_bytes(page[HDR_NEXT..HDR_NEXT + 4].try_into().unwrap());
            if next == 0 {
                break;
            }
            page_no = next;
        }
        if segments.is_empty() {
            return Err(DbError::corrupt("directory has no segments"));
        }
        let persisted = segments.clone();
        Ok(Directory {
            tuple_size: expect_tuple_size,
            segments,
            header_pages,
            persisted,
        })
    }

    pub fn segments(&self) -> &[SegmentMeta] {
        &self.segments
    }

    pub fn num_segments(&self) -> u32 {
        self.segments.len() as u32
    }

    pub fn segment(&self, no: SegmentNo) -> Option<&SegmentMeta> {
        self.segments.get(no.0 as usize)
    }

    pub fn last_index(&self) -> u32 {
        self.segments.len() as u32 - 1
    }

    /// The segment owning `page_no`, if any.
    pub fn segment_of_page(&self, page_no: u32) -> Option<SegmentNo> {
        // Segments are ordered by start page; binary search.
        let idx = self
            .segments
            .partition_point(|m| m.start_page <= page_no)
            .checked_sub(1)?;
        let m = &self.segments[idx];
        m.contains_page(page_no).then_some(SegmentNo(idx as u32))
    }

    /// First page number not yet used by any segment or header page.
    pub fn next_free_page(&self) -> u32 {
        let seg_end = self
            .segments
            .last()
            .map(|m| m.start_page + m.page_count)
            .unwrap_or(1);
        let hdr_end = self.header_pages.iter().map(|&p| p + 1).max().unwrap_or(1);
        seg_end.max(hdr_end)
    }

    /// Allocates one more data page to the *last* segment, returning its
    /// page number. Caller must have checked the segment has room. A
    /// directory with no segments is corrupt (bootstrap always creates
    /// one), reported as a typed error rather than a panic so a worker
    /// thread serving a deadline-bounded request can answer instead of
    /// dying.
    pub fn allocate_page(&mut self) -> DbResult<u32> {
        let page = self.next_free_page();
        let last = self
            .segments
            .last_mut()
            .ok_or_else(|| DbError::corrupt("directory has no segments to allocate into"))?;
        debug_assert_eq!(page, last.start_page + last.page_count);
        last.page_count += 1;
        Ok(page)
    }

    /// `true` once the last segment has reached the per-segment page budget
    /// and a new segment is needed for further inserts (§4.2: "when a
    /// segment becomes full, the executor creates a new segment").
    pub fn last_segment_full(&self, segment_pages: u32) -> bool {
        self.segments
            .last()
            .map(|m| m.page_count >= segment_pages)
            .unwrap_or(true)
    }

    /// Creates a new (empty) last segment. Allocates another header page
    /// first when the chain is out of entry room, keeping segment page
    /// ranges contiguous. Writes any new header page through immediately.
    pub fn create_segment(&mut self, file: &TableFile) -> DbResult<SegmentNo> {
        let capacity = self.header_pages.len() * ENTRIES_PER_PAGE;
        let mut start = self.next_free_page();
        if self.segments.len() + 1 > capacity {
            // Chain a new header page at `start`; the data segment begins
            // one page later.
            self.header_pages.push(start);
            start += 1;
        }
        self.segments.push(SegmentMeta::new(start));
        self.persist(file)?;
        Ok(SegmentNo(self.segments.len() as u32 - 1))
    }

    /// Drops the oldest segment (the "bulk drop" feature of §4.2). The pages
    /// are left in place on disk but are no longer reachable; their space is
    /// reclaimed when the file is rewritten offline. Returns its metadata.
    pub fn drop_oldest(&mut self, file: &TableFile) -> DbResult<Option<SegmentMeta>> {
        if self.segments.len() <= 1 {
            return Ok(None); // never drop the active insert segment
        }
        let dropped = self.segments.remove(0);
        self.persist(file)?;
        Ok(Some(dropped))
    }

    /// Records a committed insertion at `ts` into the segment owning
    /// `page_no`.
    pub fn note_insert_commit(&mut self, page_no: u32, ts: Timestamp) {
        if let Some(SegmentNo(idx)) = self.segment_of_page(page_no) {
            let m = &mut self.segments[idx as usize];
            if m.tmin_insert > ts {
                m.tmin_insert = ts;
            }
            if m.tmax_insert < ts {
                m.tmax_insert = ts;
            }
        }
    }

    /// Records a deletion/update at `ts` of a tuple in the segment owning
    /// `page_no`.
    pub fn note_delete(&mut self, page_no: u32, ts: Timestamp) {
        if let Some(SegmentNo(idx)) = self.segment_of_page(page_no) {
            let m = &mut self.segments[idx as usize];
            if m.tmax_delete < ts {
                m.tmax_delete = ts;
            }
        }
    }

    /// Segments (index, meta) that survive pruning under `bounds`.
    pub fn prune(&self, bounds: &ScanBounds) -> Vec<(SegmentNo, SegmentMeta)> {
        self.segments
            .iter()
            .enumerate()
            .filter(|(i, m)| bounds.segment_may_match(*i as u32, m))
            .map(|(i, m)| (SegmentNo(i as u32), *m))
            .collect()
    }

    /// `true` when the on-disk directory lags the in-memory one for the
    /// segment owning `page_no` — flushing that data page first would break
    /// the durability invariant.
    pub fn is_stale(&self, page_no: u32) -> bool {
        match self.segment_of_page(page_no) {
            Some(SegmentNo(idx)) => match self.persisted.get(idx as usize) {
                Some(p) => p != &self.segments[idx as usize],
                None => true,
            },
            // Page not in any segment (a header page): never stale.
            None => false,
        }
    }

    /// Rewrites the header-page chain.
    pub fn persist(&mut self, file: &TableFile) -> DbResult<()> {
        for (chunk_idx, chunk) in self
            .segments
            .chunks(ENTRIES_PER_PAGE)
            .chain(self.segments.is_empty().then_some([].as_slice()))
            .enumerate()
        {
            let page_no = *self.header_pages.get(chunk_idx).ok_or_else(|| {
                DbError::internal("directory grew past its header chain without allocation")
            })?;
            let mut page = [0u8; PAGE_SIZE];
            page[HDR_MAGIC..HDR_MAGIC + 4].copy_from_slice(&MAGIC.to_le_bytes());
            page[HDR_TUPLE_SIZE..HDR_TUPLE_SIZE + 4]
                .copy_from_slice(&self.tuple_size.to_le_bytes());
            page[HDR_ENTRIES..HDR_ENTRIES + 2].copy_from_slice(&(chunk.len() as u16).to_le_bytes());
            let next = self.header_pages.get(chunk_idx + 1).copied().unwrap_or(0);
            page[HDR_NEXT..HDR_NEXT + 4].copy_from_slice(&next.to_le_bytes());
            for (i, m) in chunk.iter().enumerate() {
                let off = HDR_LEN + i * ENTRY_LEN;
                page[off..off + 8].copy_from_slice(&m.tmin_insert.0.to_le_bytes());
                page[off + 8..off + 16].copy_from_slice(&m.tmax_insert.0.to_le_bytes());
                page[off + 16..off + 24].copy_from_slice(&m.tmax_delete.0.to_le_bytes());
                page[off + 24..off + 28].copy_from_slice(&m.start_page.to_le_bytes());
                page[off + 28..off + 32].copy_from_slice(&m.page_count.to_le_bytes());
            }
            file.write_page(page_no, &page)?;
        }
        self.persisted = self.segments.clone();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harbor_common::{DiskProfile, Metrics};
    use std::path::PathBuf;

    fn temp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("harbor-dir-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(format!("{name}-{}.tbl", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn file(path: &PathBuf) -> TableFile {
        TableFile::create(path, DiskProfile::fast(), Metrics::new()).unwrap()
    }

    #[test]
    fn create_persist_load_round_trip() {
        let path = temp("round");
        let f = file(&path);
        let mut d = Directory::create(&f, 64).unwrap();
        let p0 = d.allocate_page().unwrap();
        assert_eq!(p0, 1);
        d.note_insert_commit(p0, Timestamp(10));
        d.note_delete(p0, Timestamp(12));
        d.persist(&f).unwrap();
        let d2 = Directory::load(&f, 64).unwrap();
        assert_eq!(d2.segments(), d.segments());
        assert_eq!(d2.segments()[0].tmin_insert, Timestamp(10));
        assert_eq!(d2.segments()[0].tmax_delete, Timestamp(12));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_rejects_wrong_tuple_size() {
        let path = temp("wrongsize");
        let f = file(&path);
        Directory::create(&f, 64).unwrap();
        assert!(Directory::load(&f, 72).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn segment_growth_and_page_mapping() {
        let path = temp("grow");
        let f = file(&path);
        let mut d = Directory::create(&f, 64).unwrap();
        for _ in 0..3 {
            d.allocate_page().unwrap();
        }
        let s1 = d.create_segment(&f).unwrap();
        assert_eq!(s1, SegmentNo(1));
        let p = d.allocate_page().unwrap();
        assert_eq!(d.segment_of_page(p), Some(SegmentNo(1)));
        assert_eq!(d.segment_of_page(1), Some(SegmentNo(0)));
        assert_eq!(
            d.segment_of_page(0),
            None,
            "header page belongs to no segment"
        );
        assert_eq!(d.segment_of_page(999), None);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn header_chain_extends_past_one_page() {
        let path = temp("chain");
        let f = file(&path);
        let mut d = Directory::create(&f, 64).unwrap();
        // Force more segments than one header page can hold.
        for _ in 0..ENTRIES_PER_PAGE + 5 {
            d.allocate_page().unwrap();
            d.create_segment(&f).unwrap();
        }
        assert!(d.header_pages.len() >= 2);
        let d2 = Directory::load(&f, 64).unwrap();
        assert_eq!(d2.num_segments(), d.num_segments());
        // Segment ranges stay disjoint and avoid the header pages.
        for (i, m) in d2.segments().iter().enumerate() {
            for h in &d2.header_pages {
                assert!(!m.contains_page(*h), "segment {i} overlaps header page {h}");
            }
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn pruning_implements_the_three_range_predicates() {
        let path = temp("prune");
        let f = file(&path);
        let mut d = Directory::create(&f, 64).unwrap();
        // Segment 0: insertions committed in [1, 5], deletion at 7.
        let p = d.allocate_page().unwrap();
        d.note_insert_commit(p, Timestamp(1));
        d.note_insert_commit(p, Timestamp(5));
        d.note_delete(p, Timestamp(7));
        // Segment 1: insertions in [6, 9], no deletions.
        d.create_segment(&f).unwrap();
        let p = d.allocate_page().unwrap();
        d.note_insert_commit(p, Timestamp(6));
        d.note_insert_commit(p, Timestamp(9));
        // Segment 2: brand new, nothing committed.
        d.create_segment(&f).unwrap();
        d.allocate_page().unwrap();

        let hits =
            |b: ScanBounds| -> Vec<u32> { d.prune(&b).into_iter().map(|(s, _)| s.0).collect() };
        assert_eq!(
            hits(ScanBounds::inserted_at_or_before(Timestamp(5))),
            vec![0]
        );
        assert_eq!(
            hits(ScanBounds::inserted_at_or_before(Timestamp(8))),
            vec![0, 1]
        );
        assert_eq!(hits(ScanBounds::inserted_after(Timestamp(5))), vec![1]);
        assert_eq!(hits(ScanBounds::inserted_after(Timestamp(0))), vec![0, 1]);
        assert_eq!(hits(ScanBounds::deleted_after(Timestamp(6))), vec![0]);
        assert_eq!(
            hits(ScanBounds::deleted_after(Timestamp(7))),
            Vec::<u32>::new()
        );
        // Phase 1 style: inserted after 5 OR possibly-uncommitted from seg 2.
        let b = ScanBounds {
            ins_after: Some(Timestamp(5)),
            uncommitted_from_segment: Some(2),
            ..Default::default()
        };
        assert_eq!(hits(b), vec![1, 2]);
        assert_eq!(hits(ScanBounds::all()), vec![0, 1, 2]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn staleness_tracks_unpersisted_annotation_changes() {
        let path = temp("stale");
        let f = file(&path);
        let mut d = Directory::create(&f, 64).unwrap();
        let p = d.allocate_page().unwrap();
        assert!(d.is_stale(p), "page allocation changed the meta");
        d.persist(&f).unwrap();
        assert!(!d.is_stale(p));
        d.note_delete(p, Timestamp(3));
        assert!(d.is_stale(p));
        d.persist(&f).unwrap();
        assert!(!d.is_stale(p));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bulk_drop_removes_oldest_segment_only() {
        let path = temp("drop");
        let f = file(&path);
        let mut d = Directory::create(&f, 64).unwrap();
        let p0 = d.allocate_page().unwrap();
        d.note_insert_commit(p0, Timestamp(1));
        d.create_segment(&f).unwrap();
        d.allocate_page().unwrap();
        let dropped = d.drop_oldest(&f).unwrap().unwrap();
        assert_eq!(dropped.tmin_insert, Timestamp(1));
        assert_eq!(d.num_segments(), 1);
        // The lone remaining segment is never dropped.
        assert!(d.drop_oldest(&f).unwrap().is_none());
        std::fs::remove_file(&path).unwrap();
    }
}
