//! A table's on-disk representation: a segmented heap file (§4.2, §6.1.1).
//!
//! One file per table. Page 0 (plus chained pages as the table grows) holds
//! the segment directory; the remaining pages are slotted heap pages of one
//! fixed tuple width. Inserts always target the *last* segment; when it
//! reaches its page budget a new segment is created. Dense packing: freed
//! slots in the last segment are reused before new pages are appended,
//! tracked by an insert hint.
//!
//! This type owns only durable state and in-memory metadata; page contents
//! in flight live in the buffer pool, which calls back into
//! [`SegmentedHeapFile::write_page`] (enforcing the directory durability
//! invariant) and [`SegmentedHeapFile::read_page`].

use crate::directory::{Directory, ScanBounds, SegmentMeta};
use crate::file::TableFile;
use crate::page::Page;
use harbor_common::config::PAGE_SIZE;
use harbor_common::{
    DbResult, DiskProfile, Metrics, PageId, SegmentNo, TableId, Timestamp, TupleDesc,
};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::path::Path;

/// Per-page timestamp summary (zone map): min/max bounds over the raw
/// insertion/deletion timestamps of a page's occupied slots, computed from
/// fixed offsets without decoding tuples. Scans consult it to classify a
/// whole page as fully visible (skip per-row admission) or fully dead (skip
/// the page read entirely) for a given read mode.
///
/// **Validity protocol.** An entry always describes the page's *current
/// frame content*: the buffer pool stores entries only while holding the
/// page's frame latch (on flush, or lazily from a scan under the read
/// latch), and invalidates under the frame write latch immediately after
/// every mutation. A page whose disk image fails its checksum also loses
/// its entry ([`SegmentedHeapFile::read_page`]) so a stale summary can
/// never mask a corrupt page from the read path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ZoneEntry {
    /// Occupied slots at summary time.
    pub rows: u32,
    /// Any slot with an uncommitted insertion timestamp.
    pub any_uncommitted: bool,
    /// Max committed insertion timestamp (ZERO if none committed).
    pub ins_max: Timestamp,
    /// Raw minimum deletion timestamp; ZERO counts, so `min_del > ZERO`
    /// means every occupied slot has a deletion set.
    pub min_del: Timestamp,
    /// Raw maximum deletion timestamp.
    pub max_del: Timestamp,
    /// Minimum *nonzero* deletion timestamp (`u64::MAX` if none).
    pub min_nonzero_del: Timestamp,
}

/// Little-endian timestamp word at `off` (the slice is always 8 bytes —
/// offsets come from the page's own slot geometry).
#[inline]
fn ts_word(data: &[u8], off: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&data[off..off + 8]);
    u64::from_le_bytes(b)
}

impl ZoneEntry {
    /// Summarizes a page by walking occupancy words over the raw timestamp
    /// columns at their fixed slot offsets (no tuple decode).
    pub fn compute(page: &Page) -> ZoneEntry {
        let tsize = page.tuple_size();
        let data = page.slot_data();
        let mut z = ZoneEntry {
            rows: 0,
            any_uncommitted: false,
            ins_max: Timestamp::ZERO,
            min_del: Timestamp(u64::MAX),
            max_del: Timestamp::ZERO,
            min_nonzero_del: Timestamp(u64::MAX),
        };
        for chunk in 0..page.slot_count().div_ceil(64) {
            let mut occ = page.occupancy_word(chunk);
            while occ != 0 {
                let slot = chunk * 64 + occ.trailing_zeros() as usize;
                occ &= occ - 1;
                let off = slot * tsize;
                let ins = ts_word(data, off);
                let del = ts_word(data, off + 8);
                z.rows += 1;
                if ins == u64::MAX {
                    z.any_uncommitted = true;
                } else {
                    z.ins_max = z.ins_max.max(Timestamp(ins));
                }
                z.min_del = z.min_del.min(Timestamp(del));
                z.max_del = z.max_del.max(Timestamp(del));
                if del != 0 {
                    z.min_nonzero_del = z.min_nonzero_del.min(Timestamp(del));
                }
            }
        }
        if z.rows == 0 {
            z.min_del = Timestamp::ZERO;
        }
        z
    }
}

/// One table's segmented heap file plus its in-memory metadata.
pub struct SegmentedHeapFile {
    id: TableId,
    /// Stored schema (includes the two reserved version columns).
    desc: TupleDesc,
    file: TableFile,
    dir: Mutex<Directory>,
    /// Page budget per segment.
    segment_pages: u32,
    /// Lowest page of the last segment that may have a free slot.
    insert_hint: Mutex<Option<u32>>,
    /// Per-page timestamp summaries (see [`ZoneEntry`]). A leaf lock:
    /// nothing is acquired while it is held.
    zones: Mutex<HashMap<u32, ZoneEntry>>,
}

impl SegmentedHeapFile {
    /// Creates a fresh table file at `path`.
    pub fn create(
        path: impl AsRef<Path>,
        id: TableId,
        desc: TupleDesc,
        segment_pages: u32,
        disk: DiskProfile,
        metrics: Metrics,
    ) -> DbResult<Self> {
        assert!(
            desc.has_version_columns(),
            "stored schemas carry version columns"
        );
        assert!(segment_pages >= 1);
        let file = TableFile::create(path, disk, metrics)?;
        file.set_table(id);
        let dir = Directory::create(&file, desc.byte_width() as u32)?;
        Ok(SegmentedHeapFile {
            id,
            desc,
            file,
            dir: Mutex::new(dir),
            segment_pages,
            insert_hint: Mutex::new(None),
            zones: Mutex::new(HashMap::new()),
        })
    }

    /// Opens an existing table file, validating the schema width.
    pub fn open(
        path: impl AsRef<Path>,
        id: TableId,
        desc: TupleDesc,
        segment_pages: u32,
        disk: DiskProfile,
        metrics: Metrics,
    ) -> DbResult<Self> {
        assert!(
            desc.has_version_columns(),
            "stored schemas carry version columns"
        );
        let file = TableFile::open(path, disk, metrics)?;
        file.set_table(id);
        let dir = Directory::load(&file, desc.byte_width() as u32)?;
        Ok(SegmentedHeapFile {
            id,
            desc,
            file,
            dir: Mutex::new(dir),
            segment_pages,
            insert_hint: Mutex::new(None),
            zones: Mutex::new(HashMap::new()),
        })
    }

    pub fn id(&self) -> TableId {
        self.id
    }

    /// Attaches a site-wide disk-fault plan to this table's page I/O
    /// (chaos runs only; see [`crate::fault`]).
    pub fn arm_disk_faults(&self, plan: std::sync::Arc<crate::fault::DiskFaultPlan>) {
        self.file.arm_faults(plan);
    }

    /// Stored schema (with version columns).
    pub fn desc(&self) -> &TupleDesc {
        &self.desc
    }

    pub fn tuple_size(&self) -> usize {
        self.desc.byte_width()
    }

    pub fn segment_pages(&self) -> u32 {
        self.segment_pages
    }

    /// Snapshot of all segment metadata.
    pub fn segments(&self) -> Vec<SegmentMeta> {
        self.dir.lock().segments().to_vec()
    }

    pub fn num_segments(&self) -> u32 {
        self.dir.lock().num_segments()
    }

    /// Index of the current (last) segment.
    pub fn last_segment(&self) -> SegmentNo {
        SegmentNo(self.dir.lock().last_index())
    }

    /// Segments surviving timestamp pruning (§4.2).
    pub fn prune(&self, bounds: &ScanBounds) -> Vec<(SegmentNo, SegmentMeta)> {
        self.dir.lock().prune(bounds)
    }

    /// The segment owning `page_no`.
    pub fn segment_of_page(&self, page_no: u32) -> Option<SegmentNo> {
        self.dir.lock().segment_of_page(page_no)
    }

    /// Reads a data page from disk. A page past EOF or an all-zero hole is a
    /// page that existed in memory but was never flushed before a crash —
    /// it reads as a fresh, empty page.
    pub fn read_page(&self, page_no: u32) -> DbResult<Page> {
        match self.file.read_page(page_no) {
            Ok(bytes) => {
                if bytes.iter().all(|&b| b == 0) {
                    Ok(Page::init(self.tuple_size()))
                } else {
                    Page::from_bytes(bytes, self.tuple_size())
                }
            }
            Err(harbor_common::DbError::NoSuchPage(_)) => Ok(Page::init(self.tuple_size())),
            Err(e) => {
                // A page we can no longer read (torn write, bit flip, I/O
                // fault) has an untrustworthy summary: drop it so no stale
                // min/max masks the corrupt page out of the read/scrub path.
                self.invalidate_zone(page_no);
                Err(e)
            }
        }
    }

    /// The current zone-map entry for `page_no`, if one is valid.
    pub fn zone_entry(&self, page_no: u32) -> Option<ZoneEntry> {
        self.zones.lock().get(&page_no).copied()
    }

    /// Stores a freshly computed summary for `page_no`. Callers must hold
    /// the page's frame latch (read or write) so the store serializes with
    /// [`SegmentedHeapFile::invalidate_zone`], which mutators call under the
    /// frame write latch.
    pub fn store_zone(&self, page_no: u32, entry: ZoneEntry) {
        self.zones.lock().insert(page_no, entry);
    }

    /// Drops the summary for `page_no` (page mutated or found corrupt).
    pub fn invalidate_zone(&self, page_no: u32) {
        self.zones.lock().remove(&page_no);
    }

    /// Number of valid zone-map entries (tests / introspection).
    pub fn zone_entries(&self) -> usize {
        self.zones.lock().len()
    }

    /// Writes a data page, first persisting the segment directory if its
    /// annotations for this page's segment have advanced since the last
    /// persist. This ordering keeps the on-disk directory conservative with
    /// respect to on-disk data (see `directory` module docs).
    pub fn write_page(&self, page_no: u32, page: &Page) -> DbResult<()> {
        {
            let mut dir = self.dir.lock();
            if dir.is_stale(page_no) {
                dir.persist(&self.file)?;
            }
        }
        self.file.write_page(page_no, page.as_bytes())
    }

    /// Durability barrier for checkpoints.
    pub fn sync(&self) -> DbResult<()> {
        self.file.sync()
    }

    /// Persists the directory unconditionally (checkpoint end).
    pub fn persist_directory(&self) -> DbResult<()> {
        self.dir.lock().persist(&self.file)
    }

    /// Records a committed insertion (commit-time timestamp assignment).
    pub fn note_insert_commit(&self, page_no: u32, ts: Timestamp) {
        self.dir.lock().note_insert_commit(page_no, ts);
    }

    /// Records a deletion/update of a tuple on `page_no` at `ts`.
    pub fn note_delete(&self, page_no: u32, ts: Timestamp) {
        self.dir.lock().note_delete(page_no, ts);
    }

    /// Pages of one segment, oldest first.
    pub fn segment_page_ids(&self, seg: SegmentNo) -> Vec<PageId> {
        let dir = self.dir.lock();
        match dir.segment(seg) {
            Some(m) => m.pages().map(|p| PageId::new(self.id, p)).collect(),
            None => Vec::new(),
        }
    }

    /// All data pages, oldest segment first.
    pub fn all_page_ids(&self) -> Vec<PageId> {
        let dir = self.dir.lock();
        dir.segments()
            .iter()
            .flat_map(|m| m.pages())
            .map(|p| PageId::new(self.id, p))
            .collect()
    }

    /// Candidate pages for an insert: from the insert hint to the end of
    /// the last segment. Empty if the last segment has no pages yet (or
    /// the directory has none at all — `grow` then reports the corruption).
    pub fn insert_candidates(&self) -> Vec<u32> {
        let dir = self.dir.lock();
        let Some(last) = dir.segments().last() else {
            return Vec::new();
        };
        let hint = self.insert_hint.lock().unwrap_or(last.start_page);
        let from = hint.clamp(last.start_page, last.start_page + last.page_count);
        (from..last.start_page + last.page_count).collect()
    }

    /// Notes that `page_no` is full so inserts stop trying it first.
    pub fn note_page_full(&self, page_no: u32) {
        let mut hint = self.insert_hint.lock();
        if hint.map(|h| h == page_no).unwrap_or(true) {
            *hint = Some(page_no + 1);
        }
    }

    /// Notes that a slot on `page_no` was freed (dense packing: reuse before
    /// appending).
    pub fn note_slot_freed(&self, page_no: u32) {
        // Only relevant if the page belongs to the last segment.
        let dir = self.dir.lock();
        let Some(last) = dir.segments().last() else {
            return;
        };
        if !last.contains_page(page_no) {
            return;
        }
        drop(dir);
        let mut hint = self.insert_hint.lock();
        if hint.map(|h| h > page_no).unwrap_or(false) {
            *hint = Some(page_no);
        }
    }

    /// Allocates a new page for inserts, creating a new segment first if the
    /// last one has reached its budget (§4.2). Returns the new page id; the
    /// caller materializes the page in the buffer pool.
    pub fn grow(&self) -> DbResult<PageId> {
        let mut dir = self.dir.lock();
        if dir.last_segment_full(self.segment_pages) {
            let seg = dir.create_segment(&self.file)?;
            // New segment: reset the insert hint to its start.
            let start = dir
                .segment(seg)
                .ok_or_else(|| {
                    harbor_common::DbError::corrupt("created segment missing from directory")
                })?
                .start_page;
            *self.insert_hint.lock() = Some(start);
        }
        let page_no = dir.allocate_page()?;
        Ok(PageId::new(self.id, page_no))
    }

    /// Extends the segment map so that `page_no` is covered, replaying the
    /// same sequential allocation policy. Used by ARIES redo when the
    /// directory on disk lags pages referenced by the log (the allocation
    /// happened in memory before the crash and was never persisted).
    pub fn ensure_page_allocated(&self, page_no: u32) -> DbResult<()> {
        let mut dir = self.dir.lock();
        while dir.segment_of_page(page_no).is_none() {
            if dir.next_free_page() > page_no {
                // The page exists but belongs to no segment: it is a header
                // page, which is never the target of a redo op.
                return Err(harbor_common::DbError::corrupt(format!(
                    "page {page_no} is not a data page"
                )));
            }
            if dir.last_segment_full(self.segment_pages) {
                dir.create_segment(&self.file)?;
            } else {
                dir.allocate_page()?;
            }
        }
        Ok(())
    }

    /// Appends a pre-built segment ("bulk load", §4.2): creates a fresh
    /// segment and returns its index; the loader then fills its pages
    /// through the buffer pool and commits the load atomically by
    /// persisting the directory.
    pub fn begin_bulk_segment(&self) -> DbResult<SegmentNo> {
        let mut dir = self.dir.lock();
        let seg = dir.create_segment(&self.file)?;
        let start = dir
            .segment(seg)
            .ok_or_else(|| {
                harbor_common::DbError::corrupt("created segment missing from directory")
            })?
            .start_page;
        *self.insert_hint.lock() = Some(start);
        Ok(seg)
    }

    /// Drops the oldest segment ("bulk drop", §4.2).
    pub fn drop_oldest_segment(&self) -> DbResult<Option<SegmentMeta>> {
        let dropped = self.dir.lock().drop_oldest(&self.file)?;
        if let Some(m) = &dropped {
            let mut zones = self.zones.lock();
            for p in m.pages() {
                zones.remove(&p);
            }
        }
        Ok(dropped)
    }

    /// Total data pages across segments.
    pub fn num_data_pages(&self) -> u32 {
        self.dir
            .lock()
            .segments()
            .iter()
            .map(|m| m.page_count)
            .sum()
    }

    /// Rough size in bytes (data pages only).
    pub fn data_bytes(&self) -> u64 {
        self.num_data_pages() as u64 * PAGE_SIZE as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harbor_common::FieldType;
    use std::path::PathBuf;

    fn temp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("harbor-table-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(format!("{name}-{}.tbl", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn desc() -> TupleDesc {
        TupleDesc::with_version_columns(vec![("id", FieldType::Int64), ("v", FieldType::Int32)])
    }

    fn make(path: &PathBuf) -> SegmentedHeapFile {
        SegmentedHeapFile::create(
            path,
            TableId(1),
            desc(),
            2, // tiny segments: 2 pages each
            DiskProfile::fast(),
            Metrics::new(),
        )
        .unwrap()
    }

    #[test]
    fn grow_rolls_over_into_new_segments() {
        let path = temp("grow");
        let t = make(&path);
        let p1 = t.grow().unwrap();
        let p2 = t.grow().unwrap();
        assert_eq!(t.num_segments(), 1);
        let p3 = t.grow().unwrap(); // budget of 2 reached -> new segment
        assert_eq!(t.num_segments(), 2);
        assert_eq!(t.segment_of_page(p1.page_no), Some(SegmentNo(0)));
        assert_eq!(t.segment_of_page(p2.page_no), Some(SegmentNo(0)));
        assert_eq!(t.segment_of_page(p3.page_no), Some(SegmentNo(1)));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn pages_round_trip_and_holes_read_fresh() {
        let path = temp("pages");
        let t = make(&path);
        let pid = t.grow().unwrap();
        let mut page = Page::init(t.tuple_size());
        let mut data = vec![0u8; t.tuple_size()];
        data[16] = 9;
        page.insert(&data).unwrap();
        t.write_page(pid.page_no, &page).unwrap();
        let back = t.read_page(pid.page_no).unwrap();
        assert_eq!(back.used(), 1);
        // A page that was allocated but never flushed reads as empty.
        let pid2 = t.grow().unwrap();
        let fresh = t.read_page(pid2.page_no).unwrap();
        assert_eq!(fresh.used(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reopen_preserves_directory() {
        let path = temp("reopen");
        {
            let t = make(&path);
            let pid = t.grow().unwrap();
            t.note_insert_commit(pid.page_no, Timestamp(5));
            t.persist_directory().unwrap();
        }
        let t = SegmentedHeapFile::open(
            &path,
            TableId(1),
            desc(),
            2,
            DiskProfile::fast(),
            Metrics::new(),
        )
        .unwrap();
        assert_eq!(t.segments()[0].tmin_insert, Timestamp(5));
        assert_eq!(t.segments()[0].page_count, 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn insert_hint_tracks_free_space() {
        let path = temp("hint");
        let t = make(&path);
        let p1 = t.grow().unwrap();
        assert_eq!(t.insert_candidates(), vec![p1.page_no]);
        t.note_page_full(p1.page_no);
        assert!(t.insert_candidates().is_empty());
        t.note_slot_freed(p1.page_no);
        assert_eq!(t.insert_candidates(), vec![p1.page_no]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn write_page_persists_stale_directory_first() {
        let path = temp("invariant");
        let t = make(&path);
        let pid = t.grow().unwrap();
        t.note_delete(pid.page_no, Timestamp(9));
        let page = Page::init(t.tuple_size());
        t.write_page(pid.page_no, &page).unwrap();
        // Reopen reads the directory as persisted by write_page.
        drop(t);
        let t = SegmentedHeapFile::open(
            &path,
            TableId(1),
            desc(),
            2,
            DiskProfile::fast(),
            Metrics::new(),
        )
        .unwrap();
        assert_eq!(t.segments()[0].tmax_delete, Timestamp(9));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bulk_segment_lifecycle() {
        let path = temp("bulk");
        let t = make(&path);
        t.grow().unwrap();
        let seg = t.begin_bulk_segment().unwrap();
        assert_eq!(seg, SegmentNo(1));
        assert_eq!(t.num_segments(), 2);
        let dropped = t.drop_oldest_segment().unwrap().unwrap();
        assert_eq!(dropped.page_count, 1);
        assert_eq!(t.num_segments(), 1);
        std::fs::remove_file(&path).unwrap();
    }
}
