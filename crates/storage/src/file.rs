//! Raw page-granular file I/O and the on-disk checkpoint record.

use crate::fault::{DiskFaultPlan, WriteFault};
use harbor_common::config::{PAGE_PAYLOAD, PAGE_SIZE};
use harbor_common::{DbError, DbResult, DiskProfile, Metrics, TableId, Timestamp};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// FNV-1a over the page payload — the same checksum discipline as the WAL
/// frame format. Every absorption step `h → (h ^ b) * prime` is a bijection
/// on u32 (the prime is odd), so any single-byte — hence single-bit —
/// difference yields a different digest.
pub(crate) fn page_crc(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in &bytes[..PAGE_PAYLOAD] {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Page-granular file: the backing store of one table's heap.
///
/// All access is serialized on an internal mutex; the buffer pool above
/// ensures a page is read or written by at most one frame at a time anyway,
/// so the mutex only orders unrelated pages, like a single disk arm would.
///
/// Every page carries an FNV-1a checksum trailer in its last
/// [`harbor_common::config::PAGE_CRC_LEN`] bytes: [`TableFile::write_page`]
/// stamps it over the
/// outgoing image (data pages and raw directory header pages alike) and
/// [`TableFile::read_page`] verifies it on every fault-in, failing with
/// [`DbError::CorruptPage`] on mismatch. An all-zero page is exempt: holes
/// from out-of-order flushes legitimately read back as zeroes ("never
/// flushed"), and a zero page cannot carry a zero trailer any other way —
/// `page_crc` of zeroes is nonzero.
pub struct TableFile {
    path: PathBuf,
    file: Mutex<File>,
    disk: DiskProfile,
    metrics: Metrics,
    /// The owning table, stamped by `SegmentedHeapFile` right after
    /// construction so corrupt-page errors carry a real coordinate.
    table: AtomicU32,
    /// Seeded fault injection; `None` outside chaos runs.
    faults: Mutex<Option<Arc<DiskFaultPlan>>>,
}

impl TableFile {
    pub fn create(path: impl AsRef<Path>, disk: DiskProfile, metrics: Metrics) -> DbResult<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        Ok(TableFile {
            path,
            file: Mutex::new(file),
            disk,
            metrics,
            table: AtomicU32::new(u32::MAX),
            faults: Mutex::new(None),
        })
    }

    pub fn open(path: impl AsRef<Path>, disk: DiskProfile, metrics: Metrics) -> DbResult<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().read(true).write(true).open(&path)?;
        Ok(TableFile {
            path,
            file: Mutex::new(file),
            disk,
            metrics,
            table: AtomicU32::new(u32::MAX),
            faults: Mutex::new(None),
        })
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records which table this file backs (for error coordinates and
    /// fault-plan addressing).
    pub fn set_table(&self, id: TableId) {
        self.table.store(id.0, Ordering::SeqCst);
    }

    fn table_id(&self) -> TableId {
        TableId(self.table.load(Ordering::SeqCst))
    }

    /// Attaches a site-wide disk-fault plan to this file's I/O.
    pub fn arm_faults(&self, plan: Arc<DiskFaultPlan>) {
        *self.faults.lock() = Some(plan);
    }

    fn fault_plan(&self) -> Option<Arc<DiskFaultPlan>> {
        self.faults.lock().clone()
    }

    /// Number of whole pages currently in the file.
    pub fn num_pages(&self) -> DbResult<u32> {
        let f = self.file.lock();
        Ok((f.metadata()?.len() / PAGE_SIZE as u64) as u32)
    }

    /// Reads page `page_no` into a fresh buffer, verifying its checksum
    /// trailer. A mismatch is [`DbError::CorruptPage`] — site-local,
    /// repairable from a buddy, and deliberately *not* garbage handed to
    /// the buffer pool.
    pub fn read_page(&self, page_no: u32) -> DbResult<Box<[u8; PAGE_SIZE]>> {
        if let Some(plan) = self.fault_plan() {
            if plan.on_read(self.table_id(), page_no).is_some() {
                self.metrics.add_disk_faults_injected(1);
                return Err(DbError::Io(std::io::Error::other(format!(
                    "injected disk read error (table {}, page {page_no})",
                    self.table_id()
                ))));
            }
        }
        let mut buf = vec![0u8; PAGE_SIZE].into_boxed_slice();
        {
            let mut f = self.file.lock();
            let len = f.metadata()?.len();
            let off = page_no as u64 * PAGE_SIZE as u64;
            if off + PAGE_SIZE as u64 > len {
                return Err(DbError::NoSuchPage(harbor_common::PageId::new(
                    TableId(u32::MAX),
                    page_no,
                )));
            }
            f.seek(SeekFrom::Start(off))?;
            f.read_exact(&mut buf)?;
        }
        self.metrics.add_page_reads(1);
        if buf.iter().all(|&b| b == 0) {
            // Hole from an out-of-order flush: never written, reads fresh.
            return Ok(buf.try_into().unwrap());
        }
        let stored = u32::from_le_bytes(buf[PAGE_PAYLOAD..].try_into().unwrap());
        if stored != page_crc(&buf) {
            self.metrics.add_checksum_failures(1);
            return Err(DbError::CorruptPage {
                table: self.table_id(),
                page: page_no,
            });
        }
        Ok(buf.try_into().unwrap())
    }

    /// Writes page `page_no`, extending the file if needed, stamping the
    /// checksum trailer over the outgoing image. Writes may land beyond the
    /// current end (pages are allocated in memory and can be flushed out of
    /// order); the intervening hole reads back as zeroes, which the buffer
    /// pool interprets as "never flushed" — exactly the state such pages
    /// are in after a crash.
    pub fn write_page(&self, page_no: u32, data: &[u8; PAGE_SIZE]) -> DbResult<()> {
        let mut image = Box::new(*data);
        let crc = page_crc(&image[..]);
        image[PAGE_PAYLOAD..].copy_from_slice(&crc.to_le_bytes());
        let fault = self
            .fault_plan()
            .and_then(|p| p.on_write(self.table_id(), page_no));
        match fault {
            None => {}
            Some(WriteFault::FlipBit { bit }) => {
                self.metrics.add_disk_faults_injected(1);
                image[bit / 8] ^= 1 << (bit % 8);
            }
            Some(WriteFault::Torn { keep }) => {
                // Only a sector-aligned prefix of the new image reached the
                // platter; the tail keeps its previous contents except the
                // final sector, which was mid-write at the tear and reads
                // back as garbage (modeled as zeroes). The checksum trailer
                // lives there, so a torn page always fails verification.
                self.metrics.add_disk_faults_injected(1);
                let old = self.read_page_raw(page_no)?;
                image[keep..].copy_from_slice(&old[keep..]);
                let tail = PAGE_SIZE - 512;
                image[tail..].fill(0);
            }
        }
        {
            let mut f = self.file.lock();
            let off = page_no as u64 * PAGE_SIZE as u64;
            f.seek(SeekFrom::Start(off))?;
            f.write_all(&image[..])?;
        }
        self.metrics.add_page_writes(1);
        Ok(())
    }

    /// The current on-disk bytes of `page_no` with no checksum verification
    /// and no fault injection (zeroes past EOF) — torn-write composition.
    fn read_page_raw(&self, page_no: u32) -> DbResult<Box<[u8; PAGE_SIZE]>> {
        let mut buf = vec![0u8; PAGE_SIZE].into_boxed_slice();
        let mut f = self.file.lock();
        let len = f.metadata()?.len();
        let off = page_no as u64 * PAGE_SIZE as u64;
        if off < len {
            let avail = ((len - off) as usize).min(PAGE_SIZE);
            f.seek(SeekFrom::Start(off))?;
            f.read_exact(&mut buf[..avail])?;
        }
        Ok(buf.try_into().unwrap())
    }

    /// Durability barrier per the disk profile (checkpoints use this).
    pub fn sync(&self) -> DbResult<()> {
        if self.disk.real_fsync {
            self.file.lock().sync_data()?;
        }
        if let Some(lat) = self.disk.emulated_force_latency {
            std::thread::sleep(lat);
        }
        self.metrics.add_physical_syncs(1);
        Ok(())
    }
}

/// The on-disk checkpoint record of Fig 3-2, extended with the per-object
/// checkpoints recovery needs (§5.3: "S adopts a finer-granularity approach
/// to checkpointing during recovery and maintains a separate checkpoint per
/// object").
///
/// Stored at a well-known location (one small file per site) and replaced
/// atomically via write-to-temp + rename, so a crash mid-checkpoint leaves
/// the previous record intact.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct CheckpointRecord {
    /// All updates at or before this time are on disk (global checkpoint).
    pub global: Timestamp,
    /// Per-object overrides recorded during recovery; an object's effective
    /// checkpoint is `max(global, override)`.
    pub per_object: BTreeMap<u32, Timestamp>,
    /// Per-table: the lowest segment index that can contain tuples inserted
    /// by transactions not yet finished at checkpoint time. Phase 1's
    /// `insertion_time = uncommitted` disjunct scans from here; recording it
    /// makes the disjunct sound even when a long transaction's inserts
    /// straddle a segment boundary.
    pub scan_start: BTreeMap<u32, u32>,
}

impl CheckpointRecord {
    /// Effective checkpoint for one table.
    pub fn for_table(&self, table: TableId) -> Timestamp {
        let o = self
            .per_object
            .get(&table.0)
            .copied()
            .unwrap_or(Timestamp::ZERO);
        self.global.max(o)
    }

    /// Promotes the global checkpoint and clears per-object overrides it
    /// subsumes (§5.3: "the site resumes using the single, global checkpoint
    /// once recovery for all objects completes").
    pub fn promote_global(&mut self, t: Timestamp) {
        if t > self.global {
            self.global = t;
        }
        self.per_object.retain(|_, ts| *ts > self.global);
    }

    pub fn set_object(&mut self, table: TableId, t: Timestamp) {
        if t > self.for_table(table) {
            self.per_object.insert(table.0, t);
        }
    }

    fn encode(&self) -> Vec<u8> {
        let mut out =
            Vec::with_capacity(20 + self.per_object.len() * 12 + self.scan_start.len() * 8);
        out.extend_from_slice(b"HBCK");
        out.extend_from_slice(&self.global.0.to_le_bytes());
        out.extend_from_slice(&(self.per_object.len() as u32).to_le_bytes());
        for (t, ts) in &self.per_object {
            out.extend_from_slice(&t.to_le_bytes());
            out.extend_from_slice(&ts.0.to_le_bytes());
        }
        out.extend_from_slice(&(self.scan_start.len() as u32).to_le_bytes());
        for (t, seg) in &self.scan_start {
            out.extend_from_slice(&t.to_le_bytes());
            out.extend_from_slice(&seg.to_le_bytes());
        }
        out
    }

    fn decode(bytes: &[u8]) -> DbResult<Self> {
        if bytes.len() < 16 || &bytes[..4] != b"HBCK" {
            return Err(DbError::corrupt("bad checkpoint record"));
        }
        let global = Timestamp(u64::from_le_bytes(bytes[4..12].try_into().unwrap()));
        let n = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
        let objects_end = 16 + n * 12;
        if bytes.len() < objects_end + 4 {
            return Err(DbError::corrupt("truncated checkpoint record"));
        }
        let mut per_object = BTreeMap::new();
        for i in 0..n {
            let off = 16 + i * 12;
            let t = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
            let ts = Timestamp(u64::from_le_bytes(
                bytes[off + 4..off + 12].try_into().unwrap(),
            ));
            per_object.insert(t, ts);
        }
        let m =
            u32::from_le_bytes(bytes[objects_end..objects_end + 4].try_into().unwrap()) as usize;
        if bytes.len() != objects_end + 4 + m * 8 {
            return Err(DbError::corrupt("truncated checkpoint record"));
        }
        let mut scan_start = BTreeMap::new();
        for i in 0..m {
            let off = objects_end + 4 + i * 8;
            let t = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
            let seg = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().unwrap());
            scan_start.insert(t, seg);
        }
        Ok(CheckpointRecord {
            global,
            per_object,
            scan_start,
        })
    }

    /// Atomically persists the record at `path`: write `<path>.tmp`, fsync
    /// it, rename over `path`, then fsync the parent directory so the
    /// rename itself is durable (a crash after the rename but before the
    /// directory reaches disk could otherwise resurrect the old record —
    /// or, on some filesystems, neither). A torn write can only ever hit
    /// the temp file; the record the Phase-1 restore point is read from is
    /// never overwritten in place.
    pub fn write(&self, path: impl AsRef<Path>, disk: DiskProfile) -> DbResult<()> {
        let path = path.as_ref();
        let tmp = path.with_extension("tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&self.encode())?;
            if disk.real_fsync {
                f.sync_data()?;
            }
        }
        std::fs::rename(&tmp, path)?;
        if disk.real_fsync {
            if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
                File::open(parent)?.sync_all()?;
            }
        }
        if let Some(lat) = disk.emulated_force_latency {
            std::thread::sleep(lat);
        }
        Ok(())
    }

    /// Loads the record; a missing file means "never checkpointed" and reads
    /// as all-zero (time zero predates every transaction).
    pub fn read(path: impl AsRef<Path>) -> DbResult<Self> {
        match std::fs::read(path) {
            Ok(bytes) => Self::decode(&bytes),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Self::default()),
            Err(e) => Err(e.into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("harbor-storage-file-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    #[test]
    fn page_io_round_trips_and_grows() {
        let path = temp("pages.tbl");
        let f = TableFile::create(&path, DiskProfile::fast(), Metrics::new()).unwrap();
        assert_eq!(f.num_pages().unwrap(), 0);
        let mut page = [0u8; PAGE_SIZE];
        page[0] = 0xab;
        f.write_page(0, &page).unwrap();
        page[0] = 0xcd;
        f.write_page(1, &page).unwrap();
        assert_eq!(f.num_pages().unwrap(), 2);
        assert_eq!(f.read_page(0).unwrap()[0], 0xab);
        assert_eq!(f.read_page(1).unwrap()[0], 0xcd);
        assert!(f.read_page(2).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sparse_writes_leave_zero_holes() {
        let path = temp("holes.tbl");
        let f = TableFile::create(&path, DiskProfile::fast(), Metrics::new()).unwrap();
        let mut page = [0u8; PAGE_SIZE];
        page[9] = 0x11;
        f.write_page(3, &page).unwrap();
        assert_eq!(f.num_pages().unwrap(), 4);
        assert!(f.read_page(1).unwrap().iter().all(|&b| b == 0));
        assert_eq!(f.read_page(3).unwrap()[9], 0x11);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn checkpoint_record_round_trips() {
        let path = temp("ckpt");
        let mut rec = CheckpointRecord::default();
        rec.promote_global(Timestamp(40));
        rec.set_object(TableId(7), Timestamp(55));
        rec.scan_start.insert(7, 3);
        rec.write(&path, DiskProfile::fast()).unwrap();
        let back = CheckpointRecord::read(&path).unwrap();
        assert_eq!(back, rec);
        assert_eq!(back.for_table(TableId(7)), Timestamp(55));
        assert_eq!(back.for_table(TableId(1)), Timestamp(40));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_checkpoint_reads_as_time_zero() {
        let rec = CheckpointRecord::read(temp("nonexistent-ckpt")).unwrap();
        assert_eq!(rec.global, Timestamp::ZERO);
        assert_eq!(rec.for_table(TableId(1)), Timestamp::ZERO);
    }

    #[test]
    fn promote_global_subsumes_object_checkpoints() {
        let mut rec = CheckpointRecord::default();
        rec.set_object(TableId(1), Timestamp(10));
        rec.set_object(TableId(2), Timestamp(30));
        rec.promote_global(Timestamp(20));
        assert_eq!(rec.for_table(TableId(1)), Timestamp(20));
        assert_eq!(rec.for_table(TableId(2)), Timestamp(30));
        assert_eq!(rec.per_object.len(), 1);
    }

    #[test]
    fn set_object_never_regresses() {
        let mut rec = CheckpointRecord::default();
        rec.set_object(TableId(1), Timestamp(10));
        rec.set_object(TableId(1), Timestamp(5));
        assert_eq!(rec.for_table(TableId(1)), Timestamp(10));
    }

    #[test]
    fn checksum_detects_external_bit_flip() {
        let path = temp("flip.tbl");
        let f = TableFile::create(&path, DiskProfile::fast(), Metrics::new()).unwrap();
        f.set_table(TableId(9));
        let mut page = [0u8; PAGE_SIZE];
        page[100] = 0x55;
        f.write_page(0, &page).unwrap();
        assert!(f.read_page(0).is_ok());
        // Flip one bit behind the file's back.
        let mut raw = std::fs::read(&path).unwrap();
        raw[100] ^= 0x04;
        std::fs::write(&path, &raw).unwrap();
        match f.read_page(0) {
            Err(DbError::CorruptPage { table, page }) => {
                assert_eq!((table, page), (TableId(9), 0));
            }
            other => panic!("expected CorruptPage, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn injected_write_faults_are_detected_on_read() {
        use crate::fault::{DiskFaultConfig, DiskFaultKind, DiskFaultPlan, TargetedFault};
        let path = temp("faulty.tbl");
        let f = TableFile::create(&path, DiskProfile::fast(), Metrics::new()).unwrap();
        f.set_table(TableId(4));
        let plan = DiskFaultPlan::new(DiskFaultConfig::targeted_only(
            11,
            vec![
                TargetedFault {
                    table: TableId(4),
                    page: 1,
                    ordinal: 0,
                    kind: DiskFaultKind::BitFlip,
                },
                TargetedFault {
                    table: TableId(4),
                    page: 2,
                    ordinal: 1,
                    kind: DiskFaultKind::TornWrite,
                },
                TargetedFault {
                    table: TableId(4),
                    page: 0,
                    ordinal: 1,
                    kind: DiskFaultKind::ReadError,
                },
            ],
        ));
        f.arm_faults(plan.clone());
        plan.set_enabled(true);
        let mut page = [0u8; PAGE_SIZE];
        page[50] = 0xee;
        // Bit flip on the first write of page 1.
        f.write_page(1, &page).unwrap();
        assert!(matches!(
            f.read_page(1),
            Err(DbError::CorruptPage { page: 1, .. })
        ));
        // Torn write on the *second* write of page 2: first lands clean.
        f.write_page(2, &page).unwrap();
        assert!(f.read_page(2).is_ok());
        page[PAGE_PAYLOAD - 1] = 0x77; // change the tail so the tear matters
        f.write_page(2, &page).unwrap();
        assert!(matches!(
            f.read_page(2),
            Err(DbError::CorruptPage { page: 2, .. })
        ));
        // Read error on the second read of page 0.
        f.write_page(0, &page).unwrap();
        assert!(f.read_page(0).is_ok());
        assert!(matches!(f.read_page(0), Err(DbError::Io(_))));
        assert!(f.read_page(0).is_ok());
        assert_eq!(plan.injected(), 3);
        // Repair by rewriting: a clean write restamps the trailer.
        f.write_page(1, &page).unwrap();
        assert!(f.read_page(1).is_ok());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_checkpoint_write_keeps_previous_record() {
        let path = temp("ckpt-torn");
        let mut rec = CheckpointRecord::default();
        rec.promote_global(Timestamp(77));
        rec.write(&path, DiskProfile::fast()).unwrap();
        // A crash mid-rewrite tears only the temp file; the live record is
        // never opened for writing. Simulate the torn temp.
        std::fs::write(path.with_extension("tmp"), b"HB").unwrap();
        let back = CheckpointRecord::read(&path).unwrap();
        assert_eq!(back.global, Timestamp(77));
        // And a full rewrite still lands atomically over it.
        rec.promote_global(Timestamp(99));
        rec.write(&path, DiskProfile::real()).unwrap();
        assert_eq!(CheckpointRecord::read(&path).unwrap().global, Timestamp(99));
        let _ = std::fs::remove_file(path.with_extension("tmp"));
        std::fs::remove_file(&path).unwrap();
    }
}
