//! The buffer pool (thesis §6.1.3).
//!
//! Manages in-memory frames for heap pages, enforcing:
//!
//! * **STEAL / NO-FORCE** by default (other policies are supported via
//!   [`PagePolicy`]): dirty pages may be written back before commit, and
//!   commit does not flush;
//! * the **write-ahead-logging rule** when a log manager is attached: the
//!   log is forced up to a page's LSN before the page is written back;
//! * the **directory durability invariant** via
//!   [`SegmentedHeapFile::write_page`];
//! * transactional access control: page reads/writes go through the lock
//!   manager with intention locks on the table (`getPage` of §6.1.3), while
//!   historical queries use latch-only access and never touch the lock
//!   manager.
//!
//! The frame table is split into power-of-two **shards** keyed by a `PageId`
//! hash, each behind its own mutex, so concurrent scanners and appenders
//! don't serialize on one global map lock. Eviction is **clock /
//! second-chance** per shard (the thesis used random eviction; clock keeps
//! the hot working set resident while remaining O(1) per victim): every
//! frame carries a referenced bit that page accesses set and the sweeping
//! hand clears, and a frame is evicted only when it is unpinned, its bit is
//! clear, and — under NO-STEAL — it is clean. Capacity stays a *global*
//! budget: a shared resident counter drives the sweep across shards, so a
//! skewed workload can fill the whole pool from one shard's key range.

use crate::lock::{LockKey, LockManager, LockMode};
use crate::page::Page;
use crate::table::SegmentedHeapFile;
use harbor_common::lockrank::{self, Rank};
use harbor_common::{
    DbError, DbResult, Metrics, PageId, RecordId, TableId, Timestamp, TransactionId,
};
use harbor_wal::record::{RedoOp, TsField};
use harbor_wal::{LogManager, Lsn};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Buffer management policy. The thesis default is STEAL/NO-FORCE; the other
/// combinations are implemented for completeness ("though other paging
/// policies have also been implemented", §6.1.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PagePolicy {
    /// Dirty pages of uncommitted transactions may be written back.
    pub steal: bool,
    /// Commit flushes the transaction's dirty pages (enforced by the engine;
    /// recorded here so all policy knobs live together).
    pub force: bool,
}

impl PagePolicy {
    pub const fn steal_no_force() -> Self {
        PagePolicy {
            steal: true,
            force: false,
        }
    }

    pub const fn no_steal_force() -> Self {
        PagePolicy {
            steal: false,
            force: true,
        }
    }
}

impl Default for PagePolicy {
    fn default() -> Self {
        Self::steal_no_force()
    }
}

struct Frame {
    page: RwLock<Page>,
    dirty: AtomicBool,
    pins: AtomicUsize,
    /// Second-chance bit: set on every access, cleared by the clock hand.
    referenced: AtomicBool,
    /// First LSN that dirtied the page since its last flush (`u64::MAX` =
    /// none). Feeds the dirty page table of ARIES fuzzy checkpoints.
    rec_lsn: AtomicU64,
}

impl Frame {
    fn fresh(page: Page, dirty: bool) -> Self {
        Frame {
            page: RwLock::new(page),
            dirty: AtomicBool::new(dirty),
            pins: AtomicUsize::new(0),
            referenced: AtomicBool::new(true),
            rec_lsn: AtomicU64::new(u64::MAX),
        }
    }

    fn note_dirtying_lsn(&self, lsn: Lsn) {
        self.rec_lsn.fetch_min(lsn.0, Ordering::SeqCst);
    }
}

/// One shard of the frame table: its slice of the page map, the clock ring
/// the eviction hand walks, and locality counters.
struct Shard {
    frames: Mutex<ShardFrames>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

#[derive(Default)]
struct ShardFrames {
    map: HashMap<PageId, Arc<Frame>>,
    /// Clock ring over this shard's resident pages. Kept in sync with
    /// `map` (entries are removed on eviction/deregistration), so the hand
    /// only ever sees live frames; the stale-entry check in the sweep is
    /// defensive.
    ring: Vec<PageId>,
    hand: usize,
}

impl Shard {
    fn new() -> Self {
        Shard {
            frames: Mutex::new(ShardFrames::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }
}

impl ShardFrames {
    fn insert(&mut self, pid: PageId, frame: Arc<Frame>) -> Option<Arc<Frame>> {
        let prev = self.map.insert(pid, frame);
        if prev.is_none() {
            self.ring.push(pid);
        }
        prev
    }

    fn remove(&mut self, pid: PageId) -> Option<Arc<Frame>> {
        let prev = self.map.remove(&pid);
        if prev.is_some() {
            if let Some(i) = self.ring.iter().position(|p| *p == pid) {
                self.ring.swap_remove(i);
            }
        }
        prev
    }
}

/// Point-in-time statistics for one buffer-pool shard.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub resident: usize,
}

/// The per-site buffer pool.
pub struct BufferPool {
    capacity: usize,
    shards: Box<[Shard]>,
    /// `shards.len() - 1`; shard count is a power of two.
    shard_mask: usize,
    /// Global resident-frame count (capacity is a pool-wide budget, not a
    /// per-shard one).
    resident: AtomicUsize,
    /// Rotor distributing eviction sweeps across shards.
    next_shard: AtomicUsize,
    tables: RwLock<HashMap<TableId, Arc<SegmentedHeapFile>>>,
    locks: Arc<LockManager>,
    wal: RwLock<Option<Arc<LogManager>>>,
    policy: PagePolicy,
    metrics: Metrics,
}

/// Shards scale with capacity (≈8 frames per shard) up to 16: tiny test
/// pools stay observable through one shard, big pools spread contention.
fn shard_count_for(capacity: usize) -> usize {
    (capacity / 8).next_power_of_two().clamp(1, 16)
}

impl BufferPool {
    pub fn new(
        capacity: usize,
        locks: Arc<LockManager>,
        policy: PagePolicy,
        metrics: Metrics,
    ) -> Self {
        let capacity = capacity.max(2);
        let n = shard_count_for(capacity);
        BufferPool {
            capacity,
            shards: (0..n).map(|_| Shard::new()).collect(),
            shard_mask: n - 1,
            resident: AtomicUsize::new(0),
            next_shard: AtomicUsize::new(0),
            tables: RwLock::new(HashMap::new()),
            locks,
            wal: RwLock::new(None),
            policy,
            metrics,
        }
    }

    #[inline]
    fn shard(&self, pid: PageId) -> &Shard {
        // Fibonacci hash over (table, page_no); the high bits are the
        // best-mixed, so index from the top.
        let key = ((pid.table.0 as u64) << 32) | pid.page_no as u64;
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(h >> 48) as usize & self.shard_mask]
    }

    /// Number of frame-table shards (power of two).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard hit/miss/eviction counters plus resident frame counts.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|s| ShardStats {
                hits: s.hits.load(Ordering::Relaxed),
                misses: s.misses.load(Ordering::Relaxed),
                evictions: s.evictions.load(Ordering::Relaxed),
                resident: {
                    let _rank = lockrank::acquire(Rank::PoolShard);
                    s.frames.lock().map.len()
                },
            })
            .collect()
    }

    /// Number of frames currently pinned (tests / introspection).
    pub fn pinned_frames(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let _rank = lockrank::acquire(Rank::PoolShard);
                s.frames
                    .lock()
                    .map
                    .values()
                    .filter(|f| f.pins.load(Ordering::SeqCst) > 0)
                    .count()
            })
            .sum()
    }

    /// Attaches a log manager: the pool starts honouring the WAL rule on
    /// write-back (log-based baseline mode).
    pub fn attach_wal(&self, wal: Arc<LogManager>) {
        let _rank = lockrank::acquire(Rank::Wal);
        *self.wal.write() = Some(wal);
    }

    pub fn policy(&self) -> PagePolicy {
        self.policy
    }

    pub fn lock_manager(&self) -> &Arc<LockManager> {
        &self.locks
    }

    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    pub fn register_table(&self, table: Arc<SegmentedHeapFile>) {
        let _rank = lockrank::acquire(Rank::TableMap);
        self.tables.write().insert(table.id(), table);
    }

    pub fn deregister_table(&self, id: TableId) {
        let _rank = lockrank::acquire(Rank::TableMap);
        self.tables.write().remove(&id);
        let mut dropped = 0usize;
        for shard in self.shards.iter() {
            let _rank = lockrank::acquire(Rank::PoolShard);
            let mut g = shard.frames.lock();
            let before = g.map.len();
            g.map.retain(|pid, _| pid.table != id);
            g.ring.retain(|pid| pid.table != id);
            g.hand = 0;
            dropped += before - g.map.len();
        }
        self.resident.fetch_sub(dropped, Ordering::SeqCst);
    }

    pub fn table(&self, id: TableId) -> DbResult<Arc<SegmentedHeapFile>> {
        let _rank = lockrank::acquire(Rank::TableMap);
        self.tables
            .read()
            .get(&id)
            .cloned()
            .ok_or(DbError::NoSuchTable(id))
    }

    pub fn table_ids(&self) -> Vec<TableId> {
        let mut ids: Vec<TableId> = {
            let _rank = lockrank::acquire(Rank::TableMap);
            self.tables.read().keys().copied().collect()
        };
        ids.sort();
        ids
    }

    /// Acquires a transactional lock on a page plus the matching intention
    /// lock on its table (multi-granularity protocol).
    pub fn lock_page(&self, tid: TransactionId, pid: PageId, mode: LockMode) -> DbResult<()> {
        let intent = match mode {
            LockMode::Shared | LockMode::IntentionShared => LockMode::IntentionShared,
            _ => LockMode::IntentionExclusive,
        };
        self.locks.acquire(tid, LockKey::Table(pid.table), intent)?;
        self.locks.acquire(tid, LockKey::Page(pid), mode)
    }

    /// Fetches (or loads) the frame for `pid`, evicting if over capacity.
    fn frame(&self, pid: PageId) -> DbResult<Arc<Frame>> {
        let shard = self.shard(pid);
        // harbor-lint: allow(deadline-propagation) — deliberate optimistic retry: the
        // loop re-runs only when the eviction epoch moved during our off-lock disk
        // read, each iteration does one bounded page read, and the caller re-checks
        // its budget between engine steps; a deadline check here would add a clock
        // read to the hot page-hit path for a retry that is already progress-bounded.
        loop {
            // Snapshot the shard's eviction count together with the miss:
            // it is the epoch that tells us below whether a flush+evict of
            // this page could have happened while we read the disk.
            let epoch = {
                let _rank = lockrank::acquire(Rank::PoolShard);
                let g = shard.frames.lock();
                if let Some(f) = g.map.get(&pid) {
                    f.pins.fetch_add(1, Ordering::SeqCst);
                    f.referenced.store(true, Ordering::Relaxed);
                    let f = f.clone();
                    drop(g);
                    shard.hits.fetch_add(1, Ordering::Relaxed);
                    self.metrics.add_pool_hits(1);
                    return Ok(f);
                }
                shard.evictions.load(Ordering::SeqCst)
            };
            // Load outside the shard lock, then insert. Two loaders racing
            // is harmless (first writer wins, both read the same bytes) —
            // but a load racing an *eviction* is not: another thread may
            // insert a frame, take writes, and have it flushed + evicted
            // all between our disk read and our map insert, making our
            // copy stale. The eviction epoch detects that window.
            let table = self.table(pid.table)?;
            let page = table.read_page(pid.page_no)?;
            let frame = Arc::new(Frame::fresh(page, false));
            frame.pins.fetch_add(1, Ordering::SeqCst);
            let _rank = lockrank::acquire(Rank::PoolShard);
            let mut g = shard.frames.lock();
            if let Some(existing) = g.map.get(&pid) {
                existing.pins.fetch_add(1, Ordering::SeqCst);
                existing.referenced.store(true, Ordering::Relaxed);
                let existing = existing.clone();
                drop(g);
                shard.misses.fetch_add(1, Ordering::Relaxed);
                self.metrics.add_pool_misses(1);
                return Ok(existing);
            }
            if shard.evictions.load(Ordering::SeqCst) != epoch {
                // An eviction ran in this shard while we were off the lock;
                // our disk read may predate the evicted frame's flush.
                // Retry with a fresh read.
                drop(g);
                continue;
            }
            g.insert(pid, frame.clone());
            drop(g);
            // Release the shard rank with the guard: eviction below
            // re-enters the table map (rank 2) via flush_frame.
            drop(_rank);
            shard.misses.fetch_add(1, Ordering::Relaxed);
            self.metrics.add_pool_misses(1);
            self.resident.fetch_add(1, Ordering::SeqCst);
            self.evict_to_capacity()?;
            return Ok(frame);
        }
    }

    /// Materializes a brand-new page (just allocated by the table) in the
    /// pool. This must go through the normal faulting path, not install a
    /// fresh empty frame: between the allocation and this call, a
    /// concurrent inserter can probe the page through `insert_candidates`,
    /// fault it in (`read_page` hands never-flushed pages back as
    /// initialized empty pages), fill slots, and have the frame flushed
    /// *and evicted* again — fabricating an empty frame here would
    /// resurrect the page as blank and wipe those rows on its next
    /// write-back. The miss path reads whatever is durable (an empty page
    /// for a truly fresh allocation) under the eviction-epoch protocol.
    pub fn create_page(&self, pid: PageId) -> DbResult<()> {
        let frame = self.frame(pid)?;
        frame.pins.fetch_sub(1, Ordering::SeqCst);
        Ok(())
    }

    fn evict_to_capacity(&self) -> DbResult<()> {
        while self.resident.load(Ordering::SeqCst) > self.capacity {
            let Some(victim) = self.find_victim() else {
                // Everything pinned or unstealable: run over capacity
                // rather than fail mid-transaction.
                return Ok(());
            };
            if self.try_evict(victim)? {
                self.metrics.add_evictions(1);
            }
        }
        Ok(())
    }

    /// Picks an eviction victim by sweeping the clock hands, starting from
    /// a rotating shard so sweeps spread across the pool.
    fn find_victim(&self) -> Option<PageId> {
        let n = self.shards.len();
        let start = self.next_shard.fetch_add(1, Ordering::Relaxed);
        (0..n).find_map(|i| self.clock_victim(&self.shards[(start + i) % n]))
    }

    /// One clock sweep over a shard: skip pinned (and, under NO-STEAL,
    /// dirty) frames, give referenced frames a second chance by clearing
    /// their bit, and return the first frame that is evictable with a clear
    /// bit. Two passes bound the sweep: the first clears bits, the second
    /// catches the frames it cleared.
    fn clock_victim(&self, shard: &Shard) -> Option<PageId> {
        let _rank = lockrank::acquire(Rank::PoolShard);
        let mut g = shard.frames.lock();
        let mut remaining = g.ring.len() * 2;
        while remaining > 0 && !g.ring.is_empty() {
            if g.hand >= g.ring.len() {
                g.hand = 0;
            }
            let hand = g.hand;
            let pid = g.ring[hand];
            let Some(f) = g.map.get(&pid) else {
                g.ring.swap_remove(hand);
                remaining = remaining.saturating_sub(1);
                continue;
            };
            let evictable = f.pins.load(Ordering::SeqCst) == 0
                && (self.policy.steal || !f.dirty.load(Ordering::SeqCst));
            if evictable && !f.referenced.swap(false, Ordering::Relaxed) {
                g.hand += 1;
                return Some(pid);
            }
            g.hand += 1;
            remaining -= 1;
        }
        None
    }

    fn try_evict(&self, pid: PageId) -> DbResult<bool> {
        // Flush first if dirty (STEAL), then remove if still unpinned.
        let shard = self.shard(pid);
        let frame = {
            let _rank = lockrank::acquire(Rank::PoolShard);
            let g = shard.frames.lock();
            match g.map.get(&pid) {
                Some(f) if f.pins.load(Ordering::SeqCst) == 0 => f.clone(),
                _ => return Ok(false),
            }
        };
        if frame.dirty.load(Ordering::SeqCst) {
            if !self.policy.steal {
                // NO-STEAL: a page dirtied since victim selection must stay.
                return Ok(false);
            }
            self.flush_frame(pid, &frame)?;
        }
        let _rank = lockrank::acquire(Rank::PoolShard);
        let mut g = shard.frames.lock();
        if let Some(f) = g.map.get(&pid) {
            if f.pins.load(Ordering::SeqCst) == 0 && !f.dirty.load(Ordering::SeqCst) {
                g.remove(pid);
                // Bump the eviction epoch before the removal becomes
                // visible (i.e. while still holding the shard lock):
                // `frame`'s miss path uses it to detect that a disk read
                // it started may predate this frame's flush.
                shard.evictions.fetch_add(1, Ordering::SeqCst);
                drop(g);
                self.resident.fetch_sub(1, Ordering::SeqCst);
                return Ok(true);
            }
        }
        Ok(false)
    }

    fn flush_frame(&self, pid: PageId, frame: &Frame) -> DbResult<()> {
        let table = self.table(pid.table)?;
        let _rank = lockrank::acquire(Rank::Frame);
        let page = frame.page.write();
        // WAL rule: log records describing this page must be durable first.
        let _wal_rank = lockrank::acquire(Rank::Wal);
        if let Some(wal) = self.wal.read().as_ref() {
            let lsn = page.page_lsn();
            if lsn > Lsn::ZERO {
                wal.force(lsn)?;
            }
        }
        // harbor-lint: allow(lock-across-blocking) — the frame latch must pin the page image across WAL force + write-back; flush-under-latch IS the WAL protocol
        table.write_page(pid.page_no, &page)?;
        // Summarize the flushed image while the write latch still pins it:
        // invalidations also run under this latch, so the store is ordered
        // against every mutation.
        table.store_zone(pid.page_no, crate::table::ZoneEntry::compute(&page));
        frame.dirty.store(false, Ordering::SeqCst);
        frame.rec_lsn.store(u64::MAX, Ordering::SeqCst);
        Ok(())
    }

    /// Read access to a page under a shared latch. `tid` adds transactional
    /// S-locking (with table IS); `None` is latch-only access, used by
    /// historical queries (lock-free by design, §3.3) and recovery.
    pub fn with_page<R>(
        &self,
        tid: Option<TransactionId>,
        pid: PageId,
        f: impl FnOnce(&Page) -> DbResult<R>,
    ) -> DbResult<R> {
        if let Some(tid) = tid {
            self.lock_page(tid, pid, LockMode::Shared)?;
        }
        let frame = self.frame(pid)?;
        let result = {
            let _rank = lockrank::acquire(Rank::Frame);
            let page = frame.page.read();
            f(&page)
        };
        frame.pins.fetch_sub(1, Ordering::SeqCst);
        result
    }

    /// Write access to a page under an exclusive latch; marks it dirty.
    pub fn with_page_mut<R>(
        &self,
        tid: Option<TransactionId>,
        pid: PageId,
        f: impl FnOnce(&mut Page) -> DbResult<R>,
    ) -> DbResult<R> {
        if let Some(tid) = tid {
            self.lock_page(tid, pid, LockMode::Exclusive)?;
        }
        let frame = self.frame(pid)?;
        let table = self.table(pid.table).ok();
        let result = {
            let _rank = lockrank::acquire(Rank::Frame);
            let mut page = frame.page.write();
            let r = f(&mut page);
            if r.is_ok() {
                frame.dirty.store(true, Ordering::SeqCst);
                if let Some(t) = &table {
                    t.invalidate_zone(pid.page_no);
                }
            }
            r
        };
        frame.pins.fetch_sub(1, Ordering::SeqCst);
        result
    }

    /// Inserts encoded tuple bytes into the table's last segment, reusing
    /// free slots before growing (`insertTuple` of §6.1.3, including the
    /// shared-then-exclusive lock dance that closes the last-slot race).
    pub fn insert_tuple_bytes(
        &self,
        tid: Option<TransactionId>,
        table_id: TableId,
        bytes: &[u8],
    ) -> DbResult<RecordId> {
        self.insert_tuple_bytes_logged(tid, table_id, bytes, None)
    }

    /// As [`insert_tuple_bytes`](Self::insert_tuple_bytes) but, under the
    /// log-based baseline, invokes `logger` with the redo op *inside* the
    /// page latch and stamps the returned LSN on the page, so no flush can
    /// slip between the page change and its log record.
    pub fn insert_tuple_bytes_logged(
        &self,
        tid: Option<TransactionId>,
        table_id: TableId,
        bytes: &[u8],
        mut logger: Option<&mut dyn FnMut(&RedoOp) -> Lsn>,
    ) -> DbResult<RecordId> {
        let table = self.table(table_id)?;
        if bytes.len() != table.tuple_size() {
            return Err(DbError::Schema(format!(
                "tuple is {} bytes, table rows are {}",
                bytes.len(),
                table.tuple_size()
            )));
        }
        loop {
            for page_no in table.insert_candidates() {
                let pid = PageId::new(table_id, page_no);
                // Probe fullness under the latch only — taking the §6.1.3
                // shared lock here would park every inserter behind a full
                // page exclusively locked by a long transaction. The probe
                // may be stale in either direction; the exclusive lock plus
                // the in-latch `insert` recheck below close the
                // fill-the-last-slot race the thesis' S→X upgrade targets.
                let full = self.with_page(None, pid, |p| Ok(p.is_full()))?;
                if full {
                    table.note_page_full(page_no);
                    continue;
                }
                if let Some(tid) = tid {
                    self.lock_page(tid, pid, LockMode::Exclusive)?;
                }
                match self.mutate_frame(pid, |p, frame| {
                    let slot = p.insert(bytes)?;
                    if let Some(lg) = logger.as_deref_mut() {
                        let op = RedoOp::InsertTuple {
                            rid: RecordId::new(pid, slot),
                            data: bytes.to_vec(),
                        };
                        let lsn = lg(&op);
                        p.set_page_lsn(lsn);
                        frame.note_dirtying_lsn(lsn);
                    }
                    Ok(slot)
                }) {
                    Ok(slot) => return Ok(RecordId::new(pid, slot)),
                    Err(DbError::Full(_)) => {
                        table.note_page_full(page_no);
                        continue;
                    }
                    Err(e) => return Err(e),
                }
            }
            // Last segment exhausted: allocate a page (rolling into a new
            // segment when the budget is reached).
            let pid = table.grow()?;
            if let Some(tid) = tid {
                self.lock_page(tid, pid, LockMode::Exclusive)?;
            }
            self.create_page(pid)?;
        }
    }

    /// A bulk append cursor for `table_id`: each cursor fills pages it
    /// allocated itself, so several cursors (e.g. parallel recovery
    /// appliers) append concurrently without fighting over the shared
    /// insert hint or each other's page latches. Free slots elsewhere in
    /// the table are *not* reused — bulk append is for catch-up loads where
    /// the table is growing anyway.
    pub fn bulk_appender(self: &Arc<Self>, table_id: TableId) -> DbResult<BulkAppender> {
        let table = self.table(table_id)?;
        Ok(BulkAppender {
            pool: self.clone(),
            table,
            current: None,
        })
    }

    /// Exclusive-latch access to page and frame together (internal: lets
    /// mutators stamp LSNs / recLSNs atomically with the change).
    fn mutate_frame<R>(
        &self,
        pid: PageId,
        f: impl FnOnce(&mut Page, &Frame) -> DbResult<R>,
    ) -> DbResult<R> {
        let frame = self.frame(pid)?;
        let table = self.table(pid.table).ok();
        let result = {
            let _rank = lockrank::acquire(Rank::Frame);
            let mut page = frame.page.write();
            let r = f(&mut page, &frame);
            if r.is_ok() {
                frame.dirty.store(true, Ordering::SeqCst);
                if let Some(t) = &table {
                    t.invalidate_zone(pid.page_no);
                }
            }
            r
        };
        frame.pins.fetch_sub(1, Ordering::SeqCst);
        result
    }

    /// Physically removes the tuple at `rid`, returning its bytes
    /// (transaction rollback and recovery Phase 1).
    pub fn remove_tuple(&self, tid: Option<TransactionId>, rid: RecordId) -> DbResult<Vec<u8>> {
        self.remove_tuple_logged(tid, rid, None)
    }

    /// Logged variant of [`remove_tuple`](Self::remove_tuple).
    pub fn remove_tuple_logged(
        &self,
        tid: Option<TransactionId>,
        rid: RecordId,
        mut logger: Option<&mut dyn FnMut(&RedoOp) -> Lsn>,
    ) -> DbResult<Vec<u8>> {
        if let Some(tid) = tid {
            self.lock_page(tid, rid.page, LockMode::Exclusive)?;
        }
        let data = self.mutate_frame(rid.page, |p, frame| {
            let data = p.remove(rid.slot)?;
            if let Some(lg) = logger.take() {
                let op = RedoOp::RemoveTuple {
                    rid,
                    data: data.clone(),
                };
                let lsn = lg(&op);
                p.set_page_lsn(lsn);
                frame.note_dirtying_lsn(lsn);
            }
            Ok(data)
        })?;
        if let Ok(table) = self.table(rid.page.table) {
            table.note_slot_freed(rid.page.page_no);
        }
        Ok(data)
    }

    /// Reads the raw bytes of the tuple at `rid`.
    pub fn read_tuple_bytes(&self, tid: Option<TransactionId>, rid: RecordId) -> DbResult<Vec<u8>> {
        self.with_page(tid, rid.page, |p| Ok(p.read(rid.slot)?.to_vec()))
    }

    /// Reads one reserved timestamp field of the tuple at `rid`.
    pub fn read_timestamp(&self, rid: RecordId, field: TsField) -> DbResult<Timestamp> {
        self.with_page(None, rid.page, |p| p.timestamp(rid.slot, field))
    }

    /// Overwrites one reserved timestamp field in place (commit-time
    /// assignment; recovery's deletion-time copies). Updates the segment
    /// annotations.
    pub fn set_timestamp(
        &self,
        tid: Option<TransactionId>,
        rid: RecordId,
        field: TsField,
        ts: Timestamp,
    ) -> DbResult<()> {
        self.set_timestamp_logged(tid, rid, field, ts, None)
    }

    /// Logged variant of [`set_timestamp`](Self::set_timestamp); the log
    /// record carries the old value for undo.
    pub fn set_timestamp_logged(
        &self,
        tid: Option<TransactionId>,
        rid: RecordId,
        field: TsField,
        ts: Timestamp,
        mut logger: Option<&mut dyn FnMut(&RedoOp) -> Lsn>,
    ) -> DbResult<()> {
        if let Some(tid) = tid {
            self.lock_page(tid, rid.page, LockMode::Exclusive)?;
        }
        self.mutate_frame(rid.page, |p, frame| {
            let old = p.timestamp(rid.slot, field)?;
            p.set_timestamp(rid.slot, field, ts)?;
            if let Some(lg) = logger.take() {
                let op = RedoOp::SetTimestamp {
                    rid,
                    field,
                    old,
                    new: ts,
                };
                let lsn = lg(&op);
                p.set_page_lsn(lsn);
                frame.note_dirtying_lsn(lsn);
            }
            Ok(())
        })?;
        if ts.is_valid_commit_time() {
            let table = self.table(rid.page.table)?;
            match field {
                TsField::Insertion => table.note_insert_commit(rid.page.page_no, ts),
                TsField::Deletion => table.note_delete(rid.page.page_no, ts),
            }
        }
        Ok(())
    }

    /// Page ids of all dirty frames — the dirty pages table snapshot the
    /// checkpoint procedure takes (Fig 3-2).
    pub fn dirty_pages(&self) -> Vec<PageId> {
        self.shards
            .iter()
            .flat_map(|s| {
                let _rank = lockrank::acquire(Rank::PoolShard);
                s.frames
                    .lock()
                    .map
                    .iter()
                    .filter(|(_, f)| f.dirty.load(Ordering::SeqCst))
                    .map(|(pid, _)| *pid)
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    /// Dirty pages with their recLSNs — the DPT snapshot that goes into an
    /// ARIES fuzzy checkpoint record. Pages dirtied by unlogged mutations
    /// report recLSN zero (maximally conservative: redo starts earlier).
    pub fn dirty_pages_with_reclsn(&self) -> Vec<(PageId, Lsn)> {
        self.shards
            .iter()
            .flat_map(|s| {
                let _rank = lockrank::acquire(Rank::PoolShard);
                s.frames
                    .lock()
                    .map
                    .iter()
                    .filter(|(_, f)| f.dirty.load(Ordering::SeqCst))
                    .map(|(pid, f)| {
                        let r = f.rec_lsn.load(Ordering::SeqCst);
                        (*pid, if r == u64::MAX { Lsn::ZERO } else { Lsn(r) })
                    })
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    /// Flushes one page if present and dirty.
    pub fn flush_page(&self, pid: PageId) -> DbResult<()> {
        let frame = {
            let _rank = lockrank::acquire(Rank::PoolShard);
            let g = self.shard(pid).frames.lock();
            match g.map.get(&pid) {
                Some(f) => f.clone(),
                None => return Ok(()),
            }
        };
        if frame.dirty.load(Ordering::SeqCst) {
            self.flush_frame(pid, &frame)?;
        }
        Ok(())
    }

    /// Writes a resident frame back to disk even if it is clean, restamping
    /// the on-disk page (and its checksum) from the in-memory copy. Returns
    /// whether a frame was present. This is the scrubber's self-heal fast
    /// path: a write fault can corrupt the disk image while the frame stays
    /// intact, and [`BufferPool::flush_page`] would skip the clean frame.
    pub fn force_rewrite(&self, pid: PageId) -> DbResult<bool> {
        let frame = {
            let _rank = lockrank::acquire(Rank::PoolShard);
            let g = self.shard(pid).frames.lock();
            match g.map.get(&pid) {
                Some(f) => f.clone(),
                None => return Ok(false),
            }
        };
        self.flush_frame(pid, &frame)?;
        Ok(true)
    }

    /// Flushes every dirty page (checkpoint body).
    pub fn flush_all(&self) -> DbResult<()> {
        for pid in self.dirty_pages() {
            self.flush_page(pid)?;
        }
        Ok(())
    }

    /// Number of resident frames (tests / introspection).
    pub fn resident(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let _rank = lockrank::acquire(Rank::PoolShard);
                s.frames.lock().map.len()
            })
            .sum()
    }

    /// The page LSN of `pid` as seen through the pool (loads if needed).
    pub fn page_lsn(&self, pid: PageId) -> DbResult<Lsn> {
        self.with_page(None, pid, |p| Ok(p.page_lsn()))
    }

    /// Applies a redo/undo operation, stamping `lsn` on the page and
    /// maintaining segment annotations — the ARIES glue.
    pub fn apply_redo(&self, op: &RedoOp, lsn: Lsn) -> DbResult<()> {
        let pid = op.page();
        let table = self.table(pid.table)?;
        table.ensure_page_allocated(pid.page_no)?;
        self.with_page_mut(None, pid, |p| {
            match op {
                RedoOp::InsertTuple { rid, data } => p.insert_at(rid.slot, data)?,
                RedoOp::RemoveTuple { rid, .. } => {
                    p.remove(rid.slot)?;
                }
                RedoOp::SetTimestamp {
                    rid, field, new, ..
                } => p.set_timestamp(rid.slot, *field, *new)?,
            }
            p.set_page_lsn(lsn);
            Ok(())
        })?;
        match op {
            RedoOp::RemoveTuple { .. } => table.note_slot_freed(pid.page_no),
            RedoOp::SetTimestamp { field, new, .. } if new.is_valid_commit_time() => match field {
                TsField::Insertion => table.note_insert_commit(pid.page_no, *new),
                TsField::Deletion => table.note_delete(pid.page_no, *new),
            },
            _ => {}
        }
        Ok(())
    }
}

/// A per-thread append cursor created by [`BufferPool::bulk_appender`].
///
/// The cursor owns its current page: it allocated the page via
/// [`SegmentedHeapFile::grow`] (a short directory-lock critical section)
/// and fills it privately until full, so N cursors converge to N disjoint
/// hot pages instead of all probing the shared insert hint. Pages the
/// cursor abandons as full join the table's normal free-slot accounting.
pub struct BulkAppender {
    pool: Arc<BufferPool>,
    table: Arc<SegmentedHeapFile>,
    current: Option<PageId>,
}

impl BulkAppender {
    /// Appends one encoded tuple, latch-only (recovery Phase 2 is lock-free
    /// at both sides, §5.4).
    pub fn insert(&mut self, bytes: &[u8]) -> DbResult<RecordId> {
        if bytes.len() != self.table.tuple_size() {
            return Err(DbError::Schema(format!(
                "tuple is {} bytes, table rows are {}",
                bytes.len(),
                self.table.tuple_size()
            )));
        }
        loop {
            if let Some(pid) = self.current {
                match self.pool.mutate_frame(pid, |p, _| p.insert(bytes)) {
                    Ok(slot) => return Ok(RecordId::new(pid, slot)),
                    Err(DbError::Full(_)) => {
                        // Another inserter may have probed our page through
                        // the shared candidate walk and topped it off.
                        self.table.note_page_full(pid.page_no);
                        self.current = None;
                    }
                    Err(e) => return Err(e),
                }
            }
            let pid = self.table.grow()?;
            self.pool.create_page(pid)?;
            self.current = Some(pid);
        }
    }

    pub fn table_id(&self) -> TableId {
        self.table.id()
    }
}

/// Adapter implementing the WAL crate's [`harbor_wal::aries::RecoveryStorage`]
/// over the pool.
pub struct PoolRecovery<'a>(pub &'a BufferPool);

impl harbor_wal::aries::RecoveryStorage for PoolRecovery<'_> {
    fn page_lsn(&mut self, pid: PageId) -> DbResult<Lsn> {
        // A page belonging to an unknown table cannot exist on this site.
        if self.0.table(pid.table).is_err() {
            return Err(DbError::NoSuchTable(pid.table));
        }
        self.0
            .table(pid.table)?
            .ensure_page_allocated(pid.page_no)?;
        self.0.page_lsn(pid)
    }

    fn apply(&mut self, op: &RedoOp, lsn: Lsn) -> DbResult<()> {
        self.0.apply_redo(op, lsn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::SegmentedHeapFile;
    use harbor_common::ids::SiteId;
    use harbor_common::{DiskProfile, FieldType, TupleDesc};
    use std::path::PathBuf;
    use std::time::Duration;

    fn temp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("harbor-buffer-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(format!("{name}-{}.tbl", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn desc() -> TupleDesc {
        TupleDesc::with_version_columns(vec![("id", FieldType::Int64)])
    }

    fn tuple_bytes(id: i64) -> Vec<u8> {
        let mut v = Vec::new();
        v.extend_from_slice(&u64::MAX.to_le_bytes()); // uncommitted
        v.extend_from_slice(&0u64.to_le_bytes());
        v.extend_from_slice(&id.to_le_bytes());
        v
    }

    fn setup(name: &str, capacity: usize) -> (BufferPool, PathBuf) {
        let path = temp(name);
        let metrics = Metrics::new();
        let locks = Arc::new(LockManager::new(
            Duration::from_millis(100),
            metrics.clone(),
        ));
        let pool = BufferPool::new(
            capacity,
            locks,
            PagePolicy::steal_no_force(),
            metrics.clone(),
        );
        let table =
            SegmentedHeapFile::create(&path, TableId(1), desc(), 2, DiskProfile::fast(), metrics)
                .unwrap();
        pool.register_table(Arc::new(table));
        (pool, path)
    }

    fn tid(n: u64) -> TransactionId {
        TransactionId::from_parts(SiteId(0), n)
    }

    #[test]
    fn insert_and_read_back() {
        let (pool, path) = setup("insert", 16);
        let rid = pool
            .insert_tuple_bytes(Some(tid(1)), TableId(1), &tuple_bytes(42))
            .unwrap();
        let bytes = pool.read_tuple_bytes(Some(tid(1)), rid).unwrap();
        assert_eq!(&bytes[16..24], &42i64.to_le_bytes());
        assert_eq!(
            pool.read_timestamp(rid, TsField::Insertion).unwrap(),
            Timestamp::UNCOMMITTED
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn inserts_roll_into_new_segments() {
        let (pool, path) = setup("segments", 64);
        let table = pool.table(TableId(1)).unwrap();
        let per_page = crate::page::slots_per_page(table.tuple_size());
        // Fill 2 pages (one segment) and one more tuple.
        let n = per_page * 2 + 1;
        for i in 0..n {
            pool.insert_tuple_bytes(None, TableId(1), &tuple_bytes(i as i64))
                .unwrap();
        }
        assert_eq!(table.num_segments(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn freed_slots_are_reused_before_growth() {
        let (pool, path) = setup("reuse", 16);
        let rid = pool
            .insert_tuple_bytes(None, TableId(1), &tuple_bytes(1))
            .unwrap();
        pool.remove_tuple(None, rid).unwrap();
        let rid2 = pool
            .insert_tuple_bytes(None, TableId(1), &tuple_bytes(2))
            .unwrap();
        assert_eq!(rid, rid2, "dense packing reuses the freed slot");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn eviction_respects_capacity_and_persists_data() {
        let (pool, path) = setup("evict", 4);
        let table = pool.table(TableId(1)).unwrap();
        let per_page = crate::page::slots_per_page(table.tuple_size());
        let n = per_page * 8; // 8 pages >> capacity 4
        for i in 0..n {
            pool.insert_tuple_bytes(None, TableId(1), &tuple_bytes(i as i64))
                .unwrap();
        }
        assert!(pool.resident() <= 5, "resident={}", pool.resident());
        assert!(pool.metrics().evictions() > 0);
        // Every tuple is still readable (reloaded from disk as needed).
        let mut seen = 0;
        for pid in table.all_page_ids() {
            seen += pool.with_page(None, pid, |p| Ok(p.used())).unwrap();
        }
        assert_eq!(seen, n);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn dirty_page_snapshot_and_flush() {
        let (pool, path) = setup("dirty", 16);
        pool.insert_tuple_bytes(None, TableId(1), &tuple_bytes(1))
            .unwrap();
        assert_eq!(pool.dirty_pages().len(), 1);
        pool.flush_all().unwrap();
        assert!(pool.dirty_pages().is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn set_timestamp_updates_segment_annotations() {
        let (pool, path) = setup("annot", 16);
        let rid = pool
            .insert_tuple_bytes(None, TableId(1), &tuple_bytes(5))
            .unwrap();
        pool.set_timestamp(None, rid, TsField::Insertion, Timestamp(30))
            .unwrap();
        pool.set_timestamp(None, rid, TsField::Deletion, Timestamp(35))
            .unwrap();
        let table = pool.table(TableId(1)).unwrap();
        let seg = table.segments()[0];
        assert_eq!(seg.tmin_insert, Timestamp(30));
        assert_eq!(seg.tmax_insert, Timestamp(30));
        assert_eq!(seg.tmax_delete, Timestamp(35));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn transactional_writes_block_conflicting_writers() {
        let (pool, path) = setup("conflict", 16);
        let rid = pool
            .insert_tuple_bytes(Some(tid(1)), TableId(1), &tuple_bytes(1))
            .unwrap();
        // tid(1) holds X on the page; tid(2)'s write times out.
        let err = pool
            .with_page_mut(Some(tid(2)), rid.page, |_| Ok(()))
            .unwrap_err();
        assert!(matches!(err, DbError::LockTimeout { .. }));
        // Lock-free (historical) read still proceeds.
        pool.with_page(None, rid.page, |p| {
            assert_eq!(p.used(), 1);
            Ok(())
        })
        .unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bulk_appenders_fill_disjoint_pages_concurrently() {
        let path = temp("bulk");
        let metrics = Metrics::new();
        let locks = Arc::new(LockManager::new(
            Duration::from_millis(100),
            metrics.clone(),
        ));
        let pool = Arc::new(BufferPool::new(
            256,
            locks,
            PagePolicy::steal_no_force(),
            metrics.clone(),
        ));
        let table =
            SegmentedHeapFile::create(&path, TableId(1), desc(), 4, DiskProfile::fast(), metrics)
                .unwrap();
        pool.register_table(Arc::new(table));
        let per_thread = 500;
        let rids: Vec<RecordId> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|t| {
                    let pool = pool.clone();
                    s.spawn(move || {
                        let mut app = pool.bulk_appender(TableId(1)).unwrap();
                        (0..per_thread)
                            .map(|i| {
                                app.insert(&tuple_bytes((t * per_thread + i) as i64))
                                    .unwrap()
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        // Every append landed in a distinct slot.
        let mut unique = rids.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), 4 * per_thread);
        // And every tuple is readable through the pool.
        let table = pool.table(TableId(1)).unwrap();
        let mut seen = 0;
        for pid in table.all_page_ids() {
            seen += pool.with_page(None, pid, |p| Ok(p.used())).unwrap();
        }
        assert_eq!(seen, 4 * per_thread);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn zone_map_tracks_flush_and_invalidation() {
        let (pool, path) = setup("zones", 16);
        let table = pool.table(TableId(1)).unwrap();
        let rid = pool
            .insert_tuple_bytes(None, TableId(1), &tuple_bytes(1))
            .unwrap();
        assert!(
            table.zone_entry(rid.page.page_no).is_none(),
            "unflushed mutations leave no summary"
        );
        pool.flush_all().unwrap();
        let z = table
            .zone_entry(rid.page.page_no)
            .expect("flush stores a summary");
        assert_eq!(z.rows, 1);
        assert!(z.any_uncommitted);
        pool.set_timestamp(None, rid, TsField::Insertion, Timestamp(30))
            .unwrap();
        assert!(
            table.zone_entry(rid.page.page_no).is_none(),
            "mutation invalidates the summary"
        );
        pool.flush_all().unwrap();
        let z = table.zone_entry(rid.page.page_no).unwrap();
        assert!(!z.any_uncommitted);
        assert_eq!(z.ins_max, Timestamp(30));
        assert_eq!(z.max_del, Timestamp::ZERO);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn crash_loses_unflushed_pages() {
        let path = temp("crash");
        let metrics = Metrics::new();
        {
            let locks = Arc::new(LockManager::new(Duration::from_millis(50), metrics.clone()));
            let pool = BufferPool::new(16, locks, PagePolicy::steal_no_force(), metrics.clone());
            let table = SegmentedHeapFile::create(
                &path,
                TableId(1),
                desc(),
                2,
                DiskProfile::fast(),
                metrics.clone(),
            )
            .unwrap();
            pool.register_table(Arc::new(table));
            let rid = pool
                .insert_tuple_bytes(None, TableId(1), &tuple_bytes(7))
                .unwrap();
            pool.flush_all().unwrap();
            // A second insert after the flush is never written back.
            pool.insert_tuple_bytes(None, TableId(1), &tuple_bytes(8))
                .unwrap();
            assert_eq!(rid.page.page_no, 1);
            // `pool` dropped here without flushing = crash.
        }
        let table =
            SegmentedHeapFile::open(&path, TableId(1), desc(), 2, DiskProfile::fast(), metrics)
                .unwrap();
        let page = table.read_page(1).unwrap();
        assert_eq!(page.used(), 1, "only the flushed tuple survives");
        std::fs::remove_file(&path).unwrap();
    }
}
