//! The lock manager (thesis §6.1.2).
//!
//! Strict two-phase locking at page granularity for ordinary transactions,
//! plus table granularity for recovery: Phase 3 of HARBOR's recovery takes a
//! *table-level read lock* on every recovery object at the buddies (§5.4.1),
//! which must block page-level writers. That requires hierarchical locking,
//! so the manager implements the classic multi-granularity modes
//! `IS / IX / S / SIX / X`: writers take `IX` on the table before `X` on a
//! page, readers take `IS` before `S`, and the recovering site's table-`S`
//! conflicts with writers' table-`IX` exactly as §5.4.1 needs.
//!
//! Deadlocks are resolved by timeout, as in the thesis ("the call employs a
//! simple timeout mechanism and throws an exception"). The timeout is
//! configurable; [`LockManager::release_all`] implements `releaseLocks`.
//!
//! Historical queries never call into this module at all — that they are
//! lock-free is what lets recovery Phase 2 run without quiescing the system.

use harbor_common::lockrank::{self, Rank};
use harbor_common::{DbError, DbResult, Metrics, PageId, TableId, TransactionId};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Lockable resources.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum LockKey {
    Table(TableId),
    Page(PageId),
}

impl std::fmt::Display for LockKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LockKey::Table(t) => write!(f, "{t}"),
            LockKey::Page(p) => write!(f, "{p}"),
        }
    }
}

/// Multi-granularity lock modes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum LockMode {
    /// Intention shared: this txn holds S locks below.
    IntentionShared,
    /// Intention exclusive: this txn holds X locks below.
    IntentionExclusive,
    /// Shared.
    Shared,
    /// Shared + intention exclusive.
    SharedIntentionExclusive,
    /// Exclusive.
    Exclusive,
}

use LockMode::*;

impl LockMode {
    /// Classic multi-granularity compatibility matrix.
    pub fn compatible(self, other: LockMode) -> bool {
        matches!(
            (self, other),
            (IntentionShared, IntentionShared)
                | (IntentionShared, IntentionExclusive)
                | (IntentionShared, Shared)
                | (IntentionShared, SharedIntentionExclusive)
                | (IntentionExclusive, IntentionShared)
                | (IntentionExclusive, IntentionExclusive)
                | (Shared, IntentionShared)
                | (Shared, Shared)
                | (SharedIntentionExclusive, IntentionShared)
        )
    }

    /// Least upper bound in the mode lattice — the mode a holder ends up
    /// with after also acquiring `other` (lock upgrade).
    pub fn join(self, other: LockMode) -> LockMode {
        if self == other {
            return self;
        }
        match (self.min(other), self.max(other)) {
            (IntentionShared, m) => m,
            (IntentionExclusive, Shared) => SharedIntentionExclusive,
            (IntentionExclusive, SharedIntentionExclusive) => SharedIntentionExclusive,
            (Shared, SharedIntentionExclusive) => SharedIntentionExclusive,
            (_, Exclusive) => Exclusive,
            (a, b) => {
                debug_assert!(false, "unhandled join {a:?} {b:?}");
                Exclusive
            }
        }
    }

    /// `true` when holding `self` satisfies a request for `want`.
    pub fn covers(self, want: LockMode) -> bool {
        self.join(want) == self
    }
}

#[derive(Default)]
struct LockEntry {
    holders: HashMap<TransactionId, LockMode>,
    /// Number of transactions blocked on this entry (for fairness metrics).
    waiters: usize,
}

struct State {
    locks: HashMap<LockKey, LockEntry>,
    /// Which key each blocked transaction is currently waiting for (every
    /// transaction waits for at most one lock at a time). Feeds the
    /// waits-for-graph deadlock detector.
    waiting_for: HashMap<TransactionId, (LockKey, LockMode)>,
}

/// How deadlocks are broken.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum DeadlockPolicy {
    /// The thesis' approach (§6.1.2): wait out the timeout, then error.
    #[default]
    Timeout,
    /// Extension: build the waits-for graph at block time and refuse the
    /// wait immediately when it would close a cycle (requester = victim).
    /// The timeout remains as a backstop.
    WaitsForGraph,
}

/// The per-site lock manager.
pub struct LockManager {
    state: Mutex<State>,
    released: Condvar,
    timeout: Duration,
    policy: DeadlockPolicy,
    metrics: Metrics,
}

impl LockManager {
    pub fn new(timeout: Duration, metrics: Metrics) -> Self {
        Self::with_policy(timeout, DeadlockPolicy::Timeout, metrics)
    }

    pub fn with_policy(timeout: Duration, policy: DeadlockPolicy, metrics: Metrics) -> Self {
        LockManager {
            state: Mutex::new(State {
                locks: HashMap::new(),
                waiting_for: HashMap::new(),
            }),
            released: Condvar::new(),
            timeout,
            policy,
            metrics,
        }
    }

    /// Would `tid` waiting for `key` in `mode` close a waits-for cycle?
    /// DFS over "waiter → conflicting holders" edges.
    fn closes_cycle(st: &State, tid: TransactionId, key: LockKey, mode: LockMode) -> bool {
        // Conflicting holders of the key a transaction waits for.
        let blockers = |t: TransactionId, k: LockKey, m: LockMode| -> Vec<TransactionId> {
            st.locks
                .get(&k)
                .map(|e| {
                    e.holders
                        .iter()
                        .filter(|(other, held)| **other != t && !m.compatible(**held))
                        .map(|(other, _)| *other)
                        .collect()
                })
                .unwrap_or_default()
        };
        let mut stack = blockers(tid, key, mode);
        let mut seen: Vec<TransactionId> = Vec::new();
        while let Some(t) = stack.pop() {
            if t == tid {
                return true;
            }
            if seen.contains(&t) {
                continue;
            }
            seen.push(t);
            if let Some((k, m)) = st.waiting_for.get(&t) {
                stack.extend(blockers(t, *k, *m));
            }
        }
        false
    }

    /// Blocks until the lock is granted or the deadlock timeout expires
    /// (`acquireLock` of §6.1.2).
    pub fn acquire(&self, tid: TransactionId, key: LockKey, mode: LockMode) -> DbResult<()> {
        self.acquire_with_timeout(tid, key, mode, self.timeout)
    }

    /// As [`acquire`](Self::acquire) with an explicit timeout; recovery uses
    /// long timeouts when waiting out pending update transactions (§5.4.1
    /// "retries until it succeeds").
    pub fn acquire_with_timeout(
        &self,
        tid: TransactionId,
        key: LockKey,
        mode: LockMode,
        timeout: Duration,
    ) -> DbResult<()> {
        let deadline = Instant::now() + timeout;
        let _rank = lockrank::acquire(Rank::LockManager);
        let mut st = self.state.lock();
        let mut waited = false;
        loop {
            let entry = st.locks.entry(key).or_default();
            let held = entry.holders.get(&tid).copied();
            let target = held.map(|h| h.join(mode)).unwrap_or(mode);
            if held.map(|h| h.covers(mode)).unwrap_or(false) {
                return Ok(()); // already sufficient
            }
            let conflict = entry
                .holders
                .iter()
                .any(|(other, m)| *other != tid && !target.compatible(*m));
            if !conflict {
                entry.holders.insert(tid, target);
                if waited {
                    self.metrics.add_lock_waits(1);
                }
                return Ok(());
            }
            waited = true;
            // End the mutable borrow of the entry before graph traversal.
            let _ = entry;
            if self.policy == DeadlockPolicy::WaitsForGraph
                && Self::closes_cycle(&st, tid, key, target)
            {
                self.metrics.add_lock_waits(1);
                self.metrics.add_lock_timeouts(1);
                return Err(DbError::LockTimeout {
                    txn: tid,
                    what: format!("{key} (waits-for cycle)"),
                });
            }
            if let Some(e) = st.locks.get_mut(&key) {
                e.waiters += 1;
            }
            st.waiting_for.insert(tid, (key, target));
            let timed_out = self.released.wait_until(&mut st, deadline).timed_out();
            st.waiting_for.remove(&tid);
            if let Some(e) = st.locks.get_mut(&key) {
                e.waiters -= 1;
            }
            if timed_out {
                self.metrics.add_lock_waits(1);
                self.metrics.add_lock_timeouts(1);
                return Err(DbError::LockTimeout {
                    txn: tid,
                    what: key.to_string(),
                });
            }
        }
    }

    /// `hasAccess` of §6.1.2: does `tid` already hold a lock covering `mode`?
    pub fn has_access(&self, tid: TransactionId, key: LockKey, mode: LockMode) -> bool {
        let _rank = lockrank::acquire(Rank::LockManager);
        let st = self.state.lock();
        st.locks
            .get(&key)
            .and_then(|e| e.holders.get(&tid))
            .map(|h| h.covers(mode))
            .unwrap_or(false)
    }

    /// Releases every lock held by `tid` (`releaseLocks`; end of strict 2PL).
    pub fn release_all(&self, tid: TransactionId) {
        let _rank = lockrank::acquire(Rank::LockManager);
        let mut st = self.state.lock();
        st.locks.retain(|_, e| {
            e.holders.remove(&tid);
            !e.holders.is_empty() || e.waiters > 0
        });
        drop(st);
        self.released.notify_all();
    }

    /// Releases one specific lock (recovery releases its remote read locks
    /// object by object, §5.4.2).
    pub fn release(&self, tid: TransactionId, key: LockKey) {
        let _rank = lockrank::acquire(Rank::LockManager);
        let mut st = self.state.lock();
        if let Some(e) = st.locks.get_mut(&key) {
            e.holders.remove(&tid);
            if e.holders.is_empty() && e.waiters == 0 {
                st.locks.remove(&key);
            }
        }
        drop(st);
        self.released.notify_all();
    }

    /// Transactions currently holding a lock on `key` (any mode). Used by a
    /// recovery buddy to detect and break a dead recoverer's locks (§5.5.1:
    /// "overrides the node's ownership of the locks and releases them").
    pub fn holders(&self, key: LockKey) -> Vec<TransactionId> {
        let _rank = lockrank::acquire(Rank::LockManager);
        let st = self.state.lock();
        st.locks
            .get(&key)
            .map(|e| e.holders.keys().copied().collect())
            .unwrap_or_default()
    }

    /// Number of distinct locks currently held (tests / introspection).
    pub fn held_count(&self) -> usize {
        let _rank = lockrank::acquire(Rank::LockManager);
        self.state.lock().locks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harbor_common::ids::SiteId;
    use std::sync::Arc;

    fn tid(n: u64) -> TransactionId {
        TransactionId::from_parts(SiteId(0), n)
    }

    fn mgr(ms: u64) -> LockManager {
        LockManager::new(Duration::from_millis(ms), Metrics::new())
    }

    fn pkey(n: u32) -> LockKey {
        LockKey::Page(PageId::new(TableId(1), n))
    }

    #[test]
    fn mode_lattice_and_compatibility() {
        assert!(IntentionShared.compatible(IntentionExclusive));
        assert!(!Shared.compatible(IntentionExclusive));
        assert!(!Exclusive.compatible(IntentionShared));
        assert_eq!(Shared.join(IntentionExclusive), SharedIntentionExclusive);
        assert_eq!(IntentionShared.join(Shared), Shared);
        assert_eq!(Shared.join(Exclusive), Exclusive);
        assert!(Exclusive.covers(Shared));
        assert!(!Shared.covers(Exclusive));
        assert!(SharedIntentionExclusive.covers(IntentionExclusive));
    }

    #[test]
    fn shared_locks_coexist_exclusive_does_not() {
        let m = mgr(50);
        m.acquire(tid(1), pkey(0), Shared).unwrap();
        m.acquire(tid(2), pkey(0), Shared).unwrap();
        let err = m.acquire(tid(3), pkey(0), Exclusive).unwrap_err();
        assert!(matches!(err, DbError::LockTimeout { .. }));
        m.release_all(tid(1));
        m.release_all(tid(2));
        m.acquire(tid(3), pkey(0), Exclusive).unwrap();
    }

    #[test]
    fn upgrade_from_shared_to_exclusive() {
        let m = mgr(50);
        m.acquire(tid(1), pkey(0), Shared).unwrap();
        // Sole holder upgrades (the insert path's S -> X upgrade, §6.1.3).
        m.acquire(tid(1), pkey(0), Exclusive).unwrap();
        assert!(m.has_access(tid(1), pkey(0), Exclusive));
        // A second reader blocks the upgrade.
        let m = mgr(50);
        m.acquire(tid(1), pkey(0), Shared).unwrap();
        m.acquire(tid(2), pkey(0), Shared).unwrap();
        assert!(m.acquire(tid(1), pkey(0), Exclusive).is_err());
    }

    #[test]
    fn table_read_lock_blocks_page_writers_via_intentions() {
        let m = mgr(50);
        let table = LockKey::Table(TableId(9));
        // Recovering site: table-level S (Phase 3).
        m.acquire(tid(1), table, Shared).unwrap();
        // Writer must take IX on the table first — and blocks.
        assert!(m.acquire(tid(2), table, IntentionExclusive).is_err());
        // A reader's IS is fine.
        m.acquire(tid(3), table, IntentionShared).unwrap();
        // After the recoverer releases, the writer proceeds.
        m.release(tid(1), table);
        m.acquire(tid(2), table, IntentionExclusive).unwrap();
        m.acquire(tid(2), pkey(0), Exclusive).unwrap();
    }

    #[test]
    fn blocked_writer_wakes_on_release() {
        let m = Arc::new(mgr(5_000));
        m.acquire(tid(1), pkey(0), Exclusive).unwrap();
        let m2 = m.clone();
        let h = std::thread::spawn(move || m2.acquire(tid(2), pkey(0), Exclusive));
        std::thread::sleep(Duration::from_millis(20));
        m.release_all(tid(1));
        h.join().unwrap().unwrap();
        assert!(m.has_access(tid(2), pkey(0), Exclusive));
    }

    #[test]
    fn release_all_clears_every_key() {
        let m = mgr(50);
        for i in 0..10 {
            m.acquire(tid(1), pkey(i), Exclusive).unwrap();
        }
        assert_eq!(m.held_count(), 10);
        m.release_all(tid(1));
        assert_eq!(m.held_count(), 0);
    }

    #[test]
    fn holders_reports_foreign_locks_for_override() {
        let m = mgr(50);
        let key = LockKey::Table(TableId(1));
        m.acquire(tid(7), key, Shared).unwrap();
        assert_eq!(m.holders(key), vec![tid(7)]);
        // Buddy detects the recoverer died and overrides its lock.
        m.release_all(tid(7));
        assert!(m.holders(key).is_empty());
    }

    #[test]
    fn reacquire_held_lock_is_idempotent() {
        let m = mgr(50);
        m.acquire(tid(1), pkey(0), Shared).unwrap();
        m.acquire(tid(1), pkey(0), Shared).unwrap();
        m.acquire(tid(1), pkey(0), IntentionShared).unwrap(); // covered
        assert!(m.has_access(tid(1), pkey(0), Shared));
    }

    #[test]
    fn waits_for_graph_detects_cycles_immediately() {
        let m = LockManager::with_policy(
            Duration::from_secs(10), // long timeout: detection must not rely on it
            DeadlockPolicy::WaitsForGraph,
            Metrics::new(),
        );
        let m = Arc::new(m);
        // Classic cross deadlock: T1 holds A wants B; T2 holds B wants A.
        m.acquire(tid(1), pkey(0), Exclusive).unwrap();
        m.acquire(tid(2), pkey(1), Exclusive).unwrap();
        let m2 = m.clone();
        let h = std::thread::spawn(move || m2.acquire(tid(1), pkey(1), Exclusive));
        std::thread::sleep(Duration::from_millis(50));
        let t0 = std::time::Instant::now();
        let err = m.acquire(tid(2), pkey(0), Exclusive).unwrap_err();
        assert!(t0.elapsed() < Duration::from_secs(1), "no timeout wait");
        assert!(err.to_string().contains("cycle"), "{err}");
        // Breaking the cycle lets T1 proceed.
        m.release_all(tid(2));
        h.join().unwrap().unwrap();
    }

    #[test]
    fn waits_for_graph_allows_benign_waits() {
        let m = Arc::new(LockManager::with_policy(
            Duration::from_secs(5),
            DeadlockPolicy::WaitsForGraph,
            Metrics::new(),
        ));
        m.acquire(tid(1), pkey(0), Exclusive).unwrap();
        let m2 = m.clone();
        let h = std::thread::spawn(move || m2.acquire(tid(2), pkey(0), Exclusive));
        std::thread::sleep(Duration::from_millis(30));
        m.release_all(tid(1));
        h.join().unwrap().unwrap();
    }

    #[test]
    fn three_way_cycle_is_detected() {
        let m = Arc::new(LockManager::with_policy(
            Duration::from_secs(10),
            DeadlockPolicy::WaitsForGraph,
            Metrics::new(),
        ));
        m.acquire(tid(1), pkey(0), Exclusive).unwrap();
        m.acquire(tid(2), pkey(1), Exclusive).unwrap();
        m.acquire(tid(3), pkey(2), Exclusive).unwrap();
        let spawn_wait = |t: u64, k: u32, m: &Arc<LockManager>| {
            let m = m.clone();
            std::thread::spawn(move || m.acquire(tid(t), pkey(k), Exclusive))
        };
        let h1 = spawn_wait(1, 1, &m); // T1 -> T2
        let h2 = spawn_wait(2, 2, &m); // T2 -> T3
        std::thread::sleep(Duration::from_millis(60));
        // T3 -> T1 closes the 3-cycle.
        let err = m.acquire(tid(3), pkey(0), Exclusive).unwrap_err();
        assert!(err.to_string().contains("cycle"));
        m.release_all(tid(3));
        h2.join().unwrap().unwrap();
        m.release_all(tid(2));
        h1.join().unwrap().unwrap();
    }

    #[test]
    fn timeout_counts_metrics() {
        let metrics = Metrics::new();
        let m = LockManager::new(Duration::from_millis(10), metrics.clone());
        m.acquire(tid(1), pkey(0), Exclusive).unwrap();
        let _ = m.acquire(tid(2), pkey(0), Exclusive);
        assert_eq!(metrics.lock_timeouts(), 1);
        assert!(metrics.lock_waits() >= 1);
    }
}
