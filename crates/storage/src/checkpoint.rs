//! HARBOR checkpointing (thesis Fig 3-2 and §5.2/§5.3).
//!
//! A checkpoint at time `T` guarantees that all insertions and deletions of
//! transactions that committed at or before `T` are on disk. The procedure:
//!
//! ```text
//! procedure checkpoint():
//!     let T = current time - 1
//!     obtain snapshot of dirty pages table
//!     for each page P in snapshot: latch, flush, unlatch
//!     record T to checkpoint file
//! ```
//!
//! The engine serializes the "which commits count" decision (it holds a
//! commit gate while computing `T` and taking the snapshot); this module
//! performs the flushing and owns the on-disk [`CheckpointRecord`],
//! including the per-object checkpoints that recovery writes as individual
//! objects catch up.

use crate::buffer::BufferPool;
use crate::file::CheckpointRecord;
use harbor_common::{DbResult, DiskProfile, TableId, Timestamp};
use parking_lot::Mutex;
use std::path::{Path, PathBuf};

/// Owns the checkpoint record for one site.
pub struct Checkpointer {
    path: PathBuf,
    disk: DiskProfile,
    record: Mutex<CheckpointRecord>,
    /// Set during recovery: periodic checkpoints are disabled (§5.2).
    suspended: std::sync::atomic::AtomicBool,
}

impl Checkpointer {
    /// Opens (or initializes) the checkpoint record at `path`.
    pub fn open(path: impl AsRef<Path>, disk: DiskProfile) -> DbResult<Self> {
        let path = path.as_ref().to_path_buf();
        let record = CheckpointRecord::read(&path)?;
        Ok(Checkpointer {
            path,
            disk,
            record: Mutex::new(record),
            suspended: std::sync::atomic::AtomicBool::new(false),
        })
    }

    /// The current record (clone).
    pub fn record(&self) -> CheckpointRecord {
        self.record.lock().clone()
    }

    /// The global checkpoint time.
    pub fn global(&self) -> Timestamp {
        self.record.lock().global
    }

    /// Effective checkpoint for one table.
    pub fn for_table(&self, table: TableId) -> Timestamp {
        self.record.lock().for_table(table)
    }

    /// Phase-1 uncommitted-scan start segment for one table.
    pub fn scan_start(&self, table: TableId) -> u32 {
        self.record
            .lock()
            .scan_start
            .get(&table.0)
            .copied()
            .unwrap_or(0)
    }

    /// Disables/enables periodic checkpoints (recovery runs with them off).
    pub fn set_suspended(&self, suspended: bool) {
        self.suspended
            .store(suspended, std::sync::atomic::Ordering::SeqCst);
    }

    pub fn is_suspended(&self) -> bool {
        self.suspended.load(std::sync::atomic::Ordering::SeqCst)
    }

    /// Runs the checkpoint body for time `t` over an already-taken dirty
    /// page snapshot: flush every page, persist directories, sync, then
    /// durably record `t` (plus the per-table scan-start segments supplied
    /// by the engine).
    pub fn checkpoint(
        &self,
        pool: &BufferPool,
        t: Timestamp,
        dirty_snapshot: Vec<harbor_common::PageId>,
        scan_start: Vec<(TableId, u32)>,
    ) -> DbResult<Timestamp> {
        for pid in dirty_snapshot {
            pool.flush_page(pid)?;
        }
        for id in pool.table_ids() {
            let table = pool.table(id)?;
            table.persist_directory()?;
            table.sync()?;
        }
        let mut rec = self.record.lock();
        rec.promote_global(t);
        for (table, seg) in scan_start {
            rec.scan_start.insert(table.0, seg);
        }
        rec.write(&self.path, self.disk)?;
        Ok(t)
    }

    /// Records a finer-granularity per-object checkpoint during recovery
    /// (§5.3): object `table` is consistent up to `t`.
    pub fn checkpoint_object(&self, table: TableId, t: Timestamp) -> DbResult<()> {
        let mut rec = self.record.lock();
        rec.set_object(table, t);
        rec.write(&self.path, self.disk)
    }

    /// Promotes the global checkpoint once recovery of all objects is done
    /// (§5.3) and resumes normal checkpointing.
    pub fn finish_recovery(&self, t: Timestamp) -> DbResult<()> {
        let mut rec = self.record.lock();
        rec.promote_global(t);
        rec.write(&self.path, self.disk)?;
        drop(rec);
        self.set_suspended(false);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::{BufferPool, PagePolicy};
    use crate::lock::LockManager;
    use crate::table::SegmentedHeapFile;
    use harbor_common::{FieldType, Metrics, TupleDesc};
    use std::sync::Arc;
    use std::time::Duration;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("harbor-ckpt-tests")
            .join(format!("{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn tuple_bytes(id: i64) -> Vec<u8> {
        let mut v = Vec::new();
        v.extend_from_slice(&u64::MAX.to_le_bytes());
        v.extend_from_slice(&0u64.to_le_bytes());
        v.extend_from_slice(&id.to_le_bytes());
        v
    }

    #[test]
    fn checkpoint_flushes_and_records_time() {
        let dir = temp_dir("basic");
        let metrics = Metrics::new();
        let locks = Arc::new(LockManager::new(Duration::from_millis(50), metrics.clone()));
        let pool = BufferPool::new(16, locks, PagePolicy::steal_no_force(), metrics.clone());
        let desc = TupleDesc::with_version_columns(vec![("id", FieldType::Int64)]);
        let table = SegmentedHeapFile::create(
            dir.join("t.tbl"),
            TableId(1),
            desc,
            4,
            harbor_common::DiskProfile::fast(),
            metrics,
        )
        .unwrap();
        pool.register_table(Arc::new(table));
        pool.insert_tuple_bytes(None, TableId(1), &tuple_bytes(1))
            .unwrap();

        let ck =
            Checkpointer::open(dir.join("checkpoint"), harbor_common::DiskProfile::fast()).unwrap();
        assert_eq!(ck.global(), Timestamp::ZERO);
        let snapshot = pool.dirty_pages();
        ck.checkpoint(&pool, Timestamp(9), snapshot, vec![(TableId(1), 0)])
            .unwrap();
        assert!(pool.dirty_pages().is_empty());
        assert_eq!(ck.global(), Timestamp(9));
        // Reopen sees the persisted record.
        let ck2 =
            Checkpointer::open(dir.join("checkpoint"), harbor_common::DiskProfile::fast()).unwrap();
        assert_eq!(ck2.global(), Timestamp(9));
        assert_eq!(ck2.scan_start(TableId(1)), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn per_object_checkpoints_then_promotion() {
        let dir = temp_dir("objects");
        let ck =
            Checkpointer::open(dir.join("checkpoint"), harbor_common::DiskProfile::fast()).unwrap();
        ck.checkpoint_object(TableId(1), Timestamp(20)).unwrap();
        ck.checkpoint_object(TableId(2), Timestamp(30)).unwrap();
        assert_eq!(ck.for_table(TableId(1)), Timestamp(20));
        assert_eq!(ck.for_table(TableId(3)), Timestamp::ZERO);
        ck.finish_recovery(Timestamp(25)).unwrap();
        assert_eq!(ck.for_table(TableId(1)), Timestamp(25));
        assert_eq!(ck.for_table(TableId(2)), Timestamp(30));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn suspension_flag_round_trips() {
        let dir = temp_dir("suspend");
        let ck =
            Checkpointer::open(dir.join("checkpoint"), harbor_common::DiskProfile::fast()).unwrap();
        assert!(!ck.is_suspended());
        ck.set_suspended(true);
        assert!(ck.is_suspended());
        ck.finish_recovery(Timestamp(1)).unwrap();
        assert!(!ck.is_suspended());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
