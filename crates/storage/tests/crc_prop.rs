//! Property tests for the page checksum trailer: arbitrary page contents
//! round-trip through flush → evict → fault-in untouched, and *every*
//! single-bit flip of the on-disk image — payload or trailer — fails
//! verification. The second property is what the whole disk-fault plane
//! leans on: a corruption the checksum misses is one the scrubber never
//! repairs.

use harbor_common::config::{PAGE_PAYLOAD, PAGE_SIZE};
use harbor_common::{DiskProfile, Metrics};
use harbor_storage::{slots_per_page, Page, TableFile};
use proptest::prelude::*;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;

fn temp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("harbor-storage-crc-prop");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}-{}", std::process::id()))
}

/// A page of `width`-byte tuples with the given slot payloads inserted.
fn build_page(width: usize, tuples: &[Vec<u8>]) -> Page {
    let mut page = Page::init(width);
    for t in tuples {
        let mut bytes = vec![0u8; width];
        let n = t.len().min(width);
        bytes[..n].copy_from_slice(&t[..n]);
        page.insert(&bytes).unwrap();
    }
    page
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Flush a page of arbitrary-width tuples, drop every in-memory copy
    /// (reopen the file), and fault it back in: the payload comes back
    /// byte-identical and the checksum verifies.
    #[test]
    fn crc_round_trips_for_arbitrary_tuple_widths(
        width in 24usize..=200,
        seed_tuples in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..32),
            1..40,
        ),
        page_no in 0u32..8,
    ) {
        let cap = slots_per_page(width);
        let tuples: Vec<Vec<u8>> = seed_tuples.into_iter().take(cap).collect();
        let page = build_page(width, &tuples);
        let path = temp(&format!("roundtrip-{width}-{page_no}"));
        {
            let f = TableFile::create(&path, DiskProfile::fast(), Metrics::new()).unwrap();
            f.write_page(page_no, page.as_bytes()).unwrap();
            f.sync().unwrap();
        }
        // Evict + fault-in: a fresh handle has no cached state.
        let f = TableFile::open(&path, DiskProfile::fast(), Metrics::new()).unwrap();
        let bytes = f.read_page(page_no).unwrap();
        prop_assert_eq!(&bytes[..PAGE_PAYLOAD], &page.as_bytes()[..PAGE_PAYLOAD]);
        let reread = Page::from_bytes(bytes, width).unwrap();
        prop_assert_eq!(reread.used(), tuples.len());
        std::fs::remove_file(&path).unwrap();
    }

    /// Every single-bit flip of the stored image is detected: a payload
    /// flip changes the computed checksum (FNV-1a's absorption step is a
    /// bijection per byte), and a trailer flip changes the stored one.
    #[test]
    fn every_single_bit_flip_is_detected(
        width in 24usize..=200,
        marker in 1u8..=255,
        bit in 0usize..(PAGE_SIZE * 8),
    ) {
        let tuples = vec![vec![marker; 16]; 3];
        let page = build_page(width, &tuples);
        let path = temp(&format!("bitflip-{width}-{bit}"));
        let f = TableFile::create(&path, DiskProfile::fast(), Metrics::new()).unwrap();
        f.write_page(0, page.as_bytes()).unwrap();
        f.sync().unwrap();
        {
            let mut raw = std::fs::OpenOptions::new()
                .read(true)
                .write(true)
                .open(&path)
                .unwrap();
            raw.seek(SeekFrom::Start((bit / 8) as u64)).unwrap();
            let mut b = [0u8; 1];
            raw.read_exact(&mut b).unwrap();
            b[0] ^= 1 << (bit % 8);
            raw.seek(SeekFrom::Start((bit / 8) as u64)).unwrap();
            raw.write_all(&b).unwrap();
            raw.sync_all().unwrap();
        }
        let err = f.read_page(0).unwrap_err();
        prop_assert!(err.is_corrupt(), "bit {} flip not detected: {}", bit, err);
        std::fs::remove_file(&path).unwrap();
    }
}
