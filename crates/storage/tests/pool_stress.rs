//! Concurrent stress test for the sharded buffer pool: readers, appenders,
//! and a capacity small enough to force continuous clock evictions across
//! every shard, all at once.
//!
//! Invariants checked at quiesce:
//! * no lost pages — every tuple ever acknowledged by an appender reads
//!   back with its exact payload (evicted pages were flushed and reloaded
//!   faithfully);
//! * pin-count integrity — no frame is left pinned once all threads are
//!   done, so nothing leaked a pin under contention;
//! * the global capacity budget held (resident stays within capacity plus
//!   the transient overshoot one in-flight load per thread can add);
//! * the shard counters are consistent: every shard took traffic, and the
//!   per-shard resident counts sum to the pool's resident total.

use harbor_common::{DiskProfile, FieldType, Metrics, TableId, TupleDesc};
use harbor_storage::{BufferPool, LockManager, PagePolicy, SegmentedHeapFile};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

const CAPACITY: usize = 32;
const APPENDERS: usize = 4;
const READERS: usize = 4;
const ROWS_PER_APPENDER: usize = 400;

/// Wide tuples (~0.5 KB) so the appenders' working set spans far more
/// pages than the pool holds and evictions run continuously.
const PAD: usize = 504;

fn tuple_bytes(id: i64) -> Vec<u8> {
    let mut v = Vec::new();
    v.extend_from_slice(&7u64.to_le_bytes()); // committed at t7
    v.extend_from_slice(&0u64.to_le_bytes()); // not deleted
    v.extend_from_slice(&id.to_le_bytes());
    v.resize(16 + 8 + PAD, (id % 251) as u8);
    v
}

#[test]
fn concurrent_readers_appenders_and_evictions() {
    let dir = std::env::temp_dir().join(format!("harbor-pool-stress-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let metrics = Metrics::new();
    let locks = Arc::new(LockManager::new(
        Duration::from_millis(500),
        metrics.clone(),
    ));
    let pool = Arc::new(BufferPool::new(
        CAPACITY,
        locks,
        PagePolicy::steal_no_force(),
        metrics.clone(),
    ));
    let desc = TupleDesc::with_version_columns(vec![
        ("id", FieldType::Int64),
        ("pad", FieldType::FixedStr(PAD as u16)),
    ]);
    let table = SegmentedHeapFile::create(
        dir.join("t.tbl"),
        TableId(1),
        desc,
        4,
        DiskProfile::fast(),
        metrics,
    )
    .unwrap();
    pool.register_table(Arc::new(table));
    assert!(pool.num_shards() > 1, "stress wants a sharded pool");

    // Acknowledged rows: (rid, id). Readers chase this; the final sweep
    // verifies every entry.
    let acked = Arc::new(Mutex::new(Vec::new()));
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        for a in 0..APPENDERS {
            let pool = pool.clone();
            let acked = acked.clone();
            s.spawn(move || {
                for k in 0..ROWS_PER_APPENDER {
                    let id = (a * ROWS_PER_APPENDER + k) as i64;
                    let rid = pool
                        .insert_tuple_bytes(None, TableId(1), &tuple_bytes(id))
                        .expect("append under pressure");
                    acked.lock().unwrap().push((rid, id));
                }
            });
        }
        for _ in 0..READERS {
            let pool = pool.clone();
            let acked = acked.clone();
            let stop = stop.clone();
            s.spawn(move || {
                let mut at = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let snapshot: Vec<_> = {
                        let g = acked.lock().unwrap();
                        if g.is_empty() {
                            continue;
                        }
                        // Stride through what exists so far, wrapping.
                        let len = g.len();
                        (0..16).map(|i| g[(at + i * 7) % len]).collect()
                    };
                    at = at.wrapping_add(1);
                    for (rid, id) in snapshot {
                        let bytes = pool
                            .read_tuple_bytes(None, rid)
                            .expect("read under pressure");
                        assert_eq!(
                            &bytes[16..24],
                            &id.to_le_bytes(),
                            "lost or corrupted tuple {id} at {rid:?}"
                        );
                    }
                }
            });
        }
        // Scoped threads: appenders finish, then readers are told to stop.
        while acked.lock().unwrap().len() < APPENDERS * ROWS_PER_APPENDER {
            std::thread::sleep(Duration::from_millis(5));
        }
        stop.store(true, Ordering::Relaxed);
    });

    // --- quiesce invariants -------------------------------------------
    assert_eq!(pool.pinned_frames(), 0, "a pin leaked under contention");
    let stats = pool.shard_stats();
    let resident_sum: usize = stats.iter().map(|s| s.resident).sum();
    assert_eq!(
        resident_sum,
        pool.resident(),
        "shard resident counts drifted"
    );
    assert!(
        pool.resident() <= CAPACITY + APPENDERS + READERS,
        "capacity budget blown: {} resident over {CAPACITY}",
        pool.resident()
    );
    let total_evictions: u64 = stats.iter().map(|s| s.evictions).sum();
    assert!(
        total_evictions > 0,
        "no evictions — the stress never pressured the pool"
    );
    let shards_hit = stats.iter().filter(|s| s.hits + s.misses > 0).count();
    assert_eq!(
        shards_hit,
        stats.len(),
        "some shards took no traffic: {stats:?}"
    );

    // No lost pages: everything acked reads back exactly, even after the
    // eviction churn (this also faults evicted pages back in).
    for (rid, id) in acked.lock().unwrap().iter() {
        let bytes = pool
            .read_tuple_bytes(None, *rid)
            .unwrap_or_else(|e| panic!("final readback of {rid:?} (id {id}): {e:?}"));
        assert_eq!(&bytes[16..24], &id.to_le_bytes(), "lost tuple {id}");
    }
    assert_eq!(pool.pinned_frames(), 0);
    let _ = std::fs::remove_dir_all(&dir);
}
