//! Model-based property tests: the slotted page and the segment directory
//! are driven with random operation sequences and checked against simple
//! in-memory reference models.

use harbor_common::config::PAGE_SIZE;
use harbor_common::{DiskProfile, Metrics, Timestamp};
use harbor_storage::{slots_per_page, Directory, Page, ScanBounds, TableFile};
use proptest::prelude::*;
use std::collections::BTreeMap;

const TUPLE: usize = 40;

#[derive(Clone, Debug)]
enum PageOp {
    Insert(u8),
    Remove(u16),
    Write(u16, u8),
    SetDeletion(u16, u64),
}

fn page_op() -> impl Strategy<Value = PageOp> {
    let max_slot = slots_per_page(TUPLE) as u16;
    prop_oneof![
        any::<u8>().prop_map(PageOp::Insert),
        (0..max_slot).prop_map(PageOp::Remove),
        (0..max_slot, any::<u8>()).prop_map(|(s, b)| PageOp::Write(s, b)),
        (0..max_slot, 1u64..1000).prop_map(|(s, t)| PageOp::SetDeletion(s, t)),
    ]
}

fn tuple_bytes(marker: u8) -> Vec<u8> {
    let mut v = vec![0u8; TUPLE];
    v[..8].copy_from_slice(&u64::MAX.to_le_bytes()); // uncommitted insertion
    v[16] = marker;
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The page agrees with a `BTreeMap<slot, marker>` model under any
    /// operation sequence, and survives a serialize/deserialize cycle.
    #[test]
    fn page_matches_reference_model(ops in proptest::collection::vec(page_op(), 1..120)) {
        let mut page = Page::init(TUPLE);
        let mut model: BTreeMap<u16, u8> = BTreeMap::new();
        let capacity = slots_per_page(TUPLE);
        for op in &ops {
            match op {
                PageOp::Insert(marker) => {
                    let r = page.insert(&tuple_bytes(*marker));
                    if model.len() < capacity {
                        let slot = r.expect("free slot must be found");
                        // Dense packing: the lowest free slot.
                        let expected = (0..capacity as u16)
                            .find(|s| !model.contains_key(s))
                            .unwrap();
                        prop_assert_eq!(slot, expected);
                        model.insert(slot, *marker);
                    } else {
                        prop_assert!(r.is_err());
                    }
                }
                PageOp::Remove(slot) => {
                    let r = page.remove(*slot);
                    match model.remove(slot) {
                        Some(marker) => prop_assert_eq!(r.expect("occupied")[16], marker),
                        None => prop_assert!(r.is_err()),
                    }
                }
                PageOp::Write(slot, marker) => {
                    let r = page.write(*slot, &tuple_bytes(*marker));
                    if model.contains_key(slot) {
                        r.expect("write to occupied slot");
                        model.insert(*slot, *marker);
                    } else {
                        prop_assert!(r.is_err());
                    }
                }
                PageOp::SetDeletion(slot, t) => {
                    let r = page.set_timestamp(
                        *slot,
                        harbor_wal::record::TsField::Deletion,
                        Timestamp(*t),
                    );
                    prop_assert_eq!(r.is_ok(), model.contains_key(slot));
                }
            }
        }
        // Final state equivalence.
        prop_assert_eq!(page.used(), model.len());
        let slots: Vec<u16> = page.occupied_slots().collect();
        let expect: Vec<u16> = model.keys().copied().collect();
        prop_assert_eq!(&slots, &expect);
        for (slot, marker) in &model {
            prop_assert_eq!(page.read(*slot).unwrap()[16], *marker);
        }
        // Round trip through bytes.
        let bytes: Box<[u8; PAGE_SIZE]> = Box::new(*page.as_bytes());
        let back = Page::from_bytes(bytes, TUPLE).unwrap();
        prop_assert_eq!(back.used(), model.len());
        for (slot, marker) in &model {
            prop_assert_eq!(back.read(*slot).unwrap()[16], *marker);
        }
    }

    /// Segment pruning never drops a segment that could contain a
    /// matching committed tuple, for arbitrary annotation patterns.
    #[test]
    fn pruning_is_conservative(
        events in proptest::collection::vec((0u8..3, 1u64..200), 1..60),
        query_t in 1u64..200,
    ) {
        let dir_path = std::env::temp_dir().join(format!(
            "harbor-prop-dir-{}-{}.tbl",
            std::process::id(),
            events.len() * 1000 + query_t as usize,
        ));
        let _ = std::fs::remove_file(&dir_path);
        let file = TableFile::create(&dir_path, DiskProfile::fast(), Metrics::new()).unwrap();
        let mut dir = Directory::create(&file, 64).unwrap();
        // Reference: per segment, the set of (insert, delete) event times.
        let mut per_segment: Vec<Vec<(Option<u64>, Option<u64>)>> = vec![Vec::new()];
        let mut pages: Vec<u32> = vec![dir.allocate_page().unwrap()];
        for (kind, t) in &events {
            match kind {
                0 => {
                    // new segment
                    dir.create_segment(&file).unwrap();
                    pages.push(dir.allocate_page().unwrap());
                    per_segment.push(Vec::new());
                }
                1 => {
                    // committed insert at t into the *last* segment
                    let seg = per_segment.len() - 1;
                    dir.note_insert_commit(pages[seg], Timestamp(*t));
                    per_segment[seg].push((Some(*t), None));
                }
                _ => {
                    // deletion at t in a pseudo-random earlier segment
                    let seg = (*t as usize) % per_segment.len();
                    dir.note_delete(pages[seg], Timestamp(*t));
                    per_segment[seg].push((None, Some(*t)));
                }
            }
        }
        let t = Timestamp(query_t);
        // For each of the three recovery predicates, every segment with a
        // matching reference event must survive pruning.
        let survives = |bounds: &ScanBounds| -> Vec<bool> {
            let kept: Vec<u32> = dir.prune(bounds).into_iter().map(|(s, _)| s.0).collect();
            (0..per_segment.len() as u32).map(|i| kept.contains(&i)).collect()
        };
        let kept = survives(&ScanBounds::inserted_at_or_before(t));
        for (i, evs) in per_segment.iter().enumerate() {
            if evs.iter().any(|(ins, _)| ins.map(|x| x <= t.0).unwrap_or(false)) {
                prop_assert!(kept[i], "ins<= pruning dropped segment {i}");
            }
        }
        let kept = survives(&ScanBounds::inserted_after(t));
        for (i, evs) in per_segment.iter().enumerate() {
            if evs.iter().any(|(ins, _)| ins.map(|x| x > t.0).unwrap_or(false)) {
                prop_assert!(kept[i], "ins> pruning dropped segment {i}");
            }
        }
        let kept = survives(&ScanBounds::deleted_after(t));
        for (i, evs) in per_segment.iter().enumerate() {
            if evs.iter().any(|(_, del)| del.map(|x| x > t.0).unwrap_or(false)) {
                prop_assert!(kept[i], "del> pruning dropped segment {i}");
            }
        }
        let _ = std::fs::remove_file(&dir_path);
    }
}
