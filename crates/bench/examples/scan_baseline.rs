//! Standalone read-hot-path measurement: seq scan, recovery range scan, and
//! wire-shipping encode over one hot (fully resident) table.
//!
//! Run before/after read-path changes to capture throughput deltas:
//! `cargo run --release -p harbor-bench --example scan_baseline [rows]`

use std::time::Instant;

use harbor_common::codec::Encoder;
use harbor_common::tuple::{raw_version_timestamps, transcode_fixed_to_wire};
use harbor_common::{FieldType, SiteId, StorageConfig, Timestamp, Tuple, Value};
use harbor_dist::message::TuplesFrameBuilder;
use harbor_engine::{Engine, EngineOptions};
use harbor_exec::{collect, ReadMode, SeqScan};

fn median_ns(mut samples: Vec<u128>) -> u128 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn bench(name: &str, rows: usize, iters: usize, mut f: impl FnMut() -> usize) {
    // Warm-up pass populates the buffer pool and the branch predictors.
    let got = f();
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        let n = f();
        samples.push(start.elapsed().as_nanos());
        assert_eq!(n, got, "{name}: unstable result cardinality");
    }
    let med = median_ns(samples);
    let per_row = med as f64 / rows as f64;
    let mrows = rows as f64 / (med as f64 / 1e9) / 1e6;
    println!(
        "{name:<28} rows={got:<7} median={med:>12} ns  {per_row:>8.1} ns/row  {mrows:>8.2} Mrows/s"
    );
}

fn main() {
    let rows: i64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(50_000);
    let iters = 9;

    let dir = std::env::temp_dir().join(format!("harbor-scan-baseline-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // Pool large enough that the whole table stays hot.
    let storage = StorageConfig {
        buffer_pool_pages: 4096,
        ..StorageConfig::for_tests()
    };
    let e = Engine::open(&dir, EngineOptions::harbor(SiteId(0), storage)).unwrap();
    let def = e
        .create_table(
            "t",
            vec![
                ("id".into(), FieldType::Int64),
                ("v".into(), FieldType::Int32),
                ("pad".into(), FieldType::FixedStr(16)),
            ],
        )
        .unwrap();
    for i in 0..rows {
        // Half the rows deleted at t20 so visibility filtering has work to do.
        let del = if i % 2 == 0 {
            Timestamp::ZERO
        } else {
            Timestamp(20)
        };
        let t = Tuple::versioned(
            Timestamp(10),
            del,
            vec![
                Value::Int64(i),
                Value::Int32((i % 1000) as i32),
                Value::Str(format!("row-{i:08}")),
            ],
        );
        e.insert_recovered(def.id, &t).unwrap();
    }
    let pool = e.pool().clone();

    bench("seq_scan_historical", rows as usize, iters, || {
        let mut s =
            SeqScan::new(pool.clone(), def.id, ReadMode::Historical(Timestamp(15))).unwrap();
        collect(&mut s).unwrap().len()
    });

    bench("recovery_range_scan", rows as usize, iters, || {
        let mut s = SeqScan::new(
            pool.clone(),
            def.id,
            ReadMode::SeeDeletedHistorical(Timestamp(25)),
        )
        .unwrap();
        collect(&mut s).unwrap().len()
    });

    bench("scan_ship_encode", rows as usize, iters, || {
        let mut s = SeqScan::new(
            pool.clone(),
            def.id,
            ReadMode::SeeDeletedHistorical(Timestamp(25)),
        )
        .unwrap();
        let tuples = collect(&mut s).unwrap();
        let mut total = 0usize;
        for batch in tuples.chunks(512) {
            // Mirrors Response::Tuples encoding: tag, done, count, wire tuples.
            let mut enc = Encoder::new();
            enc.put_u8(5);
            enc.put_bool(false);
            enc.put_u32(batch.len() as u32);
            for t in batch {
                t.write_wire(&mut enc);
            }
            total += enc.len();
        }
        assert!(total > 0);
        tuples.len()
    });

    // The post-overhaul worker shipping path: admitted rows are transcoded
    // straight from page bytes into the outgoing frame, no Tuple materialized.
    let desc = pool.table(def.id).unwrap().desc().clone();
    bench("scan_ship_zero_copy", rows as usize, iters, || {
        let mode = ReadMode::SeeDeletedHistorical(Timestamp(25));
        let heap = pool.table(def.id).unwrap();
        let mut pages = Vec::new();
        for (seg, _) in heap.prune(&Default::default()) {
            pages.extend(heap.segment_page_ids(seg));
        }
        let mut frame = TuplesFrameBuilder::new();
        let mut total = 0usize;
        let mut shipped = 0usize;
        for pid in pages {
            pool.with_page(mode.lock_tid(), pid, |page| {
                for slot in page.occupied_slots() {
                    let bytes = page.read(slot)?;
                    let (ins, del) = raw_version_timestamps(bytes)?;
                    let Some(masked) = mode.admit(ins, del) else {
                        continue;
                    };
                    transcode_fixed_to_wire(&desc, bytes, masked, frame.encoder())?;
                    frame.note_row();
                }
                Ok(())
            })
            .unwrap();
            if frame.rows() >= 512 {
                let full = std::mem::replace(&mut frame, TuplesFrameBuilder::new());
                shipped += full.rows() as usize;
                total += full.finish(false).len();
            }
        }
        shipped += frame.rows() as usize;
        total += frame.finish(true).len();
        assert!(total > 0);
        shipped
    });

    drop((e, pool));
    let _ = std::fs::remove_dir_all(&dir);
}
