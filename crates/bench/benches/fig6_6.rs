//! Figure 6-6 — decomposition of HARBOR recovery time by phase (§6.4.3).
//!
//! Re-runs the single-table scenario of Fig 6-5 and splits the recovery
//! wall time into its constituents: Phase 1 (local restore to the
//! checkpoint), Phase 2's SELECT+UPDATE (deletion copies — the part that
//! grows with updated historical segments), Phase 2's SELECT+INSERT (the
//! tuple copies — roughly constant for a fixed insert count), and Phase 3
//! (near zero when no transactions run during recovery).
//!
//! A second pass re-runs the heaviest point with the segment-parallel
//! Phase 2 and prints its per-range fetch timers plus the recovery
//! throughput counters (tuples/bytes shipped, ranges fetched/reassigned).

use harbor::{Cluster, ClusterConfig, ReplicationSupervisor, SupervisorConfig, TableSpec};
use harbor_bench::{
    experiment_dir, paper_lan, prefill, print_table, recovery_storage, rows_per_segment,
    run_historical_updates, run_insert_txns, run_recovery_scenario, BenchReport, RecoveryScenario,
    Scale,
};
use harbor_common::SiteId;
use harbor_dist::ProtocolKind;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

fn main() {
    let scale = Scale::from_env();
    let seg_counts: Vec<usize> = match scale {
        Scale::Quick => vec![0, 2, 4, 8],
        _ => vec![0, 2, 4, 6, 8, 10, 12, 16],
    };
    let total_txns: usize = scale.pick(400, 2_000, 20_000);
    let updates_per_segment = scale.pick(20, 50, 100);
    let rps = rows_per_segment(&recovery_storage(scale));
    let prefill_segments = scale.pick(20, 30, 101) as i64;
    let prefill_rows = rps * prefill_segments;
    println!("Figure 6-6: decomposition of HARBOR recovery time by phase (ms)");
    println!("(scale={scale:?}, {total_txns} txns, single table)");
    let mut baseline = BenchReport::new("recovery");
    baseline
        .config("scale", format!("{scale:?}"))
        .config("total_txns", total_txns)
        .config("updates_per_segment", updates_per_segment)
        .config("prefill_rows", prefill_rows)
        .config("seg_counts", format!("{seg_counts:?}"));
    let mut rows = Vec::new();
    for &segs in &seg_counts {
        let run = run_recovery_scenario(
            &format!("fig6_6-{segs}"),
            RecoveryScenario::Harbor1Table,
            scale,
            prefill_rows,
            |cluster, tables| {
                let chosen: Vec<i64> = (0..segs as i64).collect();
                run_historical_updates(cluster, &tables[0], &chosen, updates_per_segment, rps)?;
                let inserts = total_txns.saturating_sub(segs * updates_per_segment);
                run_insert_txns(cluster, tables, inserts, prefill_rows + 1_000_000)
            },
        )
        .expect("scenario");
        let report = run.report.expect("harbor report");
        baseline.entry(
            &format!("harbor_1table_recovery_segs{segs}"),
            run.elapsed.as_nanos(),
            report.tuples_copied() as u64,
        );
        let ms = |d: std::time::Duration| format!("{:.1}", d.as_secs_f64() * 1e3);
        rows.push(vec![
            segs.to_string(),
            ms(report.phase1()),
            ms(report.phase2_deletes()),
            ms(report.phase2_inserts()),
            ms(report.phase3()),
            ms(run.elapsed),
            report.tuples_copied().to_string(),
        ]);
    }
    print_table(
        "per-phase recovery time",
        &[
            "segments updated",
            "phase 1",
            "phase 2 SEL+UPD",
            "phase 2 SEL+INS",
            "phase 3",
            "total",
            "tuples copied",
        ],
        &rows,
    );

    // Second pass: the heaviest point again, with the segment-parallel
    // Phase 2, decomposed per range.
    let segs = *seg_counts.last().unwrap();
    let run = run_recovery_scenario(
        &format!("fig6_6-parallel-{segs}"),
        RecoveryScenario::HarborParallelSegments,
        scale,
        prefill_rows,
        |cluster, tables| {
            let chosen: Vec<i64> = (0..segs as i64).collect();
            run_historical_updates(cluster, &tables[0], &chosen, updates_per_segment, rps)?;
            let inserts = total_txns.saturating_sub(segs * updates_per_segment);
            run_insert_txns(cluster, tables, inserts, prefill_rows + 1_000_000)
        },
    )
    .expect("parallel scenario");
    let report = run.report.as_ref().expect("harbor report");
    let mut range_rows = Vec::new();
    for obj in &report.objects {
        for rt in &obj.range_timings {
            range_rows.push(vec![
                obj.table.clone(),
                format!("{}", rt.buddy),
                format!("({}, {}]", rt.lo.0, rt.hi.0),
                rt.tuples.to_string(),
                format!("{:.2}", rt.elapsed.as_secs_f64() * 1e3),
            ]);
        }
    }
    println!();
    println!(
        "segment-parallel Phase 2 at {segs} updated segments: total {:.1} ms, \
         {} ranges fetched, {} reassigned",
        run.elapsed.as_secs_f64() * 1e3,
        report.ranges_fetched(),
        report.ranges_reassigned(),
    );
    print_table(
        "per-range Phase-2 fetch timers",
        &[
            "table",
            "buddy",
            "insertion/deletion range",
            "tuples",
            "fetch ms",
        ],
        &range_rows,
    );
    if let Some(m) = &run.metrics {
        let secs = run.elapsed.as_secs_f64().max(1e-9);
        println!(
            "recovery throughput: {} tuples shipped ({:.0}/s), {:.2} MiB shipped \
             ({:.2} MiB/s), {} tuples applied ({:.0}/s)",
            m.recovery_tuples_shipped,
            m.recovery_tuples_shipped as f64 / secs,
            m.recovery_bytes_shipped as f64 / (1024.0 * 1024.0),
            m.recovery_bytes_shipped as f64 / (1024.0 * 1024.0) / secs,
            m.recovery_tuples_applied,
            m.recovery_tuples_applied as f64 / secs,
        );
    }
    println!(
        "\nread hot path at quiesce (per site, per shard h/m/e/resident, storage fault plane):"
    );
    for line in &run.read_path {
        println!("  {line}");
    }
    println!("commit path at quiesce (coordinator): {}", run.commit_path);
    baseline.entry(
        &format!("harbor_parallel_segments_recovery_segs{segs}"),
        run.elapsed.as_nanos(),
        report.tuples_copied() as u64,
    );
    if let Some(m) = &run.metrics {
        baseline.entry(
            "parallel_recovery_tuples_shipped",
            run.elapsed.as_nanos(),
            m.recovery_tuples_shipped,
        );
    }

    // Third pass: the membership extension's re-replication datapoint.
    // A host of the table is lost and evicted from the catalog; the
    // replication supervisor heals the K deficit by bootstrapping a
    // brand-new copy onto a spare member (Phase-2/3 against the surviving
    // buddy) while foreground inserts keep committing. Reports "time to
    // K" (kill acknowledged → replica count restored), foreground commit
    // latency during the repair window, and the coordinator's membership
    // counters.
    let (time_to_k, tuples_applied) = {
        let dir = experiment_dir("fig6_6-rereplicate");
        let mut cfg = ClusterConfig::new(ProtocolKind::Opt3pc, 3);
        cfg.storage = recovery_storage(scale);
        cfg.transport = paper_lan();
        cfg.tables = vec![TableSpec::paper_table("sales")];
        let cluster = Arc::new(Cluster::build(dir.join("cluster"), cfg).expect("cluster"));
        // Place the table on sites 1 and 2 only: site 3 is the spare the
        // supervisor will re-replicate onto.
        cluster.placement().mutate(|p| {
            p.add_replicated_table("sales", &[SiteId(1), SiteId(2)]);
        });
        prefill(&cluster, "sales", prefill_rows).expect("prefill");
        let mut sup = ReplicationSupervisor::new(SupervisorConfig::for_tests(0x5EED), &cluster);
        // Kill one host and evict it: capacity is gone for good, so only
        // re-replication onto the spare can restore K.
        cluster.crash_worker(SiteId(2)).expect("crash");
        let t0 = Instant::now();
        cluster.decommission_worker(SiteId(2)).expect("evict");
        // Foreground load during the repair window.
        let stop = Arc::new(AtomicBool::new(false));
        let lat: Arc<Mutex<Vec<Duration>>> = Arc::new(Mutex::new(Vec::new()));
        let load = {
            let (cluster, stop, lat) = (cluster.clone(), stop.clone(), lat.clone());
            std::thread::spawn(move || {
                let mut id = prefill_rows + 2_000_000;
                while !stop.load(Ordering::SeqCst) {
                    let t = Instant::now();
                    if cluster
                        .insert_one("sales", harbor_workload::paper_row(id))
                        .is_ok()
                    {
                        lat.lock().unwrap().push(t.elapsed());
                    }
                    id += 1;
                }
            })
        };
        let mut tick_no = 0u64;
        while sup.tick(&cluster, tick_no).is_none() {
            tick_no += 1;
            assert!(tick_no < 10_000, "supervisor never completed the repair");
        }
        let time_to_k = t0.elapsed();
        stop.store(true, Ordering::SeqCst);
        load.join().expect("load thread");
        assert_eq!(
            cluster.placement().sites_for("sales").expect("placed"),
            vec![SiteId(1), SiteId(3)]
        );
        let mut lat = Arc::try_unwrap(lat)
            .expect("load stopped")
            .into_inner()
            .unwrap();
        lat.sort_unstable();
        let pct = |p: usize| -> Duration {
            if lat.is_empty() {
                Duration::ZERO
            } else {
                lat[(lat.len() - 1) * p / 100]
            }
        };
        println!(
            "\nre-replication to K after a kill+evict ({prefill_rows} rows): \
             time-to-K {:.1} ms; foreground during repair: {} commits, \
             p50 {:.2} ms, p99 {:.2} ms",
            time_to_k.as_secs_f64() * 1e3,
            lat.len(),
            pct(50).as_secs_f64() * 1e3,
            pct(99).as_secs_f64() * 1e3,
        );
        println!(
            "membership counters (coordinator): {}",
            cluster
                .coordinator()
                .metrics()
                .snapshot()
                .membership_summary()
        );
        // Volume actually materialized on the spare: count its rows and
        // cross-check against the surviving buddy.
        let count_rows = |site: SiteId| -> u64 {
            let e = cluster.engine(site).expect("engine");
            let def = e.table_def("sales").expect("table");
            let mut scan = harbor_exec::SeqScan::new(
                e.pool().clone(),
                def.id,
                harbor_exec::ReadMode::SeeDeleted,
            )
            .expect("scan");
            harbor_exec::collect(&mut scan).expect("collect").len() as u64
        };
        let (spare_rows, buddy_rows) = (count_rows(SiteId(3)), count_rows(SiteId(1)));
        assert_eq!(
            spare_rows, buddy_rows,
            "re-replicated copy diverges from its buddy"
        );
        cluster.shutdown();
        (time_to_k, spare_rows)
    };
    baseline.entry(
        "rereplicate_time_to_k",
        time_to_k.as_nanos(),
        tuples_applied,
    );
    baseline.write().expect("write BENCH_recovery.json");
}
