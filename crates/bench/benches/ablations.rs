//! Design-choice ablations called out in the thesis but not given figures:
//!
//! 1. **Checkpoint frequency** (§6.3: "setting the checkpoint frequency
//!    between 1–10 s affected transaction throughput by no more than
//!    9.5%"): throughput of an insert stream while the workers checkpoint
//!    at different intervals, plus the recovery time each interval buys.
//! 2. **Group-commit delay timer** (§6.2: "various group delay timer
//!    values ranging from 1–5 ms only decreased group commit performance"):
//!    traditional-2PC throughput with delay timers of 0/1/2/5 ms.
//! 3. **Segment size**: HARBOR recovery time for the same update workload
//!    under coarser vs finer segments — the pruning-precision trade-off of
//!    §4.2 (fewer, larger segments = more data scanned per dirty segment).
//! 4. **Deletion log** on/off.
//! 5. **Segment-parallel Phase-2 pipeline**: applier-pool width × buddy
//!    fan-out × scan batch for the ranged, multi-buddy catch-up.

use harbor::{Cluster, ClusterConfig, TableSpec};
use harbor_bench::{
    experiment_dir, paper_lan, prefill, print_table, recovery_storage, rows_per_segment,
    run_insert_txns, run_recovery_scenario_with, throughput_storage, RecoveryScenario, Scale,
};
use harbor_common::SiteId;
use harbor_dist::ProtocolKind;
use harbor_wal::GroupCommit;
use harbor_workload::{run_concurrent_streams, InsertStream};
use std::time::Duration;

fn checkpoint_frequency_sweep(scale: Scale) {
    let txns = scale.pick(150, 600, 3000);
    let streams = 5;
    let mut rows = Vec::new();
    let mut baseline_tps = None;
    for interval_ms in [0u64, 250, 1_000, 5_000] {
        let mut cfg = ClusterConfig::new(ProtocolKind::Opt3pc, 2);
        cfg.storage = throughput_storage();
        cfg.transport = paper_lan();
        cfg.checkpoint_every = (interval_ms > 0).then(|| Duration::from_millis(interval_ms));
        for s in 0..streams {
            cfg.tables.push(TableSpec::paper_table(&format!("t{s}")));
        }
        let cluster = Cluster::build(experiment_dir(&format!("ablation-ckpt-{interval_ms}")), cfg)
            .expect("cluster");
        let sources: Vec<InsertStream> = (0..streams)
            .map(|s| InsertStream::new(&format!("t{s}"), 0))
            .collect();
        let sample = run_concurrent_streams(cluster.coordinator(), streams, txns, |s, _| {
            vec![sources[s].next()]
        })
        .expect("streams");
        // What the interval buys: crash + recovery time right after the run.
        let victim = SiteId(1);
        cluster.crash_worker(victim).expect("crash");
        let t0 = std::time::Instant::now();
        cluster.recover_worker_harbor(victim).expect("recover");
        let rec_ms = t0.elapsed().as_secs_f64() * 1e3;
        let tps = sample.tps();
        let base = *baseline_tps.get_or_insert(tps);
        rows.push(vec![
            if interval_ms == 0 {
                "none".into()
            } else {
                format!("{interval_ms} ms")
            },
            format!("{tps:.0}"),
            format!("{:+.1}%", (tps / base - 1.0) * 100.0),
            format!("{rec_ms:.1}"),
        ]);
        cluster.shutdown();
    }
    print_table(
        "ablation 1: checkpoint frequency (paper: 1-10 s intervals cost <= 9.5% tps)",
        &["checkpoint every", "tps", "vs none", "recovery (ms)"],
        &rows,
    );
}

fn group_delay_sweep(scale: Scale) {
    let txns = scale.pick(60, 300, 1500);
    let streams = 10;
    let mut rows = Vec::new();
    for delay_ms in [0u64, 1, 2, 5] {
        let gc = GroupCommit::Enabled {
            delay: (delay_ms > 0).then(|| Duration::from_millis(delay_ms)),
        };
        let cluster = harbor_bench::throughput_cluster(
            &format!("ablation-delay-{delay_ms}"),
            ProtocolKind::Trad2pc,
            2,
            streams,
            gc,
        )
        .expect("cluster");
        let sources: Vec<InsertStream> = (0..streams)
            .map(|s| InsertStream::new(&format!("t{s}"), 0))
            .collect();
        let sample = run_concurrent_streams(cluster.coordinator(), streams, txns, |s, _| {
            vec![sources[s].next()]
        })
        .expect("streams");
        rows.push(vec![
            format!("{delay_ms} ms"),
            format!("{:.0}", sample.tps()),
        ]);
        cluster.shutdown();
    }
    print_table(
        "ablation 2: group-commit delay timer, trad 2PC, 10 streams \
         (paper: 1-5 ms timers only decreased performance)",
        &["delay timer", "tps"],
        &rows,
    );
}

fn segment_size_sweep(scale: Scale) {
    let mut rows = Vec::new();
    for seg_pages in [4u32, 16, 64, 256] {
        let mut storage = recovery_storage(scale);
        storage.segment_pages = seg_pages;
        let mut cfg = ClusterConfig::new(ProtocolKind::Opt3pc, 2);
        cfg.storage = storage.clone();
        cfg.tables = vec![TableSpec::paper_table("t0")];
        // Serial Phase 2: this sweep isolates the §4.2 pruning trade-off;
        // the segment-parallel path has its own sweep (#5 below).
        cfg.recovery.parallel_segments = false;
        let cluster = Cluster::build(experiment_dir(&format!("ablation-seg-{seg_pages}")), cfg)
            .expect("cluster");
        let rps = rows_per_segment(&storage);
        // Fixed data volume; the segment count varies with the size.
        let total_rows = rows_per_segment(&recovery_storage(scale)) * scale.pick(16, 24, 101);
        prefill(&cluster, "t0", total_rows).expect("prefill");
        // The *same* historical rows are updated under every segmentation:
        // keys spread across the oldest quarter of the data. Finer segments
        // confine the recovery scan to fewer dirty bytes; coarser segments
        // drag whole large segments into Phase 2 (§4.2 trade-off).
        let updates = scale.pick(80usize, 160, 400);
        for k in 0..updates {
            let key = (k as i64) * (total_rows / 4) / updates as i64;
            cluster
                .run_txn(vec![harbor_workload::update_by_key_request(
                    "t0", key, k as i32,
                )])
                .expect("update");
        }
        let n_segments = (total_rows / rps).max(1);
        let victim = SiteId(1);
        cluster.crash_worker(victim).expect("crash");
        let t0 = std::time::Instant::now();
        let report = cluster.recover_worker_harbor(victim).expect("recover");
        rows.push(vec![
            format!("{} KB", seg_pages * 4),
            n_segments.to_string(),
            format!("{:.1}", t0.elapsed().as_secs_f64() * 1e3),
            report.tuples_copied().to_string(),
        ]);
        cluster.shutdown();
    }
    print_table(
        "ablation 3: segment size vs recovery time (fixed data + update volume)",
        &["segment size", "segments", "recovery (ms)", "tuples copied"],
        &rows,
    );
}

fn deletion_log_sweep(scale: Scale) {
    // Fig 6-5's single-table HARBOR scenario with the §5.2-footnote
    // deletion log on and off: the log should flatten the growth with the
    // number of updated historical segments.
    let rps = rows_per_segment(&recovery_storage(scale));
    let prefill_segments = scale.pick(20i64, 30, 101);
    let prefill_rows = rps * prefill_segments;
    let per_segment = scale.pick(20usize, 50, 100);
    let mut rows = Vec::new();
    for segs in [0usize, 4, 8, 12] {
        let mut times = Vec::new();
        for use_log in [false, true] {
            let mut cfg = ClusterConfig::new(ProtocolKind::Opt3pc, 2);
            cfg.storage = recovery_storage(scale);
            cfg.tables = vec![TableSpec::paper_table("t0")];
            cfg.use_deletion_log = use_log;
            // Serial Phase 2: the ranged path never takes the buddy's
            // deletion-log fast path, which is the thing under test here.
            cfg.recovery.parallel_segments = false;
            let cluster = Cluster::build(
                experiment_dir(&format!("ablation-dlog-{segs}-{use_log}")),
                cfg,
            )
            .expect("cluster");
            prefill(&cluster, "t0", prefill_rows).expect("prefill");
            for seg in 0..segs as i64 {
                for k in 0..per_segment {
                    let key = seg * rps + (k as i64 % rps);
                    cluster
                        .run_txn(vec![harbor_workload::update_by_key_request(
                            "t0", key, k as i32,
                        )])
                        .expect("update");
                }
            }
            let victim = SiteId(1);
            cluster.crash_worker(victim).expect("crash");
            let t0 = std::time::Instant::now();
            cluster.recover_worker_harbor(victim).expect("recover");
            times.push(t0.elapsed().as_secs_f64() * 1e3);
            cluster.shutdown();
        }
        rows.push(vec![
            segs.to_string(),
            format!("{:.1}", times[0]),
            format!("{:.1}", times[1]),
        ]);
    }
    print_table(
        "ablation 4: deletion log (the §5.2-footnote deletion vector),          recovery time (ms) vs historical segments updated",
        &["segments updated", "segment scans", "deletion log"],
        &rows,
    );
}

fn phase2_pipeline_sweep(scale: Scale) {
    // The segment-parallel Phase-2 knobs, swept one axis at a time around
    // the (appliers=2, fan-out=2, batch=512) default: fan-out 1 isolates
    // the pipelining gain over serial, fan-out 2 adds the second buddy,
    // appliers scale the local apply half, and the scan batch trades
    // per-frame overhead against pipeline latency.
    let rps = rows_per_segment(&recovery_storage(scale));
    let prefill_rows = rps * scale.pick(16i64, 24, 101);
    let inserts = scale.pick(2_000usize, 6_000, 40_000);
    let mut rows = Vec::new();
    for (appliers, fanout, scan_batch) in [
        (1usize, 1usize, 512usize),
        (2, 1, 512),
        (1, 2, 512),
        (2, 2, 512),
        (4, 2, 512),
        (2, 2, 64),
        (2, 2, 2048),
    ] {
        let run = run_recovery_scenario_with(
            &format!("ablation5-{appliers}-{fanout}-{scan_batch}"),
            RecoveryScenario::HarborParallelSegments,
            scale,
            prefill_rows,
            |cfg| {
                cfg.recovery.phase2_appliers = appliers;
                cfg.recovery.max_buddy_fanout = fanout;
                cfg.scan_batch = scan_batch;
            },
            |cluster, tables| run_insert_txns(cluster, tables, inserts, prefill_rows + 1_000_000),
        )
        .expect("scenario");
        let report = run.report.expect("harbor report");
        rows.push(vec![
            appliers.to_string(),
            fanout.to_string(),
            scan_batch.to_string(),
            format!("{:.1}", run.elapsed.as_secs_f64() * 1e3),
            report.ranges_fetched().to_string(),
        ]);
    }
    print_table(
        "ablation 5: segment-parallel Phase 2 — appliers x buddy fan-out x scan batch",
        &[
            "appliers",
            "buddy fan-out",
            "scan batch",
            "recovery (ms)",
            "ranges fetched",
        ],
        &rows,
    );
}

fn main() {
    let scale = Scale::from_env();
    println!("Design ablations (scale={scale:?})");
    checkpoint_frequency_sweep(scale);
    group_delay_sweep(scale);
    segment_size_sweep(scale);
    deletion_log_sweep(scale);
    phase2_pipeline_sweep(scale);
}
