//! Criterion microbenchmarks for the substrate: page operations, segment
//! pruning, the lock manager, WAL append/force (group commit on and off),
//! the wire codec, and the visibility check. These back the design notes in
//! DESIGN.md; the paper figures live in the dedicated `fig6_*`/`table4_*`
//! targets.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use harbor_bench::{median_ns, BenchReport, Scale};
use harbor_common::codec::Wire;
use harbor_common::time::visible_at;
use harbor_common::{DiskProfile, Metrics, PageId, SiteId, TableId, Timestamp, TransactionId};
use harbor_storage::{slots_per_page, LockKey, LockManager, LockMode, Page, ScanBounds};
use harbor_wal::record::{LogPayload, LogRecord};
use harbor_wal::{GroupCommit, LogManager, Lsn};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// `HARBOR_BENCH_SMOKE=1` (the CI bench-smoke job) runs only the scan
/// section — enough to produce and validate `BENCH_scan.json` quickly.
fn smoke_only() -> bool {
    std::env::var_os("HARBOR_BENCH_SMOKE").is_some()
}

const TUPLE: usize = 72;

fn tuple_bytes(id: u64) -> Vec<u8> {
    let mut v = vec![0u8; TUPLE];
    v[..8].copy_from_slice(&u64::MAX.to_le_bytes());
    v[16..24].copy_from_slice(&id.to_le_bytes());
    v
}

fn bench_page(c: &mut Criterion) {
    if smoke_only() {
        return;
    }
    let mut g = c.benchmark_group("page");
    g.bench_function("insert_until_full", |b| {
        let cap = slots_per_page(TUPLE);
        let data = tuple_bytes(7);
        b.iter_batched(
            || Page::init(TUPLE),
            |mut p| {
                for _ in 0..cap {
                    p.insert(black_box(&data)).unwrap();
                }
                p
            },
            BatchSize::SmallInput,
        );
    });
    g.bench_function("scan_occupied", |b| {
        let mut p = Page::init(TUPLE);
        let cap = slots_per_page(TUPLE);
        for i in 0..cap {
            p.insert(&tuple_bytes(i as u64)).unwrap();
        }
        b.iter(|| {
            let mut acc = 0u64;
            for s in p.occupied_slots() {
                acc = acc.wrapping_add(p.read(s).unwrap()[16] as u64);
            }
            black_box(acc)
        });
    });
    g.bench_function("set_timestamp_in_place", |b| {
        let mut p = Page::init(TUPLE);
        let slot = p.insert(&tuple_bytes(1)).unwrap();
        let mut t = 1u64;
        b.iter(|| {
            t += 1;
            p.set_timestamp(slot, harbor_wal::record::TsField::Deletion, Timestamp(t))
                .unwrap();
        });
    });
    g.finish();
}

fn bench_visibility_and_pruning(c: &mut Criterion) {
    if smoke_only() {
        return;
    }
    let mut g = c.benchmark_group("visibility");
    g.bench_function("visible_at", |b| {
        b.iter(|| {
            let mut n = 0;
            for i in 0..1000u64 {
                if visible_at(
                    black_box(Timestamp(i)),
                    black_box(Timestamp(if i % 3 == 0 { i + 5 } else { 0 })),
                    black_box(Timestamp(500)),
                ) {
                    n += 1;
                }
            }
            black_box(n)
        });
    });
    g.bench_function("segment_prune_decision", |b| {
        let meta = harbor_storage::SegmentMeta {
            tmin_insert: Timestamp(100),
            tmax_insert: Timestamp(200),
            tmax_delete: Timestamp(150),
            start_page: 1,
            page_count: 16,
        };
        let bounds = ScanBounds {
            ins_after: Some(Timestamp(180)),
            del_after: Some(Timestamp(149)),
            ..Default::default()
        };
        b.iter(|| black_box(bounds.segment_may_match(black_box(3), black_box(&meta))));
    });
    g.finish();
}

fn bench_lock_manager(c: &mut Criterion) {
    if smoke_only() {
        return;
    }
    let mut g = c.benchmark_group("lock_manager");
    let tid = TransactionId::from_parts(SiteId(0), 1);
    g.bench_function("acquire_release_x", |b| {
        let m = LockManager::new(Duration::from_millis(100), Metrics::new());
        let key = LockKey::Page(PageId::new(TableId(1), 0));
        b.iter(|| {
            m.acquire(tid, key, LockMode::Exclusive).unwrap();
            m.release_all(tid);
        });
    });
    g.bench_function("acquire_100_then_release_all", |b| {
        let m = LockManager::new(Duration::from_millis(100), Metrics::new());
        b.iter(|| {
            for i in 0..100 {
                m.acquire(
                    tid,
                    LockKey::Page(PageId::new(TableId(1), i)),
                    LockMode::Shared,
                )
                .unwrap();
            }
            m.release_all(tid);
        });
    });
    g.finish();
}

fn bench_wal(c: &mut Criterion) {
    if smoke_only() {
        return;
    }
    let mut g = c.benchmark_group("wal");
    let dir = std::env::temp_dir().join("harbor-micro-wal");
    std::fs::create_dir_all(&dir).unwrap();
    let tid = TransactionId::from_parts(SiteId(0), 1);
    let rec = LogRecord::new(
        tid,
        Lsn::NONE,
        LogPayload::Commit {
            commit_time: Timestamp(1),
        },
    );
    g.bench_function("append", |b| {
        let path = dir.join(format!("append-{}.log", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let log = LogManager::open(
            &path,
            GroupCommit::enabled(),
            DiskProfile::fast(),
            Metrics::new(),
        )
        .unwrap();
        b.iter(|| black_box(log.append(&rec)));
    });
    g.bench_function("append_forced_no_fsync", |b| {
        let path = dir.join(format!("forced-{}.log", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let log = LogManager::open(
            &path,
            GroupCommit::enabled(),
            DiskProfile::fast(),
            Metrics::new(),
        )
        .unwrap();
        b.iter(|| log.append_forced(&rec).unwrap());
    });
    g.finish();
}

fn bench_codec(c: &mut Criterion) {
    if smoke_only() {
        return;
    }
    let mut g = c.benchmark_group("codec");
    let tid = TransactionId::from_parts(SiteId(1), 42);
    let rec = LogRecord::new(
        tid,
        Lsn(123),
        LogPayload::Update(harbor_wal::record::RedoOp::InsertTuple {
            rid: harbor_common::RecordId::new(PageId::new(TableId(3), 9), 4),
            data: tuple_bytes(9),
        }),
    );
    g.bench_function("log_record_encode", |b| {
        b.iter(|| black_box(rec.to_vec()));
    });
    let bytes = rec.to_vec();
    g.bench_function("log_record_decode", |b| {
        b.iter(|| black_box(LogRecord::from_slice(&bytes).unwrap()));
    });
    g.finish();
}

/// A scan-sized streaming response (what the recovery fast path ships).
fn scan_batch_response(rows: usize) -> harbor_dist::Response {
    let batch = (0..rows)
        .map(|i| {
            harbor_common::Tuple::versioned(
                Timestamp(10 + i as u64),
                Timestamp::ZERO,
                harbor_workload::paper_row(i as i64),
            )
        })
        .collect();
    harbor_dist::Response::Tuples { batch, done: false }
}

fn bench_transport(c: &mut Criterion) {
    if smoke_only() {
        return;
    }
    let mut g = c.benchmark_group("transport");
    // Framing a streamed batch: encode-then-copy-behind-a-prefix (the old
    // Response→send path) vs encoding straight into the framed buffer.
    let resp = scan_batch_response(512);
    g.bench_function("frame_batch_encode_then_copy", |b| {
        b.iter(|| {
            let body = resp.to_vec();
            let mut framed = Vec::with_capacity(body.len() + 4);
            framed.extend_from_slice(&(body.len() as u32).to_le_bytes());
            framed.extend_from_slice(&body);
            black_box(framed)
        });
    });
    g.bench_function("frame_batch_to_framed_vec", |b| {
        b.iter(|| black_box(resp.to_framed_vec()));
    });
    // Shipping it over TCP loopback into a draining peer: `send` (header +
    // payload, vectored) vs `send_framed` (pre-framed, one write).
    use harbor_net::Transport;
    let transport = harbor_net::TcpTransport::new(Metrics::new());
    let listener = transport.listen("127.0.0.1:0").unwrap();
    let addr = listener.local_addr();
    let sink = std::thread::spawn(move || {
        let mut chan = listener.accept().unwrap();
        while chan.recv().is_ok() {}
    });
    let mut chan = transport.connect(&addr).unwrap();
    let framed = resp.to_framed_vec();
    g.bench_function("tcp_send", |b| {
        b.iter(|| chan.send(black_box(&framed[4..])).unwrap());
    });
    g.bench_function("tcp_send_framed", |b| {
        b.iter(|| chan.send_framed(black_box(&framed)).unwrap());
    });
    drop(chan);
    sink.join().unwrap();
    g.finish();
}

/// The read-hot-path microbenchmark behind `BENCH_scan.json`: one hot
/// (fully resident) table, timed with manual median-of-N wall clocks so the
/// JSON baseline carries exact nanosecond medians rather than the shim's
/// mean. Covers the batched seq scan, the recovery range scan, the legacy
/// materialize-then-encode shipping path, and the zero-copy transcode path
/// the worker now uses for unpredicated scans.
fn bench_scan(_c: &mut Criterion) {
    use harbor_common::codec::Encoder;
    use harbor_common::tuple::{raw_version_timestamps, transcode_fixed_to_wire};
    use harbor_common::{FieldType, StorageConfig, Tuple, Value};
    use harbor_dist::message::TuplesFrameBuilder;
    use harbor_engine::{Engine, EngineOptions};
    use harbor_exec::{collect, index_lookup, Admission, ParallelSeqScan, ReadMode, SeqScan};

    let scale = Scale::from_env();
    let rows: i64 = if smoke_only() {
        2_000
    } else {
        scale.pick(10_000, 50_000, 200_000)
    };
    let iters = if smoke_only() { 3 } else { 9 };

    let dir = std::env::temp_dir().join(format!("harbor-micro-scan-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let storage = StorageConfig {
        buffer_pool_pages: 8192,
        ..StorageConfig::for_tests()
    };
    let e = Engine::open(&dir, EngineOptions::harbor(SiteId(0), storage)).unwrap();
    let def = e
        .create_table(
            "t",
            vec![
                ("id".into(), FieldType::Int64),
                ("v".into(), FieldType::Int32),
                ("pad".into(), FieldType::FixedStr(16)),
            ],
        )
        .unwrap();
    for i in 0..rows {
        let del = if i % 2 == 0 {
            Timestamp::ZERO
        } else {
            Timestamp(20)
        };
        let t = Tuple::versioned(
            Timestamp(10),
            del,
            vec![
                Value::Int64(i),
                Value::Int32((i % 1000) as i32),
                Value::Str(format!("row-{i:08}")),
            ],
        );
        e.insert_recovered(def.id, &t).unwrap();
    }
    // Flush populates the per-page zone maps, so the chunked scan exercises
    // its fully-visible fast path exactly as a warm production replica would.
    e.pool().flush_all().unwrap();
    let pool = e.pool().clone();
    let desc = pool.table(def.id).unwrap().desc().clone();

    let mut report = BenchReport::new("scan");
    report
        .config("scale", format!("{scale:?}"))
        .config("smoke", smoke_only())
        .config("rows", rows)
        .config("iters", iters)
        .config("deleted_fraction", "0.5")
        .config("pool_shards", pool.num_shards());

    let mut measure = |name: &str, mut f: Box<dyn FnMut() -> usize + '_>| {
        let expect = f(); // warm-up: pool resident, branch predictors primed
        let mut samples = Vec::with_capacity(iters);
        for _ in 0..iters {
            let t0 = Instant::now();
            let n = black_box(f());
            samples.push(t0.elapsed().as_nanos());
            assert_eq!(n, expect, "{name}: unstable cardinality");
        }
        let med = median_ns(samples);
        println!(
            "scan/{name:<36} {:>10.1} ns/row  ({} rows)",
            med as f64 / rows as f64,
            expect
        );
        report.entry(name, med, rows as u64);
    };

    measure(
        "seq_scan_batched",
        Box::new(|| {
            // Pinned to scalar admission: this is the pre-chunking baseline
            // row the CI bench-smoke regression gate compares against.
            let mut s = SeqScan::new(pool.clone(), def.id, ReadMode::Historical(Timestamp(15)))
                .unwrap()
                .with_admission(Admission::Scalar);
            collect(&mut s).unwrap().len()
        }),
    );
    measure(
        "seq_scan_chunked",
        Box::new(|| {
            let mut s = SeqScan::new(pool.clone(), def.id, ReadMode::Historical(Timestamp(15)))
                .unwrap()
                .with_admission(Admission::Chunked);
            collect(&mut s).unwrap().len()
        }),
    );
    for workers in [2usize, 4] {
        measure(
            &format!("seq_scan_parallel{workers}"),
            Box::new(|| {
                let mut s = ParallelSeqScan::new(
                    pool.clone(),
                    def.id,
                    ReadMode::Historical(Timestamp(15)),
                    workers,
                )
                .unwrap();
                collect(&mut s).unwrap().len()
            }),
        );
    }
    // Point reads: one key probed per iteration — full-scan-and-filter vs
    // the tuple-id index (thesis §5.3). Same `rows` denominator, so the
    // ns/row ratio is exactly the median ratio the acceptance bar uses.
    let probe_key = rows / 2;
    measure(
        "point_read_scan",
        Box::new(|| {
            let mut s =
                SeqScan::new(pool.clone(), def.id, ReadMode::Historical(Timestamp(15))).unwrap();
            collect(&mut s)
                .unwrap()
                .iter()
                .filter(|t| t.get(2) == &Value::Int64(probe_key))
                .count()
        }),
    );
    measure(
        "point_read_index",
        Box::new(|| {
            index_lookup(&e, def.id, probe_key, ReadMode::Historical(Timestamp(15)))
                .unwrap()
                .len()
        }),
    );
    measure(
        "recovery_range_scan",
        Box::new(|| {
            let mut s = SeqScan::new(
                pool.clone(),
                def.id,
                ReadMode::SeeDeletedHistorical(Timestamp(25)),
            )
            .unwrap();
            collect(&mut s).unwrap().len()
        }),
    );
    measure(
        "ship_encode_materialized",
        Box::new(|| {
            let mut s = SeqScan::new(
                pool.clone(),
                def.id,
                ReadMode::SeeDeletedHistorical(Timestamp(25)),
            )
            .unwrap();
            let tuples = collect(&mut s).unwrap();
            let mut total = 0usize;
            for batch in tuples.chunks(512) {
                let mut enc = Encoder::new();
                enc.put_u8(5);
                enc.put_bool(false);
                enc.put_u32(batch.len() as u32);
                for t in batch {
                    t.write_wire(&mut enc);
                }
                total += enc.len();
            }
            black_box(total);
            tuples.len()
        }),
    );
    measure(
        "ship_zero_copy",
        Box::new(|| {
            let mode = ReadMode::SeeDeletedHistorical(Timestamp(25));
            let heap = pool.table(def.id).unwrap();
            let mut pages = Vec::new();
            for (seg, _) in heap.prune(&Default::default()) {
                pages.extend(heap.segment_page_ids(seg));
            }
            let mut frame = TuplesFrameBuilder::new();
            let mut shipped = 0usize;
            let mut total = 0usize;
            for pid in pages {
                pool.with_page(mode.lock_tid(), pid, |page| {
                    for slot in page.occupied_slots() {
                        let bytes = page.read(slot)?;
                        let (ins, del) = raw_version_timestamps(bytes)?;
                        let Some(masked) = mode.admit(ins, del) else {
                            continue;
                        };
                        transcode_fixed_to_wire(&desc, bytes, masked, frame.encoder())?;
                        frame.note_row();
                    }
                    Ok(())
                })
                .unwrap();
                if frame.rows() >= 512 {
                    let full = std::mem::replace(&mut frame, TuplesFrameBuilder::new());
                    shipped += full.rows() as usize;
                    total += full.finish(false).len();
                }
            }
            shipped += frame.rows() as usize;
            total += frame.finish(true).len();
            black_box(total);
            shipped
        }),
    );

    report.write().expect("write BENCH_scan.json");
    drop((e, pool));
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500))
        .sample_size(30);
    targets = bench_page, bench_visibility_and_pruning, bench_lock_manager, bench_wal, bench_codec,
        bench_transport, bench_scan
}
criterion_main!(benches);
