//! Figure 6-3 — transaction processing performance with a CPU-intensive
//! workload (§6.3.2).
//!
//! Each transaction inserts one tuple *and* spins the worker CPU for a
//! configurable number of cycles (modelling ETL transformation,
//! compression, materialized-view maintenance, …). Three panels: 1, 5 and
//! 10 concurrent streams; x-axis is simulated work in millions of cycles.
//!
//! Expected trends (the paper's two observations): the relative gaps
//! between protocols shrink (1) as CPU work grows and (2) as concurrency
//! grows.

use harbor_bench::{print_series, throughput_cluster, Scale};
use harbor_dist::{ProtocolKind, UpdateRequest};
use harbor_wal::GroupCommit;
use harbor_workload::run_concurrent_streams;
use harbor_workload::InsertStream;

fn main() {
    let scale = Scale::from_env();
    let panels: Vec<usize> = match scale {
        Scale::Quick => vec![1, 5],
        _ => vec![1, 5, 10],
    };
    let work_levels: Vec<u64> = match scale {
        Scale::Quick => vec![0, 500_000, 1_000_000, 2_000_000],
        _ => vec![
            0, 500_000, 1_000_000, 2_000_000, 3_000_000, 4_000_000, 5_000_000,
        ],
    };
    let txns_per_stream = scale.pick(40, 200, 1000);
    let protocols = [
        ("optimized 3PC (no logging)", ProtocolKind::Opt3pc),
        ("optimized 2PC (no worker logging)", ProtocolKind::Opt2pc),
        ("traditional 2PC", ProtocolKind::Trad2pc),
        ("canonical 3PC", ProtocolKind::Canon3pc),
    ];
    println!("Figure 6-3: throughput (tps) vs simulated CPU work (cycles)");
    println!("(scale={scale:?}, {txns_per_stream} txns/stream)");
    for &streams in &panels {
        println!("\n--- panel: {streams} concurrent transaction(s) ---");
        for (name, protocol) in &protocols {
            let mut points = Vec::new();
            for &cycles in &work_levels {
                let cluster = throughput_cluster(
                    &format!("fig6_3-{protocol:?}-{streams}-{cycles}"),
                    *protocol,
                    2,
                    streams,
                    GroupCommit::enabled(),
                )
                .expect("cluster");
                let sources: Vec<InsertStream> = (0..streams)
                    .map(|s| InsertStream::new(&format!("t{s}"), 0))
                    .collect();
                let sample = run_concurrent_streams(
                    cluster.coordinator(),
                    streams,
                    txns_per_stream,
                    |s, _| {
                        let mut ops = vec![sources[s].next()];
                        if cycles > 0 {
                            ops.push(UpdateRequest::SimulateWork { cycles });
                        }
                        ops
                    },
                )
                .expect("streams");
                points.push((cycles as f64 / 1e6, sample.tps()));
                cluster.shutdown();
            }
            print_series(name, &points);
        }
    }
}
