//! Commit-throughput experiment: epoch group commit vs the serial,
//! paper-faithful 2PC path (DESIGN.md extension 14).
//!
//! N closed-loop client streams run an InsertStream/update-by-key mix
//! against a 2-worker Opt2pc cluster on the emulated paper LAN (~150 µs per
//! message) and paper disk (~5 ms per forced write). The epoch size is
//! swept over {1, 4, 16, 64}: size 1 is the serial path (no epoch config —
//! one forced COMMIT record and one PREPARE/COMMIT round per transaction),
//! larger sizes batch independent transactions into commit epochs with one
//! forced decision record per epoch and vectored PREPARE/COMMIT waves,
//! pipelined two epochs deep.
//!
//! Writes `BENCH_commit.json`: sustained txn/s plus p50/p99/p999 commit
//! latency per epoch size, and the coordinator's batched-sync counters.

use harbor::{Cluster, ClusterConfig, TableSpec};
use harbor_bench::{
    experiment_dir, paper_lan, print_table, throughput_storage, BenchReport, Scale,
};
use harbor_dist::{EpochCommitConfig, ProtocolKind};
use harbor_wal::GroupCommit;
use harbor_workload::{insert_request, run_concurrent_streams, update_by_key_request};
use std::time::Duration;

/// One swept point: the configured epoch size (1 = serial).
struct Mode {
    epoch_size: usize,
}

impl Mode {
    fn label(&self) -> String {
        if self.epoch_size <= 1 {
            "serial".into()
        } else {
            format!("epoch{}", self.epoch_size)
        }
    }

    fn epoch_commit(&self) -> Option<EpochCommitConfig> {
        if self.epoch_size <= 1 {
            return None;
        }
        Some(EpochCommitConfig {
            max_txns: self.epoch_size,
            // Accumulation window on the order of one forced write: while
            // epoch N's 5 ms force is on the disk, epoch N+1 keeps filling,
            // so epochs approach max_txns instead of draining tiny batches.
            max_wait: Duration::from_millis(5),
            pipeline_depth: 2,
        })
    }
}

fn build_cluster(mode: &Mode, streams: usize) -> Cluster {
    let mut cfg = ClusterConfig::new(ProtocolKind::Opt2pc, 2);
    cfg.storage = throughput_storage();
    cfg.group_commit = GroupCommit::enabled();
    cfg.transport = paper_lan();
    cfg.checkpoint_every = Some(Duration::from_secs(1));
    // One table per stream: client streams never contend on page locks, so
    // the sweep measures the commit protocol, not lock waits.
    for s in 0..streams {
        cfg.tables.push(TableSpec::paper_table(&format!("t{s}")));
    }
    cfg.epoch_commit = mode.epoch_commit();
    Cluster::build(experiment_dir(&format!("commit-{}", mode.label())), cfg)
        .expect("build commit cluster")
}

fn main() {
    let scale = Scale::from_env();
    let streams = scale.pick(16, 32, 64);
    let txns_per_stream = scale.pick(30, 120, 400);
    println!("Commit throughput: epoch group commit vs serial 2PC");
    println!(
        "(scale={scale:?}, {streams} streams x {txns_per_stream} txns, \
         2 workers, paper LAN/disk profile)"
    );
    let mut report = BenchReport::new("commit");
    report
        .config("scale", format!("{scale:?}"))
        .config("streams", streams)
        .config("txns_per_stream", txns_per_stream)
        .config("workers", 2)
        .config("protocol", "Opt2pc")
        .config("profile", "paper LAN (150us/msg), paper disk (5ms/force)");

    let mut rows = Vec::new();
    let mut serial_tps = 0.0f64;
    let mut epoch16_tps = 0.0f64;
    for epoch_size in [1usize, 4, 16, 64] {
        let mode = Mode { epoch_size };
        let cluster = build_cluster(&mode, streams);
        let before = cluster.coordinator().metrics().snapshot();
        // The §6.3-style mix: every transaction inserts one fresh paper row
        // into its stream's table; every fourth also re-updates the row the
        // stream inserted three transactions ago.
        let sample =
            run_concurrent_streams(cluster.coordinator(), streams, txns_per_stream, |s, n| {
                let table = format!("t{s}");
                let mut ops = vec![insert_request(&table, n as i64)];
                if n % 4 == 3 {
                    ops.push(update_by_key_request(&table, n as i64 - 3, n as i32));
                }
                ops
            })
            .expect("commit streams");
        let snap = cluster.coordinator().metrics().snapshot().since(&before);
        let commit_path = snap.commit_path_summary();
        cluster.shutdown();

        let tps = sample.tps();
        if epoch_size == 1 {
            serial_tps = tps;
        }
        if epoch_size == 16 {
            epoch16_tps = tps;
        }
        let us = |d: Duration| d.as_micros().to_string();
        rows.push(vec![
            mode.label(),
            format!("{tps:.0}"),
            us(sample.p50_latency),
            us(sample.p99_latency),
            us(sample.p999_latency),
            sample.committed.to_string(),
            sample.aborted.to_string(),
            snap.batched_syncs_saved.to_string(),
            snap.epochs_committed.to_string(),
        ]);
        println!("  {}: {}", mode.label(), commit_path);
        report.entry_with(
            &mode.label(),
            sample.p50_latency.as_nanos().max(1),
            sample.committed.max(1),
            &[
                ("epoch_size", epoch_size.to_string()),
                ("txns_per_s", format!("{tps:.1}")),
                ("p50_us", sample.p50_latency.as_micros().to_string()),
                ("p99_us", sample.p99_latency.as_micros().to_string()),
                ("p999_us", sample.p999_latency.as_micros().to_string()),
                ("committed", sample.committed.to_string()),
                ("aborted", sample.aborted.to_string()),
                ("batched_syncs_saved", snap.batched_syncs_saved.to_string()),
                ("epochs", snap.epochs_committed.to_string()),
                ("epoch_txns", snap.epoch_txns.to_string()),
            ],
        );
    }
    print_table(
        "commit throughput vs epoch size",
        &[
            "mode",
            "txn/s",
            "p50 us",
            "p99 us",
            "p999 us",
            "committed",
            "aborted",
            "syncs saved",
            "epochs",
        ],
        &rows,
    );
    println!(
        "\nepoch16 vs serial: {:.0} vs {:.0} txn/s ({:.2}x)",
        epoch16_tps,
        serial_tps,
        epoch16_tps / serial_tps.max(1e-9)
    );
    report.write().expect("write BENCH_commit.json");
}
