//! Figure 6-4 — recovery performance as a function of insert transactions
//! since the crash (§6.4.1).
//!
//! Setup per the thesis: four nodes (coordinator + 3 workers); tables
//! prefilled and checkpointed; then M single-insert transactions run with
//! no page flushes; worker 1 crashes and is recovered under four
//! scenarios: ARIES (log replay), HARBOR single table, HARBOR two tables
//! serial, HARBOR two tables parallel.
//!
//! Expected shape: all linear in M; ARIES steeper than HARBOR (the paper
//! crosses over at ~4.6 K inserts); parallel ≥ serial for two tables, with
//! the gap widening as M grows.

use harbor_bench::{
    print_series, recovery_storage, rows_per_segment, run_insert_txns, run_recovery_scenario,
    RecoveryScenario, Scale,
};

fn main() {
    let scale = Scale::from_env();
    let txn_counts: Vec<usize> = match scale {
        Scale::Quick => vec![100, 1000, 3000, 6000, 10000],
        Scale::Standard => vec![100, 500, 1000, 2000, 4000, 8000],
        Scale::Paper => vec![2, 10_000, 20_000, 40_000, 60_000, 80_000],
    };
    // Prefill ~12 segments' worth of history per table (the paper's 1 GB /
    // 101-segment table, scaled).
    let rps = rows_per_segment(&recovery_storage(scale));
    let prefill_rows = rps * scale.pick(12, 24, 101);
    println!("Figure 6-4: recovery time (ms) vs insert transactions since crash");
    println!("(scale={scale:?}, prefill {prefill_rows} rows/table, {rps} rows/segment)");
    for scenario in RecoveryScenario::ALL {
        let mut points = Vec::new();
        for &m in &txn_counts {
            let run = run_recovery_scenario(
                &format!("fig6_4-{scenario:?}-{m}"),
                scenario,
                scale,
                prefill_rows,
                |cluster, tables| run_insert_txns(cluster, tables, m, prefill_rows + 1_000_000),
            )
            .expect("scenario");
            points.push((m as f64, run.elapsed.as_secs_f64() * 1e3));
        }
        print_series(scenario.name(), &points);
    }
}
