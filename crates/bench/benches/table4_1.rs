//! Table 4.1 — action table for the backup coordinator (§4.3.3), driven
//! end-to-end: a coordinator is crashed at each interesting point of the
//! optimized 3PC protocol and a worker resolves the transaction with the
//! consensus-building protocol. The final replicated state is verified to
//! match the action the table prescribes.

use harbor::{Cluster, ClusterConfig, TableSpec, TransportKind};
use harbor_bench::{experiment_dir, print_table};
use harbor_common::Timestamp;
use harbor_common::{SiteId, StorageConfig, Value};
use harbor_dist::{
    backup_action, BackupAction, BackupState, FailPoint, ProtocolKind, UpdateRequest,
};

/// Runs one coordinator-crash scenario; returns (backup state observed,
/// action taken, rows visible afterwards).
fn scenario(name: &str, fail: FailPoint) -> (BackupState, BackupAction, usize) {
    let mut cfg = ClusterConfig::new(ProtocolKind::Opt3pc, 2);
    cfg.storage = StorageConfig::for_tests();
    cfg.transport = TransportKind::InMem {
        latency: None,
        bandwidth: None,
    };
    cfg.tables = vec![TableSpec::small("t")];
    let cluster = Cluster::build(experiment_dir(&format!("table4_1-{name}")), cfg).unwrap();
    // A committed baseline row so scans have a stable reference.
    cluster
        .insert_one("t", vec![Value::Int64(0), Value::Int32(0)])
        .unwrap();
    let coordinator = cluster.coordinator();
    let tid = coordinator.begin().unwrap();
    coordinator
        .update(
            tid,
            UpdateRequest::Insert {
                table: "t".into(),
                values: vec![Value::Int64(1), Value::Int32(1)],
            },
        )
        .unwrap();
    coordinator.set_fail_point(fail);
    let commit_result = if fail == FailPoint::None {
        // "Pending" scenario: crash before commit processing begins.
        coordinator.crash();
        Err(harbor_common::DbError::SiteDown("crashed".into()))
    } else {
        coordinator.commit(tid)
    };
    assert!(commit_result.is_err(), "{name}: coordinator was crashed");
    // Give the workers' disconnect detection a moment.
    std::thread::sleep(std::time::Duration::from_millis(150));
    // The backup is the lowest live participant: worker 1.
    let backup = cluster.worker(SiteId(1)).unwrap();
    let state = backup.backup_state(tid);
    let action = backup_action(state);
    backup.resolve_by_consensus(tid).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(50));
    // Count surviving rows on both replicas directly (coordinator is dead).
    let mut rows = usize::MAX;
    for site in cluster.worker_sites() {
        let e = cluster.engine(site).unwrap();
        let def = e.table_def("t").unwrap();
        let mut scan = harbor_exec::SeqScan::new(
            e.pool().clone(),
            def.id,
            harbor_exec::ReadMode::Historical(Timestamp(1_000_000)),
        )
        .unwrap();
        let n = harbor_exec::collect(&mut scan).unwrap().len();
        assert!(
            rows == usize::MAX || rows == n,
            "{name}: replicas disagree after consensus"
        );
        rows = n;
        assert_eq!(e.locks().held_count(), 0, "{name}: locks leaked at {site}");
    }
    cluster.shutdown();
    (state, action, rows)
}

fn main() {
    let mut rows = Vec::new();
    // Pending: coordinator dies before PREPARE → abort. The worker's
    // failure detection applies the abort the moment it sees the dropped
    // connection (§4.3.2), so by observation time the state is Aborted.
    let (st, action, n) = scenario("pending", FailPoint::None);
    assert!(matches!(st, BackupState::Pending | BackupState::Aborted));
    assert_eq!(action, BackupAction::Abort);
    assert_eq!(n, 1, "pending transaction rolled back");
    rows.push(vec![
        "pending".into(),
        format!("{action:?}"),
        "abort".into(),
        "aborted".into(),
    ]);
    // Prepared, voted YES: coordinator dies after PREPARE → prepare, abort.
    let (st, action, n) = scenario("prepared-yes", FailPoint::AfterPrepare);
    assert!(matches!(st, BackupState::PreparedYes));
    assert_eq!(action, BackupAction::PrepareThenAbort);
    assert_eq!(n, 1);
    rows.push(vec![
        "prepared, voted YES".into(),
        format!("{action:?}"),
        "prepare, then abort".into(),
        "aborted".into(),
    ]);
    // Prepared-to-commit: dies mid-PTC → replay last two phases, commit.
    let (st, action, n) = scenario("ptc", FailPoint::AfterPtcSentTo(1));
    assert!(matches!(st, BackupState::PreparedToCommit(_)));
    assert!(matches!(action, BackupAction::PrepareToCommitThenCommit(_)));
    assert_eq!(n, 2, "transaction committed everywhere");
    rows.push(vec![
        "prepared-to-commit".into(),
        format!("{action:?}"),
        "prepare-to-commit, then commit".into(),
        "committed".into(),
    ]);
    // Committed at backup: dies mid-COMMIT fan-out → commit.
    let (st, action, n) = scenario("committed", FailPoint::AfterCommitSentTo(1));
    assert!(matches!(st, BackupState::Committed(_)));
    assert!(matches!(action, BackupAction::Commit(_)));
    assert_eq!(n, 2);
    rows.push(vec![
        "committed".into(),
        format!("{action:?}"),
        "commit".into(),
        "committed".into(),
    ]);
    // The two pure-function rows not reachable by fail points.
    assert_eq!(backup_action(BackupState::PreparedNo), BackupAction::Abort);
    assert_eq!(backup_action(BackupState::Aborted), BackupAction::Abort);
    rows.push(vec![
        "prepared, voted NO".into(),
        "Abort".into(),
        "abort".into(),
        "aborted".into(),
    ]);
    rows.push(vec![
        "aborted".into(),
        "Abort".into(),
        "abort".into(),
        "aborted".into(),
    ]);
    print_table(
        "Table 4.1: backup coordinator actions (driven end-to-end)",
        &[
            "backup state",
            "action taken",
            "paper action",
            "final outcome",
        ],
        &rows,
    );
}
