//! Figure 6-2 — transaction processing performance of different commit
//! protocols (§6.3.1).
//!
//! One coordinator and two replicating workers; N concurrent client
//! streams, each running single-insert transactions against its own table
//! (the paper isolates streams in separate tables to avoid artificial
//! conflicts). Six configurations:
//!
//! 1. optimized 3PC (no logging anywhere)
//! 2. optimized 2PC (no worker logging)
//! 3. canonical 3PC (workers force 3×)
//! 4. traditional 2PC (workers force 2×, coordinator 1×)
//! 5. traditional 2PC without group commit
//! 6. traditional 2PC without replication (one worker)
//!
//! The no-concurrency column doubles as the latency comparison: the paper
//! reports opt-3PC 1.8 ms vs trad-2PC 18.8 ms (10.2×), opt-2PC 8.9 ms,
//! canonical 3PC 23.4 ms. Absolute numbers here depend on the emulated
//! 5 ms forced write and 150 µs message latency (DESIGN.md §1); the
//! *ordering and ratios* are the reproduction target.

use harbor_bench::{print_series, print_table, throughput_cluster, Scale};
use harbor_dist::ProtocolKind;
use harbor_wal::GroupCommit;
use harbor_workload::{run_concurrent_streams, InsertStream};

struct Config {
    name: &'static str,
    protocol: ProtocolKind,
    workers: usize,
    group_commit: GroupCommit,
}

fn main() {
    let scale = Scale::from_env();
    let levels: Vec<usize> = match scale {
        Scale::Quick => vec![1, 2, 5, 10],
        Scale::Standard => vec![1, 2, 4, 6, 8, 10, 14, 20],
        Scale::Paper => vec![1, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20],
    };
    let txns_per_stream = scale.pick(60, 300, 1500);
    let configs = [
        Config {
            name: "optimized 3PC (no logging)",
            protocol: ProtocolKind::Opt3pc,
            workers: 2,
            group_commit: GroupCommit::enabled(),
        },
        Config {
            name: "optimized 2PC (no worker logging)",
            protocol: ProtocolKind::Opt2pc,
            workers: 2,
            group_commit: GroupCommit::enabled(),
        },
        Config {
            name: "canonical 3PC",
            protocol: ProtocolKind::Canon3pc,
            workers: 2,
            group_commit: GroupCommit::enabled(),
        },
        Config {
            name: "traditional 2PC",
            protocol: ProtocolKind::Trad2pc,
            workers: 2,
            group_commit: GroupCommit::enabled(),
        },
        Config {
            name: "2PC without group commit",
            protocol: ProtocolKind::Trad2pc,
            workers: 2,
            group_commit: GroupCommit::Disabled,
        },
        Config {
            name: "2PC without replication",
            protocol: ProtocolKind::Trad2pc,
            workers: 1,
            group_commit: GroupCommit::enabled(),
        },
    ];

    println!("Figure 6-2: throughput (tps) vs concurrent transactions");
    println!(
        "(scale={scale:?}, {txns_per_stream} txns/stream, emulated 5 ms forced writes, 150 µs LAN)"
    );
    let mut latency_rows: Vec<Vec<String>> = Vec::new();
    for config in &configs {
        let mut points = Vec::new();
        for &streams in &levels {
            let cluster = throughput_cluster(
                &format!("fig6_2-{}-{streams}", config.name.replace(' ', "_")),
                config.protocol,
                config.workers,
                streams,
                config.group_commit,
            )
            .expect("cluster");
            let sources: Vec<InsertStream> = (0..streams)
                .map(|s| InsertStream::new(&format!("t{s}"), 0))
                .collect();
            let sample =
                run_concurrent_streams(cluster.coordinator(), streams, txns_per_stream, |s, _| {
                    vec![sources[s].next()]
                })
                .expect("streams");
            points.push((streams as f64, sample.tps()));
            if streams == 1 {
                latency_rows.push(vec![
                    config.name.to_string(),
                    format!("{:.2}", sample.mean_latency.as_secs_f64() * 1e3),
                ]);
            }
            cluster.shutdown();
        }
        print_series(config.name, &points);
    }
    print_table(
        "single-transaction latency (no concurrency), §6.3.1",
        &["configuration", "latency (ms)"],
        &latency_rows,
    );
    // Headline sanity: opt-3PC beats traditional 2PC at no concurrency.
    let l = |name: &str| -> f64 {
        latency_rows
            .iter()
            .find(|r| r[0] == name)
            .map(|r| r[1].parse().unwrap())
            .unwrap_or(f64::NAN)
    };
    let ratio = l("traditional 2PC") / l("optimized 3PC (no logging)");
    println!("\ntrad-2PC / opt-3PC latency ratio: {ratio:.1}x (paper: 10.2x)");
}
