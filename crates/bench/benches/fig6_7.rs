//! Figure 6-7 — transaction processing performance during site failure and
//! recovery (§6.5).
//!
//! A continuous single-insert stream runs against a table replicated on
//! two workers. Partway in, one worker crashes (throughput *rises*
//! slightly: commit processing now has one participant fewer); later the
//! crashed worker starts HARBOR recovery. Phase 1 is local and invisible;
//! Phase 2's lock-free historical queries drain some buddy resources;
//! Phase 3's short table read lock briefly blocks the insert stream; then
//! the site is online and throughput returns to steady state with both
//! replicas participating.

use harbor::{Cluster, ClusterConfig, TableSpec};
use harbor_bench::{experiment_dir, paper_lan, throughput_storage, Scale};
use harbor_common::SiteId;
use harbor_dist::ProtocolKind;
use harbor_workload::measure::BackgroundLoad;
use harbor_workload::Timeline;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let scale = Scale::from_env();
    let steady = scale.pick(
        Duration::from_secs(2),
        Duration::from_secs(5),
        Duration::from_secs(30),
    );
    let down_time = scale.pick(
        Duration::from_secs(1),
        Duration::from_secs(3),
        Duration::from_secs(30),
    );
    let bucket = scale.pick(
        Duration::from_millis(250),
        Duration::from_millis(500),
        Duration::from_secs(1),
    );
    let mut cfg = ClusterConfig::new(ProtocolKind::Opt3pc, 2);
    cfg.storage = throughput_storage();
    cfg.transport = paper_lan();
    cfg.checkpoint_every = Some(Duration::from_secs(1));
    cfg.tables = vec![TableSpec::paper_table("t0")];
    let cluster = Arc::new(Cluster::build(experiment_dir("fig6_7"), cfg).expect("cluster"));
    let timeline = Arc::new(Timeline::new(bucket));
    let load = BackgroundLoad::start(
        cluster.coordinator().clone(),
        "t0".into(),
        0,
        timeline.clone(),
    );
    std::thread::sleep(steady);
    let victim = SiteId(1);
    let t_crash = timeline.now_secs();
    cluster.crash_worker(victim).expect("crash");
    std::thread::sleep(down_time);
    let t_recover_start = timeline.now_secs();
    let report = cluster.recover_worker_harbor(victim).expect("recover");
    let t_online = timeline.now_secs();
    std::thread::sleep(steady);
    let (committed, aborted) = load.stop();

    println!("Figure 6-7: throughput timeline across crash and recovery");
    println!("(scale={scale:?}, bucket {}s)", bucket.as_secs_f64());
    println!("events:");
    println!("  t={t_crash:>8.2}s  worker crash");
    println!("  t={t_recover_start:>8.2}s  recovery starts (phase 1)");
    let p1_end = t_recover_start + report.phase1().as_secs_f64();
    let p2_end = p1_end + (report.phase2_deletes() + report.phase2_inserts()).as_secs_f64();
    println!("  t={p1_end:>8.2}s  phase 2 starts (historical queries, lock-free)");
    println!("  t={p2_end:>8.2}s  phase 3 starts (read locks + join pending)");
    println!("  t={t_online:>8.2}s  worker online");
    println!("timeline (seconds, tps):");
    for b in timeline.buckets() {
        println!("  {:>8.2}  {:>10.1}", b.at_secs, b.tps);
    }
    println!(
        "\ncommitted={committed} aborted={aborted} tuples_copied={}",
        report.tuples_copied()
    );
    // The stream kept committing throughout (availability claim).
    assert!(committed > 0);
    cluster.shutdown();
}
