//! Figure 6-5 — recovery performance as a function of historical segments
//! updated since the crash (§6.4.2).
//!
//! The transaction count is fixed; a slice of them are indexed updates
//! aimed at tuples in progressively more *historical* segments (never the
//! most recent one, which Phase 1 scans anyway). HARBOR must scan every
//! segment whose `Tmax-deletion` postdates the checkpoint, so its recovery
//! time grows linearly with the number of updated segments, while ARIES
//! only replays the log tail and stays flat — the regime where the
//! log-based baseline wins. With few updated segments (the warehouse
//! common case) HARBOR wins.

use harbor_bench::{
    print_series, recovery_storage, rows_per_segment, run_historical_updates, run_insert_txns,
    run_recovery_scenario, RecoveryScenario, Scale,
};

fn main() {
    let scale = Scale::from_env();
    let seg_counts: Vec<usize> = match scale {
        Scale::Quick => vec![0, 2, 4, 8],
        _ => vec![0, 2, 4, 6, 8, 10, 12, 16],
    };
    let total_txns: usize = scale.pick(400, 2_000, 20_000);
    let updates_per_segment = scale.pick(20, 50, 100);
    let rps = rows_per_segment(&recovery_storage(scale));
    let prefill_segments = scale.pick(20, 30, 101) as i64;
    let prefill_rows = rps * prefill_segments;
    println!("Figure 6-5: recovery time (ms) vs historical segments updated");
    println!(
        "(scale={scale:?}, {total_txns} txns fixed, {updates_per_segment} updates/segment, \
         prefill {prefill_segments} segments/table)"
    );
    for scenario in RecoveryScenario::ALL {
        let mut points = Vec::new();
        for &segs in &seg_counts {
            let run = run_recovery_scenario(
                &format!("fig6_5-{scenario:?}-{segs}"),
                scenario,
                scale,
                prefill_rows,
                |cluster, tables| {
                    // Split the segment budget across the tables (the
                    // two-table scenarios count *total* historical
                    // segments, §6.4.2).
                    let per_table = segs / tables.len();
                    let mut updates = 0usize;
                    for (ti, t) in tables.iter().enumerate() {
                        // Historical segments: the oldest ones (distinct,
                        // never the most recent prefilled segment).
                        let n = per_table + usize::from(ti < segs % tables.len());
                        assert!((n as i64) < prefill_segments - 1);
                        let chosen: Vec<i64> = (0..n as i64).collect();
                        run_historical_updates(cluster, t, &chosen, updates_per_segment, rps)?;
                        updates += chosen.len() * updates_per_segment;
                    }
                    // The rest of the fixed budget is inserts.
                    let inserts = total_txns.saturating_sub(updates);
                    run_insert_txns(cluster, tables, inserts, prefill_rows + 1_000_000)
                },
            )
            .expect("scenario");
            points.push((segs as f64, run.elapsed.as_secs_f64() * 1e3));
        }
        print_series(scenario.name(), &points);
    }
}
