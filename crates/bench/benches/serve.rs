//! Front-door serving experiment: client-observed latency through the
//! `harbor-front` daemon over real loopback TCP (DESIGN.md extension 17).
//!
//! Three scenarios, each measured with the closed-loop multi-client driver
//! (`harbor_workload::run_front_clients`, seeded retry/backoff on typed
//! `Overloaded` sheds):
//!
//! - `steady_tcp` — N clients against a healthy cluster: the baseline SLO.
//! - `crash_recovery` — the same workload while a worker site fail-stop
//!   crashes mid-run and is brought back with HARBOR's three recovery
//!   phases: the paper's headline claim, quoted as a p99 instead of a
//!   throughput dip.
//! - `overload_burst` — 4x the clients against a deliberately tiny front
//!   door (few permits, shallow queue): admission control must shed with
//!   `retry_after` hints instead of stalling sockets, and the p99 of
//!   *admitted* work must stay bounded.
//!
//! Writes `BENCH_serve.json`: p50/p99/p999 client-observed latency per
//! scenario plus sheds/retries/admissions and the drain time.

use harbor::{Cluster, ClusterConfig, TableSpec};
use harbor_bench::{experiment_dir, print_table, throughput_storage, BenchReport, Scale};
use harbor_common::{Metrics, RetryPolicy, SiteId};
use harbor_dist::ProtocolKind;
use harbor_front::{FrontConfig, FrontServer};
use harbor_net::{TcpTransport, Transport};
use harbor_workload::{insert_request, run_front_clients, DriverConfig, DriverReport};
use std::time::Duration;

fn build_cluster(name: &str, protocol: ProtocolKind, workers: usize, clients: usize) -> Cluster {
    let mut cfg = ClusterConfig::new(protocol, workers);
    cfg.storage = throughput_storage();
    cfg.checkpoint_every = Some(Duration::from_secs(1));
    // Every scenario carries the chaos layer (built disabled); the crash
    // scenario arms it so the crash+recovery window runs with seeded
    // inter-site delay jitter. Drops/disconnects stay off: a severed link
    // marks a *second* site dead, which turns the experiment into a
    // cascading-failure story instead of the paper's single-crash claim.
    cfg.chaos = Some(harbor_net::ChaosConfig {
        seed: 0xF00D_5EED,
        drop_per_mille: 0,
        dup_per_mille: 0,
        delay_per_mille: 150,
        max_delay: Duration::from_millis(2),
        disconnect_per_mille: 0,
    });
    cfg.rpc_deadline = Duration::from_secs(2);
    cfg.recovery.net_deadline = Duration::from_secs(2);
    // One table per client session: the experiment measures the serving
    // layer and the commit path, not page-lock contention.
    for c in 0..clients {
        cfg.tables.push(TableSpec::paper_table(&format!("t{c}")));
    }
    Cluster::build(experiment_dir(&format!("serve-{name}")), cfg).expect("build serve cluster")
}

struct ScenarioResult {
    report: DriverReport,
    admitted: u64,
    shed: u64,
    queue_peak: u64,
    drain: Duration,
    serving: String,
}

/// Runs one scenario: a front door over loopback TCP in front of
/// `cluster`'s coordinator, the driver hammering it, and an optional
/// mid-run fault callback on the main thread.
fn run_scenario(
    cluster: &Cluster,
    front_cfg: FrontConfig,
    driver_cfg: &DriverConfig,
    fault: impl FnOnce(&Cluster),
) -> ScenarioResult {
    let front_metrics = Metrics::new();
    let transport = TcpTransport::new(Metrics::new());
    let listener = transport.listen("127.0.0.1:0").expect("bind front");
    let server = FrontServer::start(
        front_cfg,
        listener,
        Box::new(cluster.coordinator().clone()),
        front_metrics.clone(),
    )
    .expect("start front");
    let addr = server.local_addr();

    let report = std::thread::scope(|scope| {
        let driver = scope.spawn(|| {
            run_front_clients(&transport, &addr, driver_cfg, |c, n| {
                let id = (c as i64) << 32 | n as i64;
                (id, vec![insert_request(&format!("t{c}"), id)])
            })
            .expect("driver run")
        });
        fault(cluster);
        driver.join().expect("driver thread")
    });
    let drain = server.shutdown();
    ScenarioResult {
        report,
        admitted: front_metrics.requests_admitted(),
        shed: front_metrics.requests_shed(),
        queue_peak: front_metrics.queue_peak_depth(),
        drain,
        serving: front_metrics.snapshot().serve_summary(),
    }
}

fn main() {
    let scale = Scale::from_env();
    let clients = scale.pick(4, 8, 16);
    let txns_per_client = scale.pick(40, 150, 400);
    println!("Front-door serving: client-observed latency over loopback TCP");
    println!("(scale={scale:?}, {clients} clients x {txns_per_client} txns each)");
    let mut report = BenchReport::new("serve");
    report
        .config("scale", format!("{scale:?}"))
        .config("clients", clients)
        .config("txns_per_client", txns_per_client)
        .config(
            "transport",
            "front door on loopback TCP, cluster in-process",
        );

    let mut rows = Vec::new();
    let record =
        |report: &mut BenchReport, rows: &mut Vec<Vec<String>>, name: &str, r: &ScenarioResult| {
            let s = &r.report.sample;
            let us = |d: Duration| d.as_micros().to_string();
            rows.push(vec![
                name.to_string(),
                format!("{:.0}", s.tps()),
                us(s.p50_latency),
                us(s.p99_latency),
                us(s.p999_latency),
                s.committed.to_string(),
                r.report.failed.to_string(),
                r.shed.to_string(),
                r.report.retries.to_string(),
                r.drain.as_micros().to_string(),
            ]);
            report.entry_with(
                name,
                s.p50_latency.as_nanos().max(1),
                s.committed.max(1),
                &[
                    ("txns_per_s", format!("{:.1}", s.tps())),
                    ("p50_us", us(s.p50_latency)),
                    ("p99_us", us(s.p99_latency)),
                    ("p999_us", us(s.p999_latency)),
                    ("committed", s.committed.to_string()),
                    ("failed", r.report.failed.to_string()),
                    ("admitted", r.admitted.to_string()),
                    ("shed", r.shed.to_string()),
                    ("retries", r.report.retries.to_string()),
                    ("queue_peak", r.queue_peak.to_string()),
                    ("drain_us", r.drain.as_micros().to_string()),
                ],
            );
            println!("  {name} serving {}", r.serving);
        };

    // --- steady state ---------------------------------------------------
    let driver_cfg = DriverConfig {
        clients,
        txns_per_client,
        deadline: Duration::from_secs(10),
        ..DriverConfig::default()
    };
    let cluster = build_cluster("steady", ProtocolKind::Opt3pc, 3, clients);
    let steady = run_scenario(&cluster, FrontConfig::default(), &driver_cfg, |_| {});
    cluster.shutdown();
    record(&mut report, &mut rows, "steady_tcp", &steady);

    // --- crash + 3-phase recovery window --------------------------------
    // Three replicas so commits stay servable while one site is down; the
    // fault thread crashes a worker once the run is warm, lets the degraded
    // window accumulate latency samples, then runs HARBOR recovery
    // (Phase 1 historical catch-up, Phase 2 deltas, Phase 3 locked
    // handoff) while the workload keeps going.
    let cluster = build_cluster("crash", ProtocolKind::Opt3pc, 3, clients);
    let crash = run_scenario(&cluster, FrontConfig::default(), &driver_cfg, |cluster| {
        std::thread::sleep(Duration::from_millis(150));
        if let Some(chaos) = cluster.chaos() {
            chaos.set_enabled(true);
        }
        let victim = SiteId(2);
        cluster.crash_worker(victim).expect("crash worker");
        std::thread::sleep(Duration::from_millis(250));
        let rec = cluster
            .recover_worker_harbor(victim)
            .expect("harbor recovery");
        if let Some(chaos) = cluster.chaos() {
            chaos.set_enabled(false);
        }
        println!(
            "  crash_recovery: site-2 recovered {} objects in {:?}",
            rec.objects.len(),
            rec.total
        );
    });
    cluster.shutdown();
    record(&mut report, &mut rows, "crash_recovery", &crash);

    // --- overload burst -------------------------------------------------
    // 4x the clients against a deliberately tiny front door. The assertion
    // worth quoting: sheds happen (admission control engaged), every
    // client's requests resolve (no hangs — the driver would block
    // forever), and admitted work keeps a bounded p99.
    let burst_clients = clients * 4;
    let cluster = build_cluster("burst", ProtocolKind::Opt3pc, 3, burst_clients);
    let burst_front = FrontConfig {
        readers: 4,
        workers: 2,
        permits: 2,
        queue_depth: burst_clients / 2,
        max_queue_age: Duration::from_millis(30),
        permit_budget: Duration::from_millis(10),
        ..FrontConfig::default()
    };
    let burst_driver = DriverConfig {
        clients: burst_clients,
        txns_per_client: txns_per_client / 4,
        deadline: Duration::from_secs(10),
        retry: RetryPolicy::new(
            16,
            Duration::from_millis(2),
            Duration::from_millis(100),
            0x5EED_F007,
        ),
    };
    let burst = run_scenario(&cluster, burst_front, &burst_driver, |_| {});
    cluster.shutdown();
    record(&mut report, &mut rows, "overload_burst", &burst);

    print_table(
        "front-door serving: client-observed latency",
        &[
            "scenario",
            "txn/s",
            "p50 us",
            "p99 us",
            "p999 us",
            "committed",
            "failed",
            "shed",
            "retries",
            "drain us",
        ],
        &rows,
    );
    println!(
        "\noverload burst: {} sheds over {} retries, p99 {} us for admitted work",
        burst.shed,
        burst.report.retries,
        burst.report.sample.p99_latency.as_micros()
    );
    assert!(
        burst.shed > 0,
        "overload burst never engaged admission control"
    );
    report.write().expect("write BENCH_serve.json");
}
