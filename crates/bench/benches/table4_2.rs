//! Table 4.2 — overhead of commit protocols, *measured* from live runs.
//!
//! One coordinator + two workers execute a single-insert transaction under
//! each protocol; counters are snapshotted after the update phase so only
//! commit processing is measured. Paper rows:
//!
//! | protocol       | msgs/worker | coord FWs | worker FWs |
//! |----------------|-------------|-----------|------------|
//! | 2PC            | 4           | 1         | 2          |
//! | optimized 2PC  | 4           | 1         | 0          |
//! | 3PC            | 6           | 0         | 3          |
//! | optimized 3PC  | 6           | 0         | 0          |

use harbor::{Cluster, ClusterConfig, TableSpec, TransportKind};
use harbor_bench::{experiment_dir, print_table};
use harbor_common::StorageConfig;
use harbor_dist::{ProtocolKind, UpdateRequest};
use harbor_workload::paper_row;

fn measure(protocol: ProtocolKind) -> (u64, u64, u64) {
    let mut cfg = ClusterConfig::new(protocol, 2);
    cfg.storage = StorageConfig {
        disk: harbor_common::DiskProfile::fast(),
        ..StorageConfig::for_tests()
    };
    cfg.transport = TransportKind::InMem {
        latency: None,
        bandwidth: None,
    };
    cfg.tables = vec![TableSpec::paper_table("t")];
    let cluster =
        Cluster::build(experiment_dir(&format!("table4_2-{protocol:?}")), cfg).expect("cluster");
    let coordinator = cluster.coordinator();
    let workers = cluster.worker_sites();
    let n_workers = workers.len() as u64;

    let tid = coordinator.begin().expect("begin");
    coordinator
        .update(
            tid,
            UpdateRequest::Insert {
                table: "t".into(),
                values: paper_row(1),
            },
        )
        .expect("update");
    // Snapshot *after* the update phase: the diff covers commit processing
    // only, which is what Table 4.2 tabulates. Messages are counted at the
    // transport (every send in either direction); forced writes at the
    // coordinator's and each worker's own log manager.
    let net_before = cluster.net_metrics().snapshot();
    let coord_before = coordinator.metrics().snapshot();
    let worker_before: Vec<_> = workers
        .iter()
        .map(|s| cluster.worker_metrics(*s).unwrap().snapshot())
        .collect();
    coordinator.commit(tid).expect("commit");
    let net_d = cluster.net_metrics().snapshot().since(&net_before);
    let coord_d = coordinator.metrics().snapshot().since(&coord_before);
    let mut worker_forces = 0u64;
    for (i, s) in workers.iter().enumerate() {
        let d = cluster
            .worker_metrics(*s)
            .unwrap()
            .snapshot()
            .since(&worker_before[i]);
        worker_forces += d.forced_writes;
    }
    let msgs_per_worker = net_d.messages_sent / n_workers;
    (
        msgs_per_worker,
        coord_d.forced_writes,
        worker_forces / n_workers,
    )
}

fn main() {
    let mut rows = Vec::new();
    for protocol in ProtocolKind::ALL {
        let (msgs, coord_fw, worker_fw) = measure(protocol);
        let ok = msgs == protocol.expected_messages_per_worker()
            && coord_fw == protocol.expected_coordinator_forces()
            && worker_fw == protocol.expected_worker_forces();
        rows.push(vec![
            protocol.name().to_string(),
            format!("{msgs}"),
            format!("{coord_fw}"),
            format!("{worker_fw}"),
            format!(
                "{}/{}/{}",
                protocol.expected_messages_per_worker(),
                protocol.expected_coordinator_forces(),
                protocol.expected_worker_forces()
            ),
            if ok {
                "match".into()
            } else {
                "MISMATCH".into()
            },
        ]);
        assert!(ok, "{} diverged from Table 4.2", protocol.name());
    }
    print_table(
        "Table 4.2: overhead of commit protocols (measured)",
        &[
            "protocol",
            "msgs/worker",
            "coord forced-writes",
            "worker forced-writes",
            "paper",
            "verdict",
        ],
        &rows,
    );
}
