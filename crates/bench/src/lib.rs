//! Shared harness utilities for the paper-reproduction benchmarks.
//!
//! Every table and figure of the thesis evaluation (Ch. 6 plus Tables
//! 4.1/4.2) has a dedicated bench target under `benches/`; this library
//! holds the common plumbing: experiment cluster construction with the
//! scaled-down defaults of DESIGN.md §1, bulk prefill of replicated tables,
//! and plain-text table/series printers so `cargo bench` output reads like
//! the paper's figures.
//!
//! Scaling: set `HARBOR_BENCH_SCALE` to `quick` (CI default), `standard`,
//! or `paper` (closest to thesis parameters; minutes of runtime).

use harbor::{Cluster, ClusterConfig, TableSpec, TransportKind};
use harbor_common::{DbResult, DiskProfile, StorageConfig, Timestamp, Tuple};
use harbor_dist::ProtocolKind;
use harbor_wal::GroupCommit;
use harbor_workload::paper_row;
use std::path::PathBuf;
use std::time::Duration;

/// Experiment scale selected via `HARBOR_BENCH_SCALE`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    Quick,
    Standard,
    Paper,
}

impl Scale {
    pub fn from_env() -> Scale {
        match std::env::var("HARBOR_BENCH_SCALE").as_deref() {
            Ok("paper") => Scale::Paper,
            Ok("standard") => Scale::Standard,
            _ => Scale::Quick,
        }
    }

    /// Scales a `(quick, standard, paper)` triple.
    pub fn pick<T: Copy>(self, quick: T, standard: T, paper: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Standard => standard,
            Scale::Paper => paper,
        }
    }
}

/// A fresh experiment directory under the target temp dir.
pub fn experiment_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("harbor-bench")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create experiment dir");
    dir
}

/// The emulated 2006-era disk: ~5 ms per forced write (DESIGN.md §1). The
/// data still reaches the OS file so crash simulation stays exact.
pub fn paper_disk() -> DiskProfile {
    DiskProfile::emulated(Duration::from_millis(5))
}

/// The emulated LAN: ~150 µs per message plus 100 Mbps of link
/// bandwidth, restoring the paper's network-vs-disk cost ratio on
/// loopback. Bandwidth matters for recovery: catch-up scans ship whole
/// segments, so their wire time is proportional to bytes, not messages.
pub fn paper_lan() -> TransportKind {
    TransportKind::InMem {
        latency: Some(Duration::from_micros(150)),
        bandwidth: Some(100_000_000 / 8),
    }
}

/// Storage shape for the throughput experiments (Figs 6-2/6-3): small
/// tables, emulated forced-write latency.
pub fn throughput_storage() -> StorageConfig {
    StorageConfig {
        buffer_pool_pages: 2048,
        segment_pages: 64,
        disk: paper_disk(),
        lock_timeout: Duration::from_millis(500),
    }
}

/// Storage shape for the recovery experiments (Figs 6-4/6-5/6-6): fast
/// disk (recovery compares log replay against network copy, not fsync
/// cost), segments sized so the prefill spans ~tens of segments like the
/// paper's 101.
pub fn recovery_storage(scale: Scale) -> StorageConfig {
    StorageConfig {
        buffer_pool_pages: scale.pick(4096, 8192, 16384),
        segment_pages: 16, // 64 KB segments
        disk: DiskProfile::fast(),
        lock_timeout: Duration::from_millis(500),
    }
}

/// Builds a throughput-experiment cluster: `workers` workers (the paper
/// uses 2 for §6.3), given protocol, emulated disk and LAN, per-stream
/// tables created as `t0..t{streams-1}`.
pub fn throughput_cluster(
    name: &str,
    protocol: ProtocolKind,
    workers: usize,
    streams: usize,
    group_commit: GroupCommit,
) -> DbResult<Cluster> {
    let mut cfg = ClusterConfig::new(protocol, workers);
    cfg.storage = throughput_storage();
    cfg.group_commit = group_commit;
    cfg.transport = paper_lan();
    cfg.checkpoint_every = Some(Duration::from_secs(1));
    for s in 0..streams {
        cfg.tables.push(TableSpec::paper_table(&format!("t{s}")));
    }
    Cluster::build(experiment_dir(name), cfg)
}

/// Builds a recovery-experiment cluster (Figs 6-4/6-5): all four nodes of
/// the paper (coordinator + 3 workers), manual checkpoints.
pub fn recovery_cluster(
    name: &str,
    protocol: ProtocolKind,
    tables: &[&str],
    scale: Scale,
) -> DbResult<Cluster> {
    let mut cfg = ClusterConfig::new(protocol, 3);
    cfg.storage = recovery_storage(scale);
    cfg.transport = TransportKind::InMem {
        latency: None,
        bandwidth: None,
    };
    cfg.checkpoint_every = None;
    for t in tables {
        cfg.tables.push(TableSpec::paper_table(t));
    }
    Cluster::build(experiment_dir(name), cfg)
}

/// Bulk-loads `rows` committed rows (ids `0..rows`, commit time 1) into
/// `table` on every worker, then checkpoints — the experiment's "1 GB
/// table with a fresh checkpoint" starting state (§6.4).
pub fn prefill(cluster: &Cluster, table: &str, rows: i64) -> DbResult<()> {
    for site in cluster.worker_sites() {
        let engine = cluster.engine(site)?;
        let def = engine.table_def(table).expect("prefill of existing table");
        for id in 0..rows {
            let tup = Tuple::versioned(Timestamp(1), Timestamp::ZERO, paper_row(id));
            engine.insert_recovered(def.id, &tup)?;
        }
        engine.advance_applied_clock(Timestamp(1));
        engine.checkpoint()?;
        if engine.is_logging() {
            engine.log_checkpoint()?;
        }
    }
    cluster.coordinator().authority().advance_to(Timestamp(1));
    Ok(())
}

/// Rows per segment for a config (prefill planning).
pub fn rows_per_segment(storage: &StorageConfig) -> i64 {
    let tuple = TableSpec::paper_table("x");
    let width: usize = 16
        + tuple
            .user_fields
            .iter()
            .map(|(_, t)| t.width())
            .sum::<usize>();
    let per_page = harbor_storage::slots_per_page(width) as i64;
    per_page * storage.segment_pages as i64
}

// ----------------------------------------------------------------------
// Machine-readable baselines (BENCH_*.json)
// ----------------------------------------------------------------------

/// Directory for `BENCH_*.json` artifacts: `HARBOR_BENCH_OUT` if set, else
/// the current working directory (the workspace root under `cargo bench`).
pub fn bench_out_dir() -> PathBuf {
    std::env::var_os("HARBOR_BENCH_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// Median of raw nanosecond samples (sorted in place).
pub fn median_ns(mut samples: Vec<u128>) -> u128 {
    assert!(!samples.is_empty(), "median of no samples");
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// A machine-readable benchmark baseline, dumped as `BENCH_<name>.json` so
/// CI and follow-up PRs can diff read-path throughput without parsing the
/// human-oriented tables. Hand-rolled JSON: the container vendors no serde.
pub struct BenchReport {
    name: String,
    config: Vec<(String, String)>,
    entries: Vec<String>,
}

impl BenchReport {
    pub fn new(name: &str) -> Self {
        BenchReport {
            name: name.to_string(),
            config: Vec::new(),
            entries: Vec::new(),
        }
    }

    /// Records one `"key": "value"` config pair (scale, row count, …).
    pub fn config(&mut self, key: &str, value: impl ToString) -> &mut Self {
        self.config.push((key.to_string(), value.to_string()));
        self
    }

    /// Records one measurement: median wall nanoseconds over `rows` items,
    /// with derived ns/row and Mrows/s throughput.
    pub fn entry(&mut self, name: &str, median_ns: u128, rows: u64) -> &mut Self {
        self.entry_with(name, median_ns, rows, &[])
    }

    /// As [`BenchReport::entry`], with additional numeric fields appended to
    /// the entry object (`extras` values must already be valid JSON numbers
    /// — the commit bench uses this for txn/s and latency percentiles).
    pub fn entry_with(
        &mut self,
        name: &str,
        median_ns: u128,
        rows: u64,
        extras: &[(&str, String)],
    ) -> &mut Self {
        let per_row = median_ns as f64 / rows.max(1) as f64;
        let mrows = rows as f64 / (median_ns as f64 / 1e9).max(1e-12) / 1e6;
        let mut entry = format!(
            "{{\"name\": \"{}\", \"median_ns\": {median_ns}, \"rows\": {rows}, \
             \"ns_per_row\": {per_row:.2}, \"mrows_per_s\": {mrows:.3}",
            json_escape(name)
        );
        for (k, v) in extras {
            entry.push_str(&format!(", \"{}\": {v}", json_escape(k)));
        }
        entry.push('}');
        self.entries.push(entry);
        self
    }

    /// Serializes the report. Field order is fixed so diffs stay readable.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "{{\n  \"report\": \"{}\",\n",
            json_escape(&self.name)
        ));
        s.push_str("  \"config\": {");
        for (i, (k, v)) in self.config.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    \"{}\": \"{}\"",
                json_escape(k),
                json_escape(v)
            ));
        }
        s.push_str("\n  },\n  \"benches\": [");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    ");
            s.push_str(e);
        }
        s.push_str("\n  ]\n}\n");
        s
    }

    /// Writes `BENCH_<name>.json` into [`bench_out_dir`] (created if
    /// missing), returning the path.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let dir = bench_out_dir();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("BENCH_{}.json", self.name));
        std::fs::write(&path, self.to_json())?;
        println!("wrote {}", path.display());
        Ok(path)
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Prints a plain-text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:>w$}  ", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Prints one figure series as `x  y` pairs.
pub fn print_series(name: &str, points: &[(f64, f64)]) {
    println!("series: {name}");
    for (x, y) in points {
        println!("  {x:>12.2}  {y:>12.2}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_picks() {
        assert_eq!(Scale::Quick.pick(1, 2, 3), 1);
        assert_eq!(Scale::Paper.pick(1, 2, 3), 3);
    }

    #[test]
    fn bench_report_emits_wellformed_json() {
        let mut r = BenchReport::new("unit");
        r.config("scale", "quick").config("rows", 10_000);
        r.entry("seq_scan", 2_000_000, 10_000);
        r.entry("with \"quotes\"\n", 1, 1);
        let json = r.to_json();
        // No serde in the container: check shape structurally.
        assert!(json.starts_with("{\n  \"report\": \"unit\""));
        assert!(json.contains("\"ns_per_row\": 200.00"));
        assert!(json.contains("\\\"quotes\\\"\\n"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.trim_end().ends_with('}'));
    }

    #[test]
    fn rows_per_segment_is_positive() {
        let n = rows_per_segment(&recovery_storage(Scale::Quick));
        assert!(n > 100, "paper tuples are small: {n}");
    }

    #[test]
    fn prefill_loads_every_worker() {
        let cluster =
            recovery_cluster("lib-prefill", ProtocolKind::Opt3pc, &["t"], Scale::Quick).unwrap();
        prefill(&cluster, "t", 500).unwrap();
        for site in cluster.worker_sites() {
            let e = cluster.engine(site).unwrap();
            let def = e.table_def("t").unwrap();
            let mut scan = harbor_exec::SeqScan::new(
                e.pool().clone(),
                def.id,
                harbor_exec::ReadMode::Historical(Timestamp(1)),
            )
            .unwrap();
            assert_eq!(harbor_exec::collect(&mut scan).unwrap().len(), 500);
            assert_eq!(e.checkpointer().global(), Timestamp(1));
        }
    }
}

// ----------------------------------------------------------------------
// Recovery experiment machinery (Figs 6-4 / 6-5 / 6-6)
// ----------------------------------------------------------------------

/// The recovery scenarios of §6.4, plus this repo's segment-parallel
/// extension.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RecoveryScenario {
    /// One table, log-based recovery (the ARIES baseline).
    Aries1Table,
    /// One table, HARBOR query-based recovery (serial Phase 2 — the
    /// thesis' algorithm verbatim).
    Harbor1Table,
    /// Two tables, HARBOR recovering them serially.
    HarborSerial2,
    /// Two tables, HARBOR recovering them in parallel, one buddy each.
    HarborParallel2,
    /// One table, HARBOR with the segment-parallel, multi-buddy,
    /// pipelined Phase 2 (ranged queries fanned across both surviving
    /// buddies, applier pool locally).
    HarborParallelSegments,
}

impl RecoveryScenario {
    pub fn name(self) -> &'static str {
        match self {
            RecoveryScenario::Aries1Table => "ARIES, 1 table",
            RecoveryScenario::Harbor1Table => "HARBOR, 1 table",
            RecoveryScenario::HarborSerial2 => "HARBOR, serial, 2 tables",
            RecoveryScenario::HarborParallel2 => "HARBOR, parallel, 2 tables",
            RecoveryScenario::HarborParallelSegments => "HARBOR, parallel segments, 1 table",
        }
    }

    pub fn tables(self) -> Vec<String> {
        match self {
            RecoveryScenario::Aries1Table
            | RecoveryScenario::Harbor1Table
            | RecoveryScenario::HarborParallelSegments => vec!["t0".into()],
            _ => vec!["t0".into(), "t1".into()],
        }
    }

    pub fn is_aries(self) -> bool {
        matches!(self, RecoveryScenario::Aries1Table)
    }

    pub const ALL: [RecoveryScenario; 5] = [
        RecoveryScenario::Aries1Table,
        RecoveryScenario::Harbor1Table,
        RecoveryScenario::HarborSerial2,
        RecoveryScenario::HarborParallel2,
        RecoveryScenario::HarborParallelSegments,
    ];
}

/// Outcome of one recovery measurement.
pub struct RecoveryRun {
    /// Wall time of the recovery itself.
    pub elapsed: Duration,
    /// HARBOR per-phase breakdown (query-based scenarios).
    pub report: Option<harbor::RecoveryReport>,
    /// The recovering site's counter deltas across the recovery window
    /// (tuples/bytes shipped to it, ranges fetched/reassigned).
    pub metrics: Option<harbor_common::MetricsSnapshot>,
    /// Per-site read-hot-path summaries at quiesce: aggregate pool
    /// hit/miss/eviction counters, scan admission counters, zero-copy
    /// bytes, the per-shard buffer-pool breakdown, and the storage
    /// fault-plane counters (faults injected, checksum failures, repairs).
    pub read_path: Vec<String>,
    /// Coordinator commit-path summary at quiesce: forced writes, physical
    /// syncs, batched syncs saved, and the epoch-size histogram.
    pub commit_path: String,
}

/// One worker's read-hot-path summary: the aggregate counters plus the
/// per-shard `hits/misses/evictions/resident` breakdown of its pool.
pub fn site_read_path_summary(
    site: harbor_common::SiteId,
    engine: &harbor_engine::Engine,
) -> String {
    let snap = engine.metrics().snapshot();
    let shards: Vec<String> = engine
        .pool()
        .shard_stats()
        .iter()
        .map(|s| format!("{}h/{}m/{}e/{}r", s.hits, s.misses, s.evictions, s.resident))
        .collect();
    format!(
        "{site}: {} shards[{}] {}",
        snap.read_path_summary(),
        shards.join(" "),
        snap.scrub_summary()
    )
}

/// Runs one §6.4-style experiment: build cluster → prefill → run the
/// workload → crash worker 1 → time its recovery → verify replica
/// equivalence. `workload` issues the post-checkpoint transactions.
pub fn run_recovery_scenario(
    name: &str,
    scenario: RecoveryScenario,
    scale: Scale,
    prefill_rows: i64,
    workload: impl FnOnce(&Cluster, &[String]) -> DbResult<()>,
) -> DbResult<RecoveryRun> {
    run_recovery_scenario_with(name, scenario, scale, prefill_rows, |_| {}, workload)
}

/// As [`run_recovery_scenario`] but lets the caller tweak the cluster
/// config (recovery knobs, scan batch, …) before the cluster is built —
/// the ablation harness sweeps knobs through this hook.
pub fn run_recovery_scenario_with(
    name: &str,
    scenario: RecoveryScenario,
    scale: Scale,
    prefill_rows: i64,
    tweak: impl FnOnce(&mut ClusterConfig),
    workload: impl FnOnce(&Cluster, &[String]) -> DbResult<()>,
) -> DbResult<RecoveryRun> {
    let tables = scenario.tables();
    let table_refs: Vec<&str> = tables.iter().map(|s| s.as_str()).collect();
    let protocol = if scenario.is_aries() {
        ProtocolKind::Trad2pc
    } else {
        ProtocolKind::Opt3pc
    };
    let mut cfg_cluster_dir = experiment_dir(name);
    cfg_cluster_dir.push("cluster");
    let mut cfg = ClusterConfig::new(protocol, 3);
    cfg.storage = recovery_storage(scale);
    // §6.4 ran on the same 100 Mbps LAN as the throughput experiments:
    // recovery queries pay per-message latency like everything else.
    cfg.transport = paper_lan();
    cfg.checkpoint_every = None;
    cfg.recovery.parallel_objects = scenario != RecoveryScenario::HarborSerial2;
    // Only the extension scenario uses the segment-parallel Phase 2; the
    // four thesis scenarios keep the serial single-buddy algorithm so the
    // paper baselines stay comparable.
    cfg.recovery.parallel_segments = scenario == RecoveryScenario::HarborParallelSegments;
    for t in &table_refs {
        cfg.tables.push(TableSpec::paper_table(t));
    }
    tweak(&mut cfg);
    let cluster = Cluster::build(cfg_cluster_dir, cfg)?;
    for t in &table_refs {
        prefill(&cluster, t, prefill_rows)?;
    }
    workload(&cluster, &tables)?;
    // "After ... any and all log writes have reached disk, I crash a
    // worker site" (§6.4): flush the victim's log tail first.
    let victim = harbor_common::SiteId(1);
    if scenario.is_aries() {
        let e = cluster.engine(victim)?;
        if let Some(wal) = e.wal() {
            wal.flush_all()?;
        }
    }
    cluster.crash_worker(victim)?;
    let t0 = std::time::Instant::now();
    let report = if scenario.is_aries() {
        cluster.recover_worker_aries(victim)?;
        None
    } else {
        Some(cluster.recover_worker_harbor(victim)?)
    };
    let elapsed = t0.elapsed();
    // Recovery-throughput counters: ranges fetched/reassigned and tuples
    // applied count on the recovering site; tuples/bytes shipped count on
    // the buddies that served the recovery queries.
    let metrics = if scenario.is_aries() {
        None
    } else {
        let mut snap = cluster.engine(victim)?.metrics().snapshot();
        for site in cluster.worker_sites() {
            if site == victim {
                continue;
            }
            if let Ok(e) = cluster.engine(site) {
                let s = e.metrics().snapshot();
                snap.recovery_tuples_shipped += s.recovery_tuples_shipped;
                snap.recovery_bytes_shipped += s.recovery_bytes_shipped;
            }
        }
        Some(snap)
    };
    // Verify: the recovered replica matches a survivor on every table.
    let now = cluster.coordinator().authority().now().prev();
    for t in &table_refs {
        let mut counts = Vec::new();
        for site in [victim, harbor_common::SiteId(2)] {
            let e = cluster.engine(site)?;
            let def = e.table_def(t).expect("table exists");
            let mut scan = harbor_exec::SeqScan::new(
                e.pool().clone(),
                def.id,
                harbor_exec::ReadMode::Historical(now),
            )?;
            let mut n = 0u64;
            let mut sum = 0i64;
            harbor_exec::op::Operator::open(&mut scan)?;
            while let Some(tup) = harbor_exec::op::Operator::next(&mut scan)? {
                n += 1;
                sum = sum.wrapping_add(tup.get(2).as_i64()?);
                sum = sum.wrapping_add(tup.get(3).as_i64()?);
            }
            counts.push((n, sum));
        }
        assert_eq!(
            counts[0],
            counts[1],
            "{name}: replica divergence on {t} after {}",
            scenario.name()
        );
    }
    let mut read_path = Vec::new();
    for site in cluster.worker_sites() {
        if let Ok(e) = cluster.engine(site) {
            read_path.push(site_read_path_summary(site, &e));
        }
    }
    let commit_path = cluster
        .coordinator()
        .metrics()
        .snapshot()
        .commit_path_summary();
    cluster.shutdown();
    Ok(RecoveryRun {
        elapsed,
        report,
        metrics,
        read_path,
        commit_path,
    })
}

/// Round-robins `total` single-insert transactions over `tables`, ids
/// starting at `first_id`.
pub fn run_insert_txns(
    cluster: &Cluster,
    tables: &[String],
    total: usize,
    first_id: i64,
) -> DbResult<()> {
    for i in 0..total {
        let table = &tables[i % tables.len()];
        cluster.insert_one(table, paper_row(first_id + i as i64))?;
    }
    Ok(())
}

/// Issues `per_segment` indexed updates into each of the given historical
/// segments (ids are laid out sequentially by [`prefill`], so segment `s`
/// holds ids `s*rows_per_segment .. (s+1)*rows_per_segment`).
pub fn run_historical_updates(
    cluster: &Cluster,
    table: &str,
    segments: &[i64],
    per_segment: usize,
    rows_per_seg: i64,
) -> DbResult<()> {
    for &seg in segments {
        for k in 0..per_segment {
            let key = seg * rows_per_seg + (k as i64 % rows_per_seg);
            cluster.run_txn(vec![harbor_workload::update_by_key_request(
                table,
                key,
                0x5eed + k as i32,
            )])?;
        }
    }
    Ok(())
}
