//! Property: epoch group commit is *equivalent* to the serial 2PC path.
//! The same multi-stream plan run through a batched-epoch coordinator and
//! a serial coordinator must (a) ack the same transaction set, (b) leave
//! the same visible rows in both modes, and (c) leave byte-identical
//! version histories across the batched cluster's replicas.

use harbor_common::{FieldType, Metrics, SiteId, StorageConfig, Timestamp, Value};
use harbor_dist::{
    Coordinator, CoordinatorConfig, EpochCommitConfig, Placement, ProtocolKind, UpdateRequest,
    Worker, WorkerConfig,
};
use harbor_engine::{Engine, EngineOptions};
use harbor_net::{InMemNetwork, Transport};
use harbor_wal::GroupCommit;
use proptest::prelude::*;
use std::collections::{BTreeSet, HashMap};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// One client stream: a disjoint key range, each txn inserting one fresh
/// key and optionally re-updating the previous one.
#[derive(Clone, Debug)]
struct StreamPlan {
    txns: Vec<TxnPlan>,
}

#[derive(Clone, Debug)]
struct TxnPlan {
    key: i64,
    update_prev: bool,
    new_value: i32,
}

fn plan_strategy() -> impl Strategy<Value = Vec<StreamPlan>> {
    // 2–4 streams × 1–4 txns; keys are made disjoint by stream index.
    proptest::collection::vec(
        proptest::collection::vec((any::<bool>(), 0i32..1000), 1..=4),
        2..=4,
    )
    .prop_map(|streams| {
        streams
            .into_iter()
            .enumerate()
            .map(|(s, txns)| StreamPlan {
                txns: txns
                    .into_iter()
                    .enumerate()
                    .map(|(i, (update_prev, new_value))| TxnPlan {
                        key: (s as i64) * 1000 + i as i64,
                        update_prev,
                        new_value,
                    })
                    .collect(),
            })
            .collect()
    })
}

struct Mode {
    dir: PathBuf,
    coordinator: Arc<Coordinator>,
    engines: HashMap<SiteId, Arc<Engine>>,
    workers: Vec<Arc<Worker>>,
}

fn build_mode(name: &str, case: u64, epoch: Option<EpochCommitConfig>, streams: usize) -> Mode {
    let dir = std::env::temp_dir()
        .join("harbor-epoch-equiv")
        .join(format!("{name}-{case}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let transport: Arc<dyn Transport> = Arc::new(InMemNetwork::new(Metrics::new()));
    let sites = [SiteId(1), SiteId(2)];
    let peers: HashMap<SiteId, String> = sites
        .iter()
        .map(|s| (*s, format!("equiv-{name}-{case}-site-{}", s.0)))
        .collect();
    let mut placement = Placement::new();
    placement.set_coordinator_addr(&format!("equiv-{name}-{case}-coordinator"));
    for (site, addr) in &peers {
        placement.set_address(*site, addr);
    }
    // One table per stream: streams never conflict on locks, so the full
    // plan always commits and the acked sets are comparable.
    let site_list: Vec<SiteId> = sites.to_vec();
    for s in 0..streams {
        placement.add_replicated_table(&format!("t{s}"), &site_list);
    }
    let mut engines = HashMap::new();
    let mut workers = Vec::new();
    for site in sites {
        let engine = Engine::open(
            dir.join(format!("site-{}", site.0)),
            EngineOptions::harbor(site, StorageConfig::for_tests()),
        )
        .unwrap();
        for s in 0..streams {
            engine
                .create_table(
                    &format!("t{s}"),
                    vec![
                        ("id".into(), FieldType::Int64),
                        ("v".into(), FieldType::Int32),
                    ],
                )
                .unwrap();
        }
        let worker = Worker::start(
            engine.clone(),
            transport.clone(),
            WorkerConfig {
                site,
                addr: peers[&site].clone(),
                protocol: ProtocolKind::Opt2pc,
                checkpoint_every: None,
                peers: peers.clone(),
                coordinator: None,
                auto_consensus: false,
                use_deletion_log: true,
                scan_batch: harbor_common::config::DEFAULT_SCAN_BATCH,
                crash_schedule: Default::default(),
            },
        )
        .unwrap();
        engines.insert(site, engine);
        workers.push(worker);
    }
    let coordinator = Coordinator::start(
        CoordinatorConfig {
            site: SiteId(0),
            addr: format!("equiv-{name}-{case}-coordinator"),
            protocol: ProtocolKind::Opt2pc,
            log_dir: Some(dir.join("coordinator")),
            group_commit: GroupCommit::enabled(),
            disk: harbor_common::DiskProfile::fast(),
            rpc_deadline: harbor_dist::DEFAULT_RPC_DEADLINE,
            read_retries: harbor_dist::DEFAULT_READ_RETRIES,
            crash_schedule: Default::default(),
            epoch_commit: epoch,
            degrade_read_only: false,
        },
        placement,
        transport,
        Metrics::new(),
    )
    .unwrap();
    Mode {
        dir,
        coordinator,
        engines,
        workers,
    }
}

impl Mode {
    /// Runs every stream on its own thread; returns the set of acked
    /// (stream, txn-index) pairs.
    fn run(&self, plan: &[StreamPlan]) -> BTreeSet<(usize, usize)> {
        let acked = parking_lot::Mutex::new(BTreeSet::new());
        std::thread::scope(|scope| {
            for (s, stream) in plan.iter().enumerate() {
                let c = self.coordinator.clone();
                let acked = &acked;
                scope.spawn(move || {
                    for (i, txn) in stream.txns.iter().enumerate() {
                        let run = || -> Result<Timestamp, harbor_common::DbError> {
                            let tid = c.begin()?;
                            c.update(
                                tid,
                                UpdateRequest::Insert {
                                    table: format!("t{s}"),
                                    values: vec![
                                        Value::Int64(txn.key),
                                        Value::Int32(txn.new_value),
                                    ],
                                },
                            )?;
                            if txn.update_prev && i > 0 {
                                c.update(
                                    tid,
                                    UpdateRequest::UpdateByKey {
                                        table: format!("t{s}"),
                                        key: stream.txns[i - 1].key,
                                        set: vec![(1, Value::Int32(txn.new_value + 1))],
                                    },
                                )?;
                            }
                            c.commit(tid)
                        };
                        if run().is_ok() {
                            acked.lock().insert((s, i));
                        }
                    }
                });
            }
        });
        acked.into_inner()
    }

    /// Visible (table, id, v) rows at one replica, timestamps ignored.
    fn visible_rows(&self, site: SiteId, streams: usize) -> BTreeSet<(usize, i64, i32)> {
        let engine = &self.engines[&site];
        let mut out = BTreeSet::new();
        for s in 0..streams {
            let def = engine.table_def(&format!("t{s}")).unwrap();
            let mut scan = harbor_exec::SeqScan::new(
                engine.pool().clone(),
                def.id,
                harbor_exec::ReadMode::Historical(Timestamp(1_000_000)),
            )
            .unwrap();
            for row in harbor_exec::collect(&mut scan).unwrap() {
                // Stored layout: version columns at 0/1, user fields after.
                let id = match row.values()[2] {
                    Value::Int64(v) => v,
                    ref other => panic!("bad id {other:?}"),
                };
                let v = match row.values()[3] {
                    Value::Int32(v) => v,
                    ref other => panic!("bad v {other:?}"),
                };
                out.insert((s, id, v));
            }
        }
        out
    }

    /// Full version history at one replica — every tuple including deleted
    /// shadows, timestamps exposed — for replica-equality checks.
    fn version_history(&self, site: SiteId, streams: usize) -> Vec<String> {
        let engine = &self.engines[&site];
        let mut out = Vec::new();
        for s in 0..streams {
            let def = engine.table_def(&format!("t{s}")).unwrap();
            let mut scan = harbor_exec::SeqScan::new(
                engine.pool().clone(),
                def.id,
                harbor_exec::ReadMode::SeeDeleted,
            )
            .unwrap();
            for row in harbor_exec::collect(&mut scan).unwrap() {
                out.push(format!("t{s}:{:?}", row));
            }
        }
        out.sort();
        out
    }

    fn teardown(self) {
        self.coordinator.crash();
        for w in &self.workers {
            w.crash();
        }
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        .. ProptestConfig::default()
    })]

    #[test]
    fn batched_epoch_commit_equals_serial(plan in plan_strategy(), case in any::<u64>()) {
        let streams = plan.len();
        let serial = build_mode("serial", case, None, streams);
        let batched = build_mode(
            "batched",
            case,
            Some(EpochCommitConfig {
                max_txns: 4,
                max_wait: Duration::from_millis(5),
                pipeline_depth: 2,
            }),
            streams,
        );

        let acked_serial = serial.run(&plan);
        let acked_batched = batched.run(&plan);
        // (a) Same acked-transaction set (disjoint tables: everything acks).
        prop_assert_eq!(&acked_serial, &acked_batched);
        let expected: BTreeSet<(usize, usize)> = plan
            .iter()
            .enumerate()
            .flat_map(|(s, st)| (0..st.txns.len()).map(move |i| (s, i)))
            .collect();
        prop_assert_eq!(&acked_batched, &expected);

        // (b) Same visible rows in both modes (timestamps aside).
        let rows_serial = serial.visible_rows(SiteId(1), streams);
        let rows_batched = batched.visible_rows(SiteId(1), streams);
        prop_assert_eq!(rows_serial, rows_batched);

        // (c) Byte-identical version histories across the batched cluster's
        // replicas (same commit times applied everywhere), and visible-row
        // agreement across replicas in both modes.
        prop_assert_eq!(
            batched.version_history(SiteId(1), streams),
            batched.version_history(SiteId(2), streams)
        );
        prop_assert_eq!(
            batched.visible_rows(SiteId(1), streams),
            batched.visible_rows(SiteId(2), streams)
        );
        prop_assert_eq!(
            serial.visible_rows(SiteId(1), streams),
            serial.visible_rows(SiteId(2), streams)
        );

        serial.teardown();
        batched.teardown();
    }
}
