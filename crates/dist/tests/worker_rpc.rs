//! Worker-server RPC integration: streamed scans, predicate updates over
//! the wire, failure detection, and the timestamp authority endpoint.

use harbor_common::time::TimestampAuthority;
use harbor_common::{FieldType, Metrics, SiteId, StorageConfig, Timestamp, TransactionId, Value};
use harbor_dist::{
    rpc, scan_rpc, scan_rpc_streaming, ProtocolKind, RemoteScan, Request, Response, UpdateRequest,
    WireReadMode, Worker, WorkerConfig,
};
use harbor_engine::{Engine, EngineOptions};
use harbor_exec::Expr;
use harbor_net::{InMemNetwork, Transport};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

struct Fixture {
    dir: PathBuf,
    transport: Arc<dyn Transport>,
    worker: Arc<Worker>,
    engine: Arc<Engine>,
    authority: Arc<TimestampAuthority>,
}

fn build(name: &str) -> Fixture {
    let dir = std::env::temp_dir()
        .join("harbor-worker-rpc")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let transport: Arc<dyn Transport> = Arc::new(InMemNetwork::new(Metrics::new()));
    let engine = Engine::open(
        &dir,
        EngineOptions::harbor(SiteId(1), StorageConfig::for_tests()),
    )
    .unwrap();
    engine
        .create_table(
            "t",
            vec![
                ("id".into(), FieldType::Int64),
                ("v".into(), FieldType::Int32),
            ],
        )
        .unwrap();
    let worker = Worker::start(
        engine.clone(),
        transport.clone(),
        WorkerConfig {
            site: SiteId(1),
            addr: format!("rpc-{name}"),
            protocol: ProtocolKind::Opt3pc,
            checkpoint_every: None,
            peers: HashMap::new(),
            coordinator: None,
            auto_consensus: false,
            use_deletion_log: true,
            scan_batch: harbor_common::config::DEFAULT_SCAN_BATCH,
            crash_schedule: Default::default(),
        },
    )
    .unwrap();
    Fixture {
        dir,
        transport,
        worker,
        engine,
        authority: Arc::new(TimestampAuthority::default()),
    }
}

impl Fixture {
    fn connect(&self) -> Box<dyn harbor_net::Channel> {
        self.transport.connect(self.worker.addr()).unwrap()
    }

    /// Runs one update transaction through the wire protocol (single
    /// worker: prepare + ptc + commit).
    fn txn(&self, seq: u64, reqs: Vec<UpdateRequest>) -> Timestamp {
        let tid = TransactionId::from_parts(SiteId(0), seq);
        let mut chan = self.connect();
        assert!(matches!(
            rpc(chan.as_mut(), &Request::Begin { tid }).unwrap(),
            Response::Ok
        ));
        for req in reqs {
            match rpc(chan.as_mut(), &Request::Update { tid, req }).unwrap() {
                Response::Ok => {}
                other => panic!("update failed: {other:?}"),
            }
        }
        let bound = self.authority.now();
        match rpc(
            chan.as_mut(),
            &Request::Prepare {
                tid,
                workers: vec![SiteId(1)],
                time_bound: bound,
            },
        )
        .unwrap()
        {
            Response::Vote { yes: true } => {}
            other => panic!("bad vote {other:?}"),
        }
        let t = self.authority.next_commit_time();
        rpc(
            chan.as_mut(),
            &Request::PrepareToCommit {
                tid,
                commit_time: t,
            },
        )
        .unwrap();
        rpc(
            chan.as_mut(),
            &Request::Commit {
                tid,
                commit_time: t,
            },
        )
        .unwrap();
        t
    }
}

#[test]
fn streamed_scan_crosses_batch_boundaries() {
    let f = build("stream");
    // More rows than one 512-tuple batch.
    let rows: Vec<Vec<Value>> = (0..1300i64)
        .map(|i| vec![Value::Int64(i), Value::Int32(i as i32)])
        .collect();
    let t = f.txn(
        1,
        vec![UpdateRequest::InsertMany {
            table: "t".into(),
            rows,
        }],
    );
    let mut chan = f.connect();
    let scan = RemoteScan::new("t", WireReadMode::Historical(t));
    let tuples = scan_rpc(chan.as_mut(), &scan).unwrap();
    assert_eq!(tuples.len(), 1300);
    // Streaming visitor sees multiple batches.
    let mut batches = 0;
    scan_rpc_streaming(chan.as_mut(), &scan, |b| {
        if !b.is_empty() {
            batches += 1;
        }
        Ok(())
    })
    .unwrap();
    assert!(batches >= 3, "1300 rows should stream in >= 3 batches");
    let _ = std::fs::remove_dir_all(&f.dir);
}

/// A scan wide enough to cross the parallel fan-out threshold must return
/// exactly the serial path's row sequence: the merge drains partitions in
/// page order, so ids come back in insertion order however the worker
/// threads interleave.
#[test]
fn parallel_scan_preserves_serial_row_order() {
    let f = build("par-scan");
    const N: i64 = 2500; // ~18 pages at 28 bytes/tuple: >= 2 partitions
    let rows: Vec<Vec<Value>> = (0..N)
        .map(|i| vec![Value::Int64(i), Value::Int32(i as i32)])
        .collect();
    let t = f.txn(
        1,
        vec![UpdateRequest::InsertMany {
            table: "t".into(),
            rows,
        }],
    );
    let def = f.engine.table_def("t").unwrap();
    let pages = f.engine.pool().table(def.id).unwrap().all_page_ids().len();
    assert!(
        pages >= 2 * harbor_common::config::PARALLEL_SCAN_MIN_PAGES,
        "fixture too small to trigger the fan-out ({pages} pages)"
    );
    let mut chan = f.connect();
    let tuples = scan_rpc(
        chan.as_mut(),
        &RemoteScan::new("t", WireReadMode::Historical(t)),
    )
    .unwrap();
    assert_eq!(tuples.len(), N as usize);
    for (i, tup) in tuples.iter().enumerate() {
        assert_eq!(tup.get(2), &Value::Int64(i as i64), "row order diverged");
    }
    let _ = std::fs::remove_dir_all(&f.dir);
}

#[test]
fn point_read_rpc_respects_visibility() {
    let f = build("point-read");
    let rows: Vec<Vec<Value>> = (0..50i64)
        .map(|i| vec![Value::Int64(i), Value::Int32(i as i32)])
        .collect();
    let t1 = f.txn(
        1,
        vec![UpdateRequest::InsertMany {
            table: "t".into(),
            rows,
        }],
    );
    // An update forks key 7 into two versions; a delete retires key 9.
    let t2 = f.txn(
        2,
        vec![
            UpdateRequest::UpdateByKey {
                table: "t".into(),
                key: 7,
                set: vec![(1, Value::Int32(700))],
            },
            UpdateRequest::DeleteWhere {
                table: "t".into(),
                pred: Expr::col(2).eq(Expr::lit(9i64)),
            },
        ],
    );
    let mut chan = f.connect();
    let point = |chan: &mut Box<dyn harbor_net::Channel>, key: i64, mode: WireReadMode| match rpc(
        chan.as_mut(),
        &Request::PointRead {
            table: "t".into(),
            key,
            mode,
        },
    )
    .unwrap()
    {
        Response::Tuples { batch, done } => {
            assert!(done, "point reads are single-frame");
            batch
        }
        other => panic!("{other:?}"),
    };
    // Latest snapshot: the updated version only.
    let rows = point(&mut chan, 7, WireReadMode::Historical(t2));
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].get(3), &Value::Int32(700));
    // Before the update: the original version.
    let rows = point(&mut chan, 7, WireReadMode::Historical(t1));
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].get(3), &Value::Int32(7));
    // Deleted key: gone at t2, visible at t1.
    assert!(point(&mut chan, 9, WireReadMode::Historical(t2)).is_empty());
    assert_eq!(point(&mut chan, 9, WireReadMode::Historical(t1)).len(), 1);
    // Absent key.
    assert!(point(&mut chan, 5000, WireReadMode::Historical(t2)).is_empty());
    // Unknown table is an error, not a crash.
    match rpc(
        chan.as_mut(),
        &Request::PointRead {
            table: "nope".into(),
            key: 1,
            mode: WireReadMode::Historical(t2),
        },
    )
    .unwrap()
    {
        Response::Err { msg } => assert!(msg.contains("nope")),
        other => panic!("{other:?}"),
    }
    let _ = std::fs::remove_dir_all(&f.dir);
}

#[test]
fn predicate_updates_and_deletes_over_the_wire() {
    let f = build("dml");
    let rows: Vec<Vec<Value>> = (0..20i64)
        .map(|i| vec![Value::Int64(i), Value::Int32(1)])
        .collect();
    f.txn(
        1,
        vec![UpdateRequest::InsertMany {
            table: "t".into(),
            rows,
        }],
    );
    f.txn(
        2,
        vec![UpdateRequest::UpdateWhere {
            table: "t".into(),
            pred: Expr::col(2).lt(Expr::lit(5i64)),
            set: vec![(1, Value::Int32(99))],
        }],
    );
    let t = f.txn(
        3,
        vec![UpdateRequest::DeleteWhere {
            table: "t".into(),
            pred: Expr::col(2).ge(Expr::lit(15i64)),
        }],
    );
    let mut chan = f.connect();
    let tuples = scan_rpc(
        chan.as_mut(),
        &RemoteScan::new("t", WireReadMode::Historical(t)),
    )
    .unwrap();
    assert_eq!(tuples.len(), 15);
    let updated = tuples
        .iter()
        .filter(|t| t.get(3) == &Value::Int32(99))
        .count();
    assert_eq!(updated, 5);
    let _ = std::fs::remove_dir_all(&f.dir);
}

#[test]
fn scan_bounds_filter_remotely() {
    let f = build("bounds");
    let t1 = f.txn(
        1,
        vec![UpdateRequest::Insert {
            table: "t".into(),
            values: vec![Value::Int64(1), Value::Int32(1)],
        }],
    );
    let t2 = f.txn(
        2,
        vec![UpdateRequest::Insert {
            table: "t".into(),
            values: vec![Value::Int64(2), Value::Int32(2)],
        }],
    );
    let mut chan = f.connect();
    let mut scan = RemoteScan::new("t", WireReadMode::SeeDeletedHistorical(t2));
    scan.ins_after = Some(t1);
    let rows = scan_rpc(chan.as_mut(), &scan).unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].get(2), &Value::Int64(2));
    // ids_and_deletions_only projects to two columns.
    let mut scan = RemoteScan::new("t", WireReadMode::SeeDeletedHistorical(t2));
    scan.ids_and_deletions_only = true;
    let rows = scan_rpc(chan.as_mut(), &scan).unwrap();
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0].len(), 2);
    let _ = std::fs::remove_dir_all(&f.dir);
}

#[test]
fn unknown_transactions_vote_no_and_abort_acks() {
    let f = build("unknown");
    let tid = TransactionId::from_parts(SiteId(0), 999);
    let mut chan = f.connect();
    // Vote request for a transaction this worker never saw: NO (§4.3.2).
    match rpc(
        chan.as_mut(),
        &Request::Prepare {
            tid,
            workers: vec![SiteId(1)],
            time_bound: Timestamp(1),
        },
    )
    .unwrap()
    {
        Response::Vote { yes } => assert!(!yes),
        other => panic!("{other:?}"),
    }
    // Abort of an unknown transaction is acknowledged (idempotent).
    assert!(matches!(
        rpc(chan.as_mut(), &Request::Abort { tid }).unwrap(),
        Response::Ack
    ));
    let _ = std::fs::remove_dir_all(&f.dir);
}

#[test]
fn disk_backed_worker_survives_restart_of_its_server() {
    let f = build("restart-server");
    let t = f.txn(
        1,
        vec![UpdateRequest::Insert {
            table: "t".into(),
            values: vec![Value::Int64(7), Value::Int32(70)],
        }],
    );
    f.engine.checkpoint().unwrap();
    // Stop and restart only the server (same engine, new listener).
    f.worker.stop();
    let worker2 = Worker::start(
        f.engine.clone(),
        f.transport.clone(),
        WorkerConfig {
            site: SiteId(1),
            addr: "rpc-restart-server-2".into(),
            protocol: ProtocolKind::Opt3pc,
            checkpoint_every: None,
            peers: HashMap::new(),
            coordinator: None,
            auto_consensus: false,
            use_deletion_log: true,
            scan_batch: harbor_common::config::DEFAULT_SCAN_BATCH,
            crash_schedule: Default::default(),
        },
    )
    .unwrap();
    let mut chan = f.transport.connect(worker2.addr()).unwrap();
    let rows = scan_rpc(
        chan.as_mut(),
        &RemoteScan::new("t", WireReadMode::Historical(t)),
    )
    .unwrap();
    assert_eq!(rows.len(), 1);
    worker2.stop();
    let _ = std::fs::remove_dir_all(&f.dir);
}

/// A worker that trips over a checksum-corrupt page of its own must
/// surface `Corrupt` to the remote caller — the site-local, *repairable*
/// classification — not a timeout or disconnect (which would mark the
/// site dead and strike it from recovery plans) and not an opaque
/// protocol error (which recovery treats as fatal).
#[test]
fn corrupt_page_classifies_as_corrupt_over_the_wire() {
    use std::io::{Read, Seek, SeekFrom, Write};
    let f = build("corrupt-wire");
    let rows: Vec<Vec<Value>> = (0..200i64)
        .map(|i| vec![Value::Int64(i), Value::Int32(i as i32)])
        .collect();
    let t = f.txn(
        1,
        vec![UpdateRequest::InsertMany {
            table: "t".into(),
            rows,
        }],
    );
    // Push the pages to disk, drop every resident frame (so the scan must
    // fault the bad page back in), and flip one payload bit behind the
    // worker's back.
    let def = f.engine.table_def("t").unwrap();
    f.engine.pool().flush_all().unwrap();
    let heap = f.engine.pool().table(def.id).unwrap();
    f.engine.pool().deregister_table(def.id);
    f.engine.pool().register_table(heap);
    let path = f.dir.join(format!("t{}.tbl", def.id.0));
    let mut file = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(&path)
        .unwrap();
    let off = harbor_common::config::PAGE_SIZE as u64 + 40;
    file.seek(SeekFrom::Start(off)).unwrap();
    let mut b = [0u8; 1];
    file.read_exact(&mut b).unwrap();
    b[0] ^= 0x01;
    file.seek(SeekFrom::Start(off)).unwrap();
    file.write_all(&b).unwrap();
    file.sync_all().unwrap();

    let mut chan = f.connect();
    let err = scan_rpc(
        chan.as_mut(),
        &RemoteScan::new("t", WireReadMode::Historical(t)),
    )
    .unwrap_err();
    assert!(err.is_corrupt(), "expected Corrupt classification: {err}");
    assert!(
        !err.is_timeout() && !err.is_disconnect(),
        "corruption is not a liveness failure: {err}"
    );
    let _ = std::fs::remove_dir_all(&f.dir);
}

/// The wire re-classification rules in isolation: a remote error whose
/// message names corrupt state comes back as `Corrupt` (site-local,
/// repairable), everything else as a protocol violation. Exercises the
/// exact strings the `Display` impls put on the wire.
#[test]
fn remote_error_messages_reclassify() {
    use harbor_common::{DbError, TableId};
    // What a worker actually sends when a scan hits a bad checksum.
    let wire_msg = DbError::CorruptPage {
        table: TableId(1),
        page: 3,
    }
    .to_string();
    let e = DbError::from_remote_msg(wire_msg);
    assert!(e.is_corrupt());
    assert!(!e.is_timeout() && !e.is_disconnect());
    let e = DbError::from_remote_msg(DbError::Corrupt("directory header".into()).to_string());
    assert!(e.is_corrupt());
    let e = DbError::from_remote_msg("unexpected frame");
    assert!(!e.is_corrupt());
    assert!(matches!(e, DbError::Protocol(_)));
}

#[test]
fn workers_reject_coordinator_only_requests() {
    let f = build("coord-only");
    let mut chan = f.connect();
    match rpc(chan.as_mut(), &Request::GetTime).unwrap() {
        Response::Err { msg } => assert!(msg.contains("coordinator")),
        other => panic!("{other:?}"),
    }
    let _ = std::fs::remove_dir_all(&f.dir);
}

/// The deletion-log fast path must return exactly what the segment-scan
/// slow path returns, for every recovery deletion-query shape.
#[test]
fn deletion_log_fast_path_matches_segment_scan() {
    // Build two identical workers: one with the log, one without.
    let build_with = |name: &str, use_log: bool| -> Fixture {
        let mut f = build(name);
        if !use_log {
            // Rebuild the worker with the flag off.
            f.worker.stop();
            let worker = Worker::start(
                f.engine.clone(),
                f.transport.clone(),
                WorkerConfig {
                    site: SiteId(1),
                    addr: format!("rpc-{name}-2"),
                    protocol: ProtocolKind::Opt3pc,
                    checkpoint_every: None,
                    peers: HashMap::new(),
                    coordinator: None,
                    auto_consensus: false,
                    use_deletion_log: false,
                    scan_batch: harbor_common::config::DEFAULT_SCAN_BATCH,
                    crash_schedule: Default::default(),
                },
            )
            .unwrap();
            f.worker = worker;
        }
        f
    };
    let run_workload = |f: &Fixture| -> (Timestamp, Timestamp) {
        let rows: Vec<Vec<Value>> = (0..200i64)
            .map(|i| vec![Value::Int64(i), Value::Int32(0)])
            .collect();
        let t_load = f.txn(
            1,
            vec![UpdateRequest::InsertMany {
                table: "t".into(),
                rows,
            }],
        );
        // Deletions at several distinct times, including an update (which
        // deletes the old version).
        f.txn(
            2,
            vec![UpdateRequest::DeleteWhere {
                table: "t".into(),
                pred: Expr::col(2).lt(Expr::lit(20i64)),
            }],
        );
        f.txn(
            3,
            vec![UpdateRequest::UpdateByKey {
                table: "t".into(),
                key: 50,
                set: vec![(1, Value::Int32(9))],
            }],
        );
        let t_end = f.txn(
            4,
            vec![UpdateRequest::DeleteWhere {
                table: "t".into(),
                pred: Expr::col(2).ge(Expr::lit(190i64)),
            }],
        );
        (t_load, t_end)
    };
    let query = |f: &Fixture, after: Timestamp, hwm: Timestamp| -> Vec<(i64, u64)> {
        let mut chan = f.connect();
        let mut scan = RemoteScan::new("t", WireReadMode::SeeDeletedHistorical(hwm));
        scan.ids_and_deletions_only = true;
        scan.del_after = Some(after);
        scan.ins_at_or_before = Some(after);
        let mut out: Vec<(i64, u64)> = scan_rpc(chan.as_mut(), &scan)
            .unwrap()
            .iter()
            .map(|t| (t.get(0).as_i64().unwrap(), t.get(1).as_time().unwrap().0))
            .collect();
        out.sort();
        out
    };
    let fast = build_with("dlog-fast", true);
    let slow = build_with("dlog-slow", false);
    let (t_load_f, t_end_f) = run_workload(&fast);
    let (t_load_s, t_end_s) = run_workload(&slow);
    assert_eq!(
        (t_load_f, t_end_f),
        (t_load_s, t_end_s),
        "same logical history"
    );
    for (after, hwm) in [
        (t_load_f, t_end_f),                  // everything since the load
        (t_load_f, Timestamp(t_end_f.0 - 1)), // HWM masks the last deletion
        (Timestamp(t_load_f.0 + 1), t_end_f), // skip the first deletion wave
        (t_end_f, t_end_f),                   // nothing qualifies
    ] {
        let a = query(&fast, after, hwm);
        let b = query(&slow, after, hwm);
        assert_eq!(a, b, "fast/slow divergence at after={after} hwm={hwm}");
    }
    assert!(!query(&fast, t_load_f, t_end_f).is_empty());
    let _ = std::fs::remove_dir_all(&fast.dir);
    let _ = std::fs::remove_dir_all(&slow.dir);
}
