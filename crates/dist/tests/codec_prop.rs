//! Adversarial property tests for the wire codec: any mutation of a valid
//! frame — truncation, byte corruption, or an inflated length prefix — must
//! decode to `Err`, never panic, and never allocate unboundedly. A chaos
//! transport (or a hostile peer) can hand the decoder arbitrary bytes; the
//! RPC layer relies on every such frame failing *cleanly*.

use harbor_common::codec::Wire;
use harbor_common::{SiteId, Timestamp, TransactionId, Tuple, Value};
use harbor_dist::{RemoteScan, Request, Response, UpdateRequest, WireReadMode, WireTxnState};
use proptest::prelude::*;

fn sample_requests() -> Vec<Request> {
    let tid = TransactionId(0x0001_0000_0000_002a);
    let mut scan = RemoteScan::new("sales", WireReadMode::SeeDeletedHistorical(Timestamp(90)));
    scan.ins_after = Some(Timestamp(10));
    scan.del_after = Some(Timestamp(10));
    scan.ids_and_deletions_only = true;
    vec![
        Request::Begin { tid },
        Request::Update {
            tid,
            req: UpdateRequest::Insert {
                table: "sales".into(),
                values: vec![Value::Int64(7), Value::Int32(1), Value::Str("x".into())],
            },
        },
        Request::Update {
            tid,
            req: UpdateRequest::InsertMany {
                table: "sales".into(),
                rows: vec![
                    vec![Value::Int64(1), Value::Int32(2)],
                    vec![Value::Int64(3), Value::Int32(4)],
                ],
            },
        },
        Request::Prepare {
            tid,
            workers: vec![SiteId(1), SiteId(2), SiteId(3)],
            time_bound: Timestamp(41),
        },
        Request::PrepareToCommit {
            tid,
            commit_time: Timestamp(42),
        },
        Request::Commit {
            tid,
            commit_time: Timestamp(42),
        },
        Request::Scan(scan.clone()),
        Request::ScanRange {
            scan,
            ins_lo: Timestamp(5),
            ins_hi: Timestamp(90),
        },
        Request::RecComingOnline {
            site: SiteId(2),
            table: "sales".into(),
        },
        Request::SegmentBounds {
            table: "sales".into(),
        },
        Request::PrepareBatch {
            epoch: 12,
            txns: vec![
                (tid, vec![SiteId(1), SiteId(2)]),
                (TransactionId(0x0001_0000_0000_002b), vec![SiteId(2)]),
            ],
            time_bound: Timestamp(41),
        },
        Request::CommitBatch {
            epoch: 12,
            commits: vec![(tid, Timestamp(42))],
            aborts: vec![TransactionId(0x0001_0000_0000_002b)],
        },
    ]
}

fn sample_responses() -> Vec<Response> {
    vec![
        Response::Ok,
        Response::Vote { yes: true },
        Response::Time { now: Timestamp(99) },
        Response::TxnState {
            state: WireTxnState::PreparedToCommit(Timestamp(17)),
        },
        Response::Tuples {
            batch: vec![
                Tuple::versioned(
                    Timestamp(3),
                    Timestamp::ZERO,
                    vec![Value::Int64(1), Value::Int32(5)],
                ),
                Tuple::versioned(
                    Timestamp(4),
                    Timestamp(9),
                    vec![Value::Int64(2), Value::Int32(6)],
                ),
            ],
            done: false,
        },
        Response::Err { msg: "nope".into() },
        Response::SegmentBounds {
            segments: vec![(Timestamp(1), Timestamp(8), Timestamp(6), 128)],
        },
        Response::VoteBatch {
            votes: vec![
                (TransactionId(0x0001_0000_0000_002a), true),
                (TransactionId(0x0001_0000_0000_002b), false),
            ],
        },
        Response::AckBatch {
            acked: vec![TransactionId(0x0001_0000_0000_002a)],
        },
    ]
}

/// Decoding must be total: `Ok` (the mutation happened to stay decodable)
/// or `Err`, but never a panic. Run under `cargo test`; a panic aborts the
/// test with the failing byte vector printed by proptest.
fn decode_is_total(bytes: &[u8], as_request: bool) {
    if as_request {
        let _ = Request::from_slice(bytes);
    } else {
        let _ = Response::from_slice(bytes);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn truncated_frames_never_panic(
        idx in 0usize..32,
        keep_pct in 0u32..100,
        as_request in any::<bool>(),
    ) {
        let samples = if as_request {
            sample_requests().iter().map(|r| r.to_vec()).collect::<Vec<_>>()
        } else {
            sample_responses().iter().map(|r| r.to_vec()).collect::<Vec<_>>()
        };
        let bytes = &samples[idx % samples.len()];
        let keep = (bytes.len() as u64 * keep_pct as u64 / 100) as usize;
        decode_is_total(&bytes[..keep], as_request);
    }

    #[test]
    fn corrupted_frames_never_panic(
        idx in 0usize..32,
        pos in 0usize..4096,
        mask in 1u8..=255,
        as_request in any::<bool>(),
    ) {
        let samples = if as_request {
            sample_requests().iter().map(|r| r.to_vec()).collect::<Vec<_>>()
        } else {
            sample_responses().iter().map(|r| r.to_vec()).collect::<Vec<_>>()
        };
        let mut bytes = samples[idx % samples.len()].clone();
        let pos = pos % bytes.len();
        bytes[pos] ^= mask;
        decode_is_total(&bytes, as_request);
    }

    #[test]
    fn inflated_length_prefixes_never_panic_or_overallocate(
        idx in 0usize..32,
        pos in 0usize..4096,
        as_request in any::<bool>(),
    ) {
        let samples = if as_request {
            sample_requests().iter().map(|r| r.to_vec()).collect::<Vec<_>>()
        } else {
            sample_responses().iter().map(|r| r.to_vec()).collect::<Vec<_>>()
        };
        let mut bytes = samples[idx % samples.len()].clone();
        // Stamp 0xFFFFFFFF over four bytes anywhere: wherever it lands on a
        // length/count prefix, the decoder sees a ~4-billion-element claim
        // backed by a few dozen bytes. `checked_count` (and the bounded
        // byte-reads) must reject it before allocating for it — if this
        // over-allocated instead, the test would die on OOM, not an assert.
        let pos = pos % bytes.len();
        for i in pos..(pos + 4).min(bytes.len()) {
            bytes[i] = 0xff;
        }
        decode_is_total(&bytes, as_request);
    }
}

/// Deterministic regression for the count guard itself: a `Prepare` frame
/// whose worker-count field is patched to `u32::MAX` must fail with the
/// corrupt-count error, not allocate a 16 GiB `Vec<SiteId>`.
#[test]
fn huge_worker_count_is_rejected_up_front() {
    let frame = Request::Prepare {
        tid: TransactionId(1),
        workers: vec![SiteId(1), SiteId(2)],
        time_bound: Timestamp(0),
    }
    .to_vec();
    // Layout: tag u8 | tid u64 | count u32 | ...
    let mut mutated = frame.clone();
    mutated[9..13].copy_from_slice(&u32::MAX.to_le_bytes());
    let err = Request::from_slice(&mutated).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("exceeds"), "unexpected error: {msg}");
    // The original still round-trips.
    assert!(Request::from_slice(&frame).is_ok());
}
