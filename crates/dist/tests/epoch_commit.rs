//! Epoch group commit (extension 14): batched PREPARE/COMMIT waves,
//! per-transaction failure isolation, and §4.3.3 per-transaction
//! consensus resolution after a mid-epoch coordinator crash.

use harbor_common::{FieldType, Metrics, SiteId, StorageConfig, Timestamp, Value};
use harbor_dist::{
    Coordinator, CoordinatorConfig, Copy, CrashPoint, EpochCommitConfig, Part, Placement,
    ProtocolKind, UpdateRequest, Worker, WorkerConfig,
};
use harbor_engine::{Engine, EngineOptions};
use harbor_net::{InMemNetwork, Transport};
use harbor_wal::GroupCommit;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

struct Fixture {
    dir: PathBuf,
    coordinator: Arc<Coordinator>,
    workers: HashMap<SiteId, Arc<Worker>>,
    engines: HashMap<SiteId, Arc<Engine>>,
    metrics: Metrics,
    crash_schedule: Arc<harbor_dist::CrashSchedule>,
}

/// Builds an Opt2pc cluster with epoch commit enabled. `tables` maps each
/// table name to the sites holding a full copy.
fn build(
    name: &str,
    sites: &[u16],
    tables: &[(&str, &[u16])],
    epoch: EpochCommitConfig,
) -> Fixture {
    let dir = std::env::temp_dir()
        .join("harbor-epoch-commit")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let transport: Arc<dyn Transport> = Arc::new(InMemNetwork::new(Metrics::new()));
    let crash_schedule: Arc<harbor_dist::CrashSchedule> = Default::default();

    let peers: HashMap<SiteId, String> = sites
        .iter()
        .map(|s| (SiteId(*s), format!("epoch-{name}-site-{s}")))
        .collect();
    let mut placement = Placement::new();
    placement.set_coordinator_addr(&format!("epoch-{name}-coordinator"));
    for (site, addr) in &peers {
        placement.set_address(*site, addr);
    }
    for (table, holders) in tables {
        let copies = holders
            .iter()
            .map(|s| Copy {
                parts: vec![Part::full(SiteId(*s))],
            })
            .collect();
        placement.add_table(table, copies);
    }

    let mut workers = HashMap::new();
    let mut engines = HashMap::new();
    for s in sites {
        let site = SiteId(*s);
        let engine = Engine::open(
            dir.join(format!("site-{s}")),
            EngineOptions::harbor(site, StorageConfig::for_tests()),
        )
        .unwrap();
        for (table, holders) in tables {
            if holders.contains(s) {
                engine
                    .create_table(
                        table,
                        vec![
                            ("id".into(), FieldType::Int64),
                            ("v".into(), FieldType::Int32),
                        ],
                    )
                    .unwrap();
            }
        }
        let worker = Worker::start(
            engine.clone(),
            transport.clone(),
            WorkerConfig {
                site,
                addr: peers[&site].clone(),
                protocol: ProtocolKind::Opt2pc,
                checkpoint_every: None,
                peers: peers.clone(),
                coordinator: None,
                auto_consensus: false,
                use_deletion_log: true,
                scan_batch: harbor_common::config::DEFAULT_SCAN_BATCH,
                crash_schedule: crash_schedule.clone(),
            },
        )
        .unwrap();
        workers.insert(site, worker);
        engines.insert(site, engine);
    }
    let metrics = Metrics::new();
    let coordinator = Coordinator::start(
        CoordinatorConfig {
            site: SiteId(0),
            addr: format!("epoch-{name}-coordinator"),
            protocol: ProtocolKind::Opt2pc,
            log_dir: Some(dir.join("coordinator")),
            group_commit: GroupCommit::enabled(),
            disk: harbor_common::DiskProfile::fast(),
            rpc_deadline: harbor_dist::DEFAULT_RPC_DEADLINE,
            read_retries: harbor_dist::DEFAULT_READ_RETRIES,
            crash_schedule: crash_schedule.clone(),
            epoch_commit: Some(epoch),
            degrade_read_only: false,
        },
        placement,
        transport,
        metrics.clone(),
    )
    .unwrap();
    Fixture {
        dir,
        coordinator,
        workers,
        engines,
        metrics,
        crash_schedule,
    }
}

impl Fixture {
    fn teardown(self) {
        self.coordinator.crash();
        for w in self.workers.values() {
            w.crash();
        }
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn insert(table: &str, id: i64) -> UpdateRequest {
    UpdateRequest::Insert {
        table: table.into(),
        values: vec![Value::Int64(id), Value::Int32(id as i32)],
    }
}

fn count_at(engine: &Arc<Engine>, table: &str) -> usize {
    let def = engine.table_def(table).unwrap();
    let mut scan = harbor_exec::SeqScan::new(
        engine.pool().clone(),
        def.id,
        harbor_exec::ReadMode::Historical(Timestamp(1_000_000)),
    )
    .unwrap();
    harbor_exec::collect(&mut scan).unwrap().len()
}

/// Runs `n` client threads; thread `i` commits one single-row insert into
/// table `t{i}` (disjoint tables: no lock conflicts between clients).
fn commit_concurrently(
    coordinator: &Arc<Coordinator>,
    n: i64,
) -> Vec<Result<Timestamp, harbor_common::DbError>> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let c = coordinator.clone();
                scope.spawn(move || -> Result<Timestamp, harbor_common::DbError> {
                    let tid = c.begin()?;
                    c.update(tid, insert(&format!("t{i}"), i))?;
                    c.commit(tid)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

/// Eight concurrent commits with `max_txns = 8` form exactly one epoch:
/// one coordinator force covers all eight decision records, and the
/// epoch-size histogram lands in the 5–16 bucket.
#[test]
fn concurrent_commits_share_one_epoch() {
    let f = build(
        "one-epoch",
        &[1, 2],
        &[
            ("t0", &[1, 2]),
            ("t1", &[1, 2]),
            ("t2", &[1, 2]),
            ("t3", &[1, 2]),
            ("t4", &[1, 2]),
            ("t5", &[1, 2]),
            ("t6", &[1, 2]),
            ("t7", &[1, 2]),
        ],
        EpochCommitConfig {
            max_txns: 8,
            max_wait: Duration::from_secs(5),
            pipeline_depth: 2,
        },
    );
    let results = commit_concurrently(&f.coordinator, 8);
    for r in &results {
        r.as_ref().expect("every transaction should commit");
    }
    for site in [SiteId(1), SiteId(2)] {
        let rows: usize = (0..8)
            .map(|i| count_at(&f.engines[&site], &format!("t{i}")))
            .sum();
        assert_eq!(rows, 8, "replica {site} rows");
    }
    let snap = f.metrics.snapshot();
    assert_eq!(snap.epochs_committed, 1, "expected a single full epoch");
    assert_eq!(snap.epoch_txns, 8);
    assert_eq!(snap.epoch_size_5_16, 1);
    // One force for 8 decision records: 7 syncs saved at the coordinator.
    assert_eq!(snap.batched_syncs_saved, 7);
    assert_eq!(snap.commits, 8);
    f.teardown();
}

/// A worker that dies on receipt of the batched PREPARE dooms only the
/// transactions it participates in: the co-batched transaction on the
/// surviving worker still commits (no epoch-wide abort).
#[test]
fn worker_crash_during_batch_prepare_aborts_only_its_txns() {
    let f = build(
        "batch-prepare-crash",
        &[1, 2],
        // Disjoint placement: "a" lives only on site 1, "b" only on site 2.
        &[("a", &[1]), ("b", &[2])],
        EpochCommitConfig {
            max_txns: 2,
            max_wait: Duration::from_secs(5),
            pipeline_depth: 2,
        },
    );
    // Site 1 fail-stops while handling the batched PREPARE wave.
    f.crash_schedule
        .arm(SiteId(1), CrashPoint::WorkerDuringBatchPrepare);

    let results = std::thread::scope(|scope| {
        let ca = f.coordinator.clone();
        let a = scope.spawn(move || {
            let tid = ca.begin()?;
            ca.update(tid, insert("a", 1))?;
            ca.commit(tid)
        });
        let cb = f.coordinator.clone();
        let b = scope.spawn(move || {
            let tid = cb.begin()?;
            cb.update(tid, insert("b", 1))?;
            cb.commit(tid)
        });
        (a.join().unwrap(), b.join().unwrap())
    });
    assert!(
        results.0.is_err(),
        "txn on the crashed worker must abort, got {:?}",
        results.0
    );
    results
        .1
        .as_ref()
        .expect("txn on the surviving worker must commit");
    assert_eq!(count_at(&f.engines[&SiteId(2)], "b"), 1);
    let snap = f.metrics.snapshot();
    assert_eq!(snap.commits, 1, "exactly one txn commits");
    f.teardown();
}

/// Coordinator crash between the epoch force and the COMMIT wave: every
/// transaction in the epoch is in doubt at the workers, and §4.3.3
/// consensus resolves each one *individually* — all replicas converge on
/// the same per-transaction outcome, with no phantom commit.
#[test]
fn coordinator_crash_after_epoch_force_resolves_per_txn() {
    let f = build(
        "epoch-force-crash",
        &[1, 2],
        &[("t0", &[1, 2]), ("t1", &[1, 2])],
        EpochCommitConfig {
            max_txns: 2,
            max_wait: Duration::from_secs(5),
            pipeline_depth: 2,
        },
    );
    f.crash_schedule
        .arm(SiteId(0), CrashPoint::CoordAfterEpochForce);

    // Clients record their txn ids before committing, so the test can
    // resolve each one after the crash.
    let tids: Arc<parking_lot::Mutex<Vec<harbor_common::TransactionId>>> = Default::default();
    let results: Vec<Result<Timestamp, harbor_common::DbError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2i64)
            .map(|i| {
                let c = f.coordinator.clone();
                let tids = tids.clone();
                scope.spawn(move || -> Result<Timestamp, harbor_common::DbError> {
                    let tid = c.begin()?;
                    tids.lock().push(tid);
                    c.update(tid, insert(&format!("t{i}"), i))?;
                    c.commit(tid)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for r in &results {
        assert!(r.is_err(), "clients must observe the coordinator crash");
    }
    let tids = tids.lock().clone();
    assert_eq!(tids.len(), 2, "both txns should be in doubt");
    // Each in-doubt transaction is resolved on its own.
    for tid in &tids {
        let resolved = f.workers[&SiteId(1)]
            .clone()
            .resolve_by_consensus(*tid)
            .unwrap();
        assert!(resolved, "site 1 should act as backup for {tid:?}");
    }
    // Table 4.1: prepared-yes under a dead coordinator resolves to ABORT on
    // every replica — consistently per transaction, no phantom commit.
    for site in [SiteId(1), SiteId(2)] {
        for tid in &tids {
            assert!(
                matches!(
                    f.workers[&site].backup_state(*tid),
                    harbor_dist::BackupState::Aborted
                ),
                "{tid:?} unresolved at {site}"
            );
        }
        for t in ["t0", "t1"] {
            assert_eq!(count_at(&f.engines[&site], t), 0, "no phantom rows in {t}");
        }
        assert_eq!(f.engines[&site].locks().held_count(), 0);
    }
    f.teardown();
}

/// A lone transaction forms a size-1 epoch: same force count as the
/// serial path (no sync is saved, none is added).
#[test]
fn single_txn_epoch_matches_serial_cost() {
    let f = build(
        "single-txn",
        &[1],
        &[("t", &[1])],
        EpochCommitConfig::default(),
    );
    let tid = f.coordinator.begin().unwrap();
    f.coordinator.update(tid, insert("t", 7)).unwrap();
    let t = f.coordinator.commit(tid).unwrap();
    assert!(t > Timestamp::ZERO);
    assert_eq!(count_at(&f.engines[&SiteId(1)], "t"), 1);
    let snap = f.metrics.snapshot();
    assert_eq!(snap.epochs_committed, 1);
    assert_eq!(snap.epoch_size_1, 1);
    assert_eq!(snap.batched_syncs_saved, 0, "a size-1 epoch saves nothing");
    f.teardown();
}
