//! The consensus-building protocol for coordinator failures under 3PC
//! (thesis §4.3.3, Table 4.1; originally Skeen 1981).
//!
//! When workers detect a coordinator crash during commit processing, a
//! backup coordinator is chosen "by some arbitrarily pre-assigned ranking"
//! — here, the lowest-numbered live participant. Because 3PC state
//! transitions proceed in lock-step, no site can be more than one state
//! away from the backup, so the backup can decide the global outcome from
//! *its own* state alone:
//!
//! | backup state            | action                          |
//! |-------------------------|---------------------------------|
//! | pending                 | abort                           |
//! | prepared, voted NO      | abort                           |
//! | prepared, voted YES     | prepare, then abort             |
//! | aborted                 | abort                           |
//! | prepared-to-commit      | prepare-to-commit, then commit  |
//! | committed               | commit                          |
//!
//! Workers disregard duplicate messages, so replaying phases is safe.

use crate::failpoint::CrashPoint;
use crate::message::{Request, Response};
use crate::worker::Worker;
use crate::{rpc_deadline, rpc_liveness, with_read_retries};
use harbor_common::{DbError, DbResult, SiteId, Timestamp, TransactionId};
use std::sync::Arc;
use std::time::Duration;

/// Liveness deadline for consensus-protocol round trips. A partitioned peer
/// whose socket never closes must not hang resolution forever; past this,
/// it is treated as dead (§5.5.1 extended to blackholed links).
pub(crate) const CONSENSUS_DEADLINE: Duration = Duration::from_secs(2);

/// Bounded retries for *transient* timeouts during the election ping and the
/// idempotent state query. A site must not be declared dead — and its backup
/// role usurped — on a single slow reply; only a true disconnect or repeated
/// deadline expiry counts as death.
pub(crate) const CONSENSUS_RETRIES: u32 = 2;

/// A participant's consensus-relevant state (Fig 4-5 states plus the vote).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BackupState {
    Pending,
    PreparedYes,
    PreparedNo,
    PreparedToCommit(Timestamp),
    Committed(Timestamp),
    Aborted,
}

/// What the backup coordinator does (Table 4.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BackupAction {
    Abort,
    PrepareThenAbort,
    PrepareToCommitThenCommit(Timestamp),
    Commit(Timestamp),
}

/// The pure decision function of Table 4.1.
pub fn backup_action(state: BackupState) -> BackupAction {
    match state {
        BackupState::Pending => BackupAction::Abort,
        BackupState::PreparedNo => BackupAction::Abort,
        BackupState::Aborted => BackupAction::Abort,
        BackupState::PreparedYes => BackupAction::PrepareThenAbort,
        BackupState::PreparedToCommit(t) => BackupAction::PrepareToCommitThenCommit(t),
        BackupState::Committed(t) => BackupAction::Commit(t),
    }
}

/// Runs the protocol from `worker`'s point of view. Returns `Ok(true)` if
/// this site acted as backup and drove the transaction to an outcome,
/// `Ok(false)` if another live site outranks it (that site is the backup;
/// this one waits to be told).
pub fn resolve(
    worker: &Arc<Worker>,
    tid: TransactionId,
    participants: &[SiteId],
) -> DbResult<bool> {
    let mut ranked: Vec<SiteId> = participants.to_vec();
    ranked.sort();
    ranked.dedup();
    // Election: the lowest-ranked live participant is the backup.
    for site in &ranked {
        if *site == worker.site() {
            break; // we are the highest-priority live site
        }
        if ping(worker, *site) {
            return Ok(false); // a live site outranks us; defer to it
        }
    }
    let my_state = worker.backup_state(tid);
    let action = backup_action(my_state);
    match action {
        BackupAction::Abort => {
            maybe_crash_mid_resolution(worker)?;
            broadcast(worker, &ranked, &Request::Abort { tid })?;
        }
        BackupAction::PrepareThenAbort => {
            // Ask every site to reach the prepared state (no-ops where it
            // already is), then abort.
            broadcast(
                worker,
                &ranked,
                &Request::Prepare {
                    tid,
                    workers: ranked.clone(),
                    time_bound: Timestamp::ZERO,
                },
            )?;
            maybe_crash_mid_resolution(worker)?;
            broadcast(worker, &ranked, &Request::Abort { tid })?;
        }
        BackupAction::PrepareToCommitThenCommit(t) => {
            // Replay the last two phases, reusing the commit time received
            // from the old coordinator (§4.3.3).
            broadcast(
                worker,
                &ranked,
                &Request::PrepareToCommit {
                    tid,
                    commit_time: t,
                },
            )?;
            maybe_crash_mid_resolution(worker)?;
            broadcast(
                worker,
                &ranked,
                &Request::Commit {
                    tid,
                    commit_time: t,
                },
            )?;
        }
        BackupAction::Commit(t) => {
            maybe_crash_mid_resolution(worker)?;
            broadcast(
                worker,
                &ranked,
                &Request::Commit {
                    tid,
                    commit_time: t,
                },
            )?;
        }
    }
    Ok(true)
}

/// Probes [`CrashPoint::WorkerDuringConsensusResolve`] between consensus
/// broadcasts. If this backup coordinator is scheduled to die mid-resolution,
/// the surviving participants re-run the election; Table 4.1 guarantees the
/// next-ranked site derives the same outcome from its own state, and workers
/// disregard duplicate phase messages, so the partial first broadcast is
/// harmless.
fn maybe_crash_mid_resolution(worker: &Arc<Worker>) -> DbResult<()> {
    if worker.fire_crash(CrashPoint::WorkerDuringConsensusResolve) {
        return Err(DbError::SiteDown(
            "backup coordinator crashed mid-resolution (fail point)".into(),
        ));
    }
    Ok(())
}

/// Asks the highest-priority live participant (other than this site) for
/// its state of `tid`. `None` when unreachable or still undecided in a way
/// that maps to no [`BackupState`] progress.
pub fn query_backup_state(
    worker: &Arc<Worker>,
    tid: TransactionId,
    participants: &[SiteId],
) -> Option<BackupState> {
    let mut ranked: Vec<SiteId> = participants.to_vec();
    ranked.sort();
    ranked.dedup();
    for site in ranked {
        if site == worker.site() {
            return None; // we outrank the rest: we are the backup
        }
        let Some(addr) = worker.peer_addr(site) else {
            continue;
        };
        // The query is idempotent, so transient timeouts get bounded retries
        // before the site is skipped as unreachable.
        let reply = with_read_retries(None, CONSENSUS_RETRIES, Duration::from_millis(10), || {
            let mut chan = worker.transport().connect(&addr)?;
            rpc_deadline(
                chan.as_mut(),
                &Request::QueryTxnState { tid },
                CONSENSUS_DEADLINE,
            )
        });
        match reply {
            Ok(Response::TxnState { state }) => {
                use crate::message::WireTxnState as W;
                return Some(match state {
                    W::Unknown | W::Aborted => BackupState::Aborted,
                    W::Pending => BackupState::Pending,
                    W::PreparedVotedYes => BackupState::PreparedYes,
                    W::PreparedVotedNo => BackupState::PreparedNo,
                    W::PreparedToCommit(t) => BackupState::PreparedToCommit(t),
                    W::Committed(t) => BackupState::Committed(t),
                });
            }
            _ => continue,
        }
    }
    None
}

fn ping(worker: &Arc<Worker>, site: SiteId) -> bool {
    let Some(addr) = worker.peer_addr(site) else {
        return false;
    };
    // Only a true disconnect or repeated deadline expiry declares the site
    // dead; a single transient timeout must not usurp its backup role.
    for attempt in 0..=CONSENSUS_RETRIES {
        let Ok(mut chan) = worker.transport().connect(&addr) else {
            return false;
        };
        match rpc_deadline(chan.as_mut(), &Request::Ping, CONSENSUS_DEADLINE) {
            Ok(Response::Ok) => return true,
            Err(DbError::Timeout(_)) if attempt < CONSENSUS_RETRIES => continue,
            _ => return false,
        }
    }
    false
}

/// Sends `req` to every participant (including this site, through its own
/// server, for uniformity). Crashed participants are skipped — they will
/// learn the outcome through recovery.
fn broadcast(worker: &Arc<Worker>, participants: &[SiteId], req: &Request) -> DbResult<()> {
    let mut reached = 0usize;
    for site in participants {
        let Some(addr) = worker.peer_addr(*site) else {
            continue;
        };
        let Ok(mut chan) = worker.transport().connect(&addr) else {
            continue; // crashed participant
        };
        // Liveness deadline: a partitioned participant whose socket never
        // closes is treated as died mid-step, not waited on forever. Phase
        // messages are never retransmitted here — the recovering site learns
        // the outcome through recovery instead.
        match rpc_liveness(chan.as_mut(), req, CONSENSUS_DEADLINE, None) {
            Ok(Response::Err { msg }) => {
                return Err(DbError::protocol(format!(
                    "consensus step rejected by {site}: {msg}"
                )));
            }
            Ok(_) => reached += 1,
            Err(_) => {} // died mid-step; it will recover
        }
    }
    if reached == 0 {
        return Err(DbError::Unrecoverable(
            "consensus reached no participants".into(),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_4_1_actions() {
        assert_eq!(backup_action(BackupState::Pending), BackupAction::Abort);
        assert_eq!(backup_action(BackupState::PreparedNo), BackupAction::Abort);
        assert_eq!(backup_action(BackupState::Aborted), BackupAction::Abort);
        assert_eq!(
            backup_action(BackupState::PreparedYes),
            BackupAction::PrepareThenAbort
        );
        assert_eq!(
            backup_action(BackupState::PreparedToCommit(Timestamp(7))),
            BackupAction::PrepareToCommitThenCommit(Timestamp(7))
        );
        assert_eq!(
            backup_action(BackupState::Committed(Timestamp(9))),
            BackupAction::Commit(Timestamp(9))
        );
    }
}
