//! The four commit protocols (thesis §4.3) and their per-step logging
//! behaviour — the rows of Table 4.2.

use harbor_engine::StepLogging;

/// Which commit protocol the cluster runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProtocolKind {
    /// Traditional two-phase commit with write-ahead logging everywhere
    /// (Fig 4-2): workers force PREPARE and COMMIT/ABORT, the coordinator
    /// forces COMMIT/ABORT.
    Trad2pc,
    /// Optimized 2PC (Fig 4-3): no worker logging at all; the coordinator
    /// still forces its COMMIT/ABORT record.
    Opt2pc,
    /// Canonical three-phase commit (§4.3.3 footnote interpretation):
    /// workers force at all three phases; the coordinator never logs.
    Canon3pc,
    /// Optimized 3PC (Fig 4-4): no forced writes and no log anywhere.
    Opt3pc,
}

impl ProtocolKind {
    /// Three phases of worker messages (prepare / prepare-to-commit /
    /// commit) or two?
    pub fn is_three_phase(self) -> bool {
        matches!(self, ProtocolKind::Canon3pc | ProtocolKind::Opt3pc)
    }

    /// Do workers under this protocol maintain a WAL at all?
    pub fn workers_log(self) -> bool {
        matches!(self, ProtocolKind::Trad2pc | ProtocolKind::Canon3pc)
    }

    /// Does the coordinator maintain (and force) a log?
    pub fn coordinator_logs(self) -> bool {
        matches!(self, ProtocolKind::Trad2pc | ProtocolKind::Opt2pc)
    }

    /// Worker logging at the PREPARE step.
    pub fn worker_prepare_logging(self) -> StepLogging {
        if self.workers_log() {
            StepLogging::FORCE
        } else {
            StepLogging::OFF
        }
    }

    /// Worker logging at the PREPARE-TO-COMMIT step (3PC only).
    pub fn worker_ptc_logging(self) -> StepLogging {
        if self == ProtocolKind::Canon3pc {
            StepLogging::FORCE
        } else {
            StepLogging::OFF
        }
    }

    /// Worker logging at the COMMIT/ABORT step.
    pub fn worker_commit_logging(self) -> StepLogging {
        if self.workers_log() {
            StepLogging::FORCE
        } else {
            StepLogging::OFF
        }
    }

    /// Messages the coordinator sends per worker on the commit path
    /// (Table 4.2 column 1: requests + acks counted both directions).
    pub fn expected_messages_per_worker(self) -> u64 {
        if self.is_three_phase() {
            6
        } else {
            4
        }
    }

    /// Table 4.2 column 2.
    pub fn expected_coordinator_forces(self) -> u64 {
        if self.coordinator_logs() {
            1
        } else {
            0
        }
    }

    /// Table 4.2 column 3.
    pub fn expected_worker_forces(self) -> u64 {
        match self {
            ProtocolKind::Trad2pc => 2,
            ProtocolKind::Opt2pc => 0,
            ProtocolKind::Canon3pc => 3,
            ProtocolKind::Opt3pc => 0,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::Trad2pc => "traditional 2PC",
            ProtocolKind::Opt2pc => "optimized 2PC",
            ProtocolKind::Canon3pc => "canonical 3PC",
            ProtocolKind::Opt3pc => "optimized 3PC",
        }
    }

    pub const ALL: [ProtocolKind; 4] = [
        ProtocolKind::Trad2pc,
        ProtocolKind::Opt2pc,
        ProtocolKind::Canon3pc,
        ProtocolKind::Opt3pc,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_4_2_static_rows() {
        use ProtocolKind::*;
        let rows: Vec<(ProtocolKind, u64, u64, u64)> = ProtocolKind::ALL
            .iter()
            .map(|p| {
                (
                    *p,
                    p.expected_messages_per_worker(),
                    p.expected_coordinator_forces(),
                    p.expected_worker_forces(),
                )
            })
            .collect();
        assert_eq!(rows[0], (Trad2pc, 4, 1, 2));
        assert_eq!(rows[1], (Opt2pc, 4, 1, 0));
        assert_eq!(rows[2], (Canon3pc, 6, 0, 3));
        assert_eq!(rows[3], (Opt3pc, 6, 0, 0));
    }

    #[test]
    fn logging_profiles_match_protocols() {
        assert_eq!(
            ProtocolKind::Trad2pc.worker_prepare_logging(),
            StepLogging::FORCE
        );
        assert_eq!(
            ProtocolKind::Opt2pc.worker_prepare_logging(),
            StepLogging::OFF
        );
        assert_eq!(
            ProtocolKind::Canon3pc.worker_ptc_logging(),
            StepLogging::FORCE
        );
        assert_eq!(
            ProtocolKind::Opt3pc.worker_commit_logging(),
            StepLogging::OFF
        );
        assert!(!ProtocolKind::Opt3pc.coordinator_logs());
        assert!(ProtocolKind::Opt2pc.coordinator_logs());
    }
}
