//! Wire messages between coordinators, workers, and recovering sites.

use harbor_common::codec::{Decoder, Encoder, Wire};
use harbor_common::{DbError, DbResult, SiteId, Timestamp, TransactionId, Tuple, Value};
use harbor_exec::Expr;

/// A logical update request — what the coordinator queues per transaction
/// (§4.1: "represented simply by the update's SQL statement or a parsed
/// version of that statement") and forwards to joining recoverers.
#[derive(Clone, PartialEq, Debug)]
pub enum UpdateRequest {
    /// Insert one row (user values; the key is the first value).
    Insert { table: String, values: Vec<Value> },
    /// Insert many rows in one request (bulk-ish loads).
    InsertMany {
        table: String,
        rows: Vec<Vec<Value>>,
    },
    /// Delete currently-visible rows matching a predicate over the stored
    /// tuple (version columns at indices 0/1, user fields after).
    DeleteWhere { table: String, pred: Expr },
    /// Update the live version of the row with the given key, overwriting
    /// the listed user fields ("indexed update queries").
    UpdateByKey {
        table: String,
        key: i64,
        set: Vec<(u16, Value)>,
    },
    /// Update all currently-visible rows matching a predicate.
    UpdateWhere {
        table: String,
        pred: Expr,
        set: Vec<(u16, Value)>,
    },
    /// Spin the worker CPU for `cycles` iterations (the simulated ETL work
    /// of §6.3.2).
    SimulateWork { cycles: u64 },
}

impl UpdateRequest {
    /// The table this request touches, if any.
    pub fn table(&self) -> Option<&str> {
        match self {
            UpdateRequest::Insert { table, .. }
            | UpdateRequest::InsertMany { table, .. }
            | UpdateRequest::DeleteWhere { table, .. }
            | UpdateRequest::UpdateByKey { table, .. }
            | UpdateRequest::UpdateWhere { table, .. } => Some(table),
            UpdateRequest::SimulateWork { .. } => None,
        }
    }
}

fn put_values(enc: &mut Encoder, values: &[Value]) {
    enc.put_u32(values.len() as u32);
    for v in values {
        v.encode(enc);
    }
}

/// Validates a wire-declared element count before allocating for it: every
/// element encodes to at least one byte, so a count beyond the bytes still
/// in the buffer is provably corrupt. Without this check a mutated length
/// prefix (u32::MAX) would make `Vec::with_capacity` allocate gigabytes
/// before the first element decode ever fails.
fn checked_count(dec: &Decoder<'_>, n: usize) -> DbResult<usize> {
    if n > dec.remaining() {
        return Err(DbError::corrupt(format!(
            "wire count {n} exceeds {} remaining bytes",
            dec.remaining()
        )));
    }
    Ok(n)
}

fn get_values(dec: &mut Decoder<'_>) -> DbResult<Vec<Value>> {
    let n = dec.get_u32()? as usize;
    let n = checked_count(dec, n)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(Value::decode(dec)?);
    }
    Ok(out)
}

fn put_set(enc: &mut Encoder, set: &[(u16, Value)]) {
    enc.put_u32(set.len() as u32);
    for (i, v) in set {
        enc.put_u16(*i);
        v.encode(enc);
    }
}

fn get_set(dec: &mut Decoder<'_>) -> DbResult<Vec<(u16, Value)>> {
    let n = dec.get_u32()? as usize;
    let n = checked_count(dec, n)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let i = dec.get_u16()?;
        out.push((i, Value::decode(dec)?));
    }
    Ok(out)
}

impl Wire for UpdateRequest {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            UpdateRequest::Insert { table, values } => {
                enc.put_u8(0);
                enc.put_str(table);
                put_values(enc, values);
            }
            UpdateRequest::InsertMany { table, rows } => {
                enc.put_u8(1);
                enc.put_str(table);
                enc.put_u32(rows.len() as u32);
                for r in rows {
                    put_values(enc, r);
                }
            }
            UpdateRequest::DeleteWhere { table, pred } => {
                enc.put_u8(2);
                enc.put_str(table);
                pred.encode(enc);
            }
            UpdateRequest::UpdateByKey { table, key, set } => {
                enc.put_u8(3);
                enc.put_str(table);
                enc.put_i64(*key);
                put_set(enc, set);
            }
            UpdateRequest::UpdateWhere { table, pred, set } => {
                enc.put_u8(4);
                enc.put_str(table);
                pred.encode(enc);
                put_set(enc, set);
            }
            UpdateRequest::SimulateWork { cycles } => {
                enc.put_u8(5);
                enc.put_u64(*cycles);
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> DbResult<Self> {
        Ok(match dec.get_u8()? {
            0 => UpdateRequest::Insert {
                table: dec.get_str()?,
                values: get_values(dec)?,
            },
            1 => {
                let table = dec.get_str()?;
                let n = dec.get_u32()? as usize;
                let n = checked_count(dec, n)?;
                let mut rows = Vec::with_capacity(n);
                for _ in 0..n {
                    rows.push(get_values(dec)?);
                }
                UpdateRequest::InsertMany { table, rows }
            }
            2 => UpdateRequest::DeleteWhere {
                table: dec.get_str()?,
                pred: Expr::decode(dec)?,
            },
            3 => UpdateRequest::UpdateByKey {
                table: dec.get_str()?,
                key: dec.get_i64()?,
                set: get_set(dec)?,
            },
            4 => UpdateRequest::UpdateWhere {
                table: dec.get_str()?,
                pred: Expr::decode(dec)?,
                set: get_set(dec)?,
            },
            5 => UpdateRequest::SimulateWork {
                cycles: dec.get_u64()?,
            },
            t => return Err(DbError::corrupt(format!("bad update request tag {t}"))),
        })
    }
}

/// Read modes expressible over the wire.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WireReadMode {
    /// Historical snapshot at a time (lock-free).
    Historical(Timestamp),
    /// `SEE DELETED HISTORICAL WITH TIME hwm` (recovery Phase 2).
    SeeDeletedHistorical(Timestamp),
    /// `SEE DELETED` under an already-granted table lock (Phase 3).
    SeeDeletedLocked(TransactionId),
    /// Latest committed data with transactional read locks.
    Current(TransactionId),
}

impl Wire for WireReadMode {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            WireReadMode::Historical(t) => {
                enc.put_u8(0);
                enc.put_u64(t.0);
            }
            WireReadMode::SeeDeletedHistorical(t) => {
                enc.put_u8(1);
                enc.put_u64(t.0);
            }
            WireReadMode::SeeDeletedLocked(tid) => {
                enc.put_u8(2);
                enc.put_u64(tid.0);
            }
            WireReadMode::Current(tid) => {
                enc.put_u8(3);
                enc.put_u64(tid.0);
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> DbResult<Self> {
        Ok(match dec.get_u8()? {
            0 => WireReadMode::Historical(Timestamp(dec.get_u64()?)),
            1 => WireReadMode::SeeDeletedHistorical(Timestamp(dec.get_u64()?)),
            2 => WireReadMode::SeeDeletedLocked(TransactionId(dec.get_u64()?)),
            3 => WireReadMode::Current(TransactionId(dec.get_u64()?)),
            t => return Err(DbError::corrupt(format!("bad read mode tag {t}"))),
        })
    }
}

/// A remote scan: the read queries of normal processing and all the remote
/// halves of the recovery queries of Chapter 5.
#[derive(Clone, PartialEq, Debug)]
pub struct RemoteScan {
    pub table: String,
    pub mode: WireReadMode,
    /// Residual predicate over the stored tuple (None = all).
    pub predicate: Option<Expr>,
    /// Segment-pruning + residual bound: committed `insertion_time <= t`.
    pub ins_at_or_before: Option<Timestamp>,
    /// Bound: `insertion_time > t` (uncommitted excluded by the modes).
    pub ins_after: Option<Timestamp>,
    /// Bound: `deletion_time > t`.
    pub del_after: Option<Timestamp>,
    /// Project to `(tuple_id, deletion_time)` pairs instead of full tuples
    /// (the Phase 2/3 deletion queries).
    pub ids_and_deletions_only: bool,
}

impl RemoteScan {
    pub fn new(table: &str, mode: WireReadMode) -> Self {
        RemoteScan {
            table: table.to_string(),
            mode,
            predicate: None,
            ins_at_or_before: None,
            ins_after: None,
            del_after: None,
            ids_and_deletions_only: false,
        }
    }
}

impl Wire for RemoteScan {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(&self.table);
        self.mode.encode(enc);
        match &self.predicate {
            Some(p) => {
                enc.put_bool(true);
                p.encode(enc);
            }
            None => enc.put_bool(false),
        }
        for bound in [self.ins_at_or_before, self.ins_after, self.del_after] {
            match bound {
                Some(t) => {
                    enc.put_bool(true);
                    enc.put_u64(t.0);
                }
                None => enc.put_bool(false),
            }
        }
        enc.put_bool(self.ids_and_deletions_only);
    }

    fn decode(dec: &mut Decoder<'_>) -> DbResult<Self> {
        let table = dec.get_str()?;
        let mode = WireReadMode::decode(dec)?;
        let predicate = if dec.get_bool()? {
            Some(Expr::decode(dec)?)
        } else {
            None
        };
        let mut bounds = [None; 3];
        for b in &mut bounds {
            if dec.get_bool()? {
                *b = Some(Timestamp(dec.get_u64()?));
            }
        }
        let ids_and_deletions_only = dec.get_bool()?;
        Ok(RemoteScan {
            table,
            mode,
            predicate,
            ins_at_or_before: bounds[0],
            ins_after: bounds[1],
            del_after: bounds[2],
            ids_and_deletions_only,
        })
    }
}

/// Requests sent to a worker's server.
#[derive(Clone, PartialEq, Debug)]
pub enum Request {
    /// Start a transaction at this worker.
    Begin {
        tid: TransactionId,
    },
    /// Execute one logical update request under `tid`.
    Update {
        tid: TransactionId,
        req: UpdateRequest,
    },
    /// First commit phase: vote request. Carries the participant set (3PC
    /// consensus needs it) and the coordinator clock lower bound.
    Prepare {
        tid: TransactionId,
        workers: Vec<SiteId>,
        time_bound: Timestamp,
    },
    /// 3PC second phase.
    PrepareToCommit {
        tid: TransactionId,
        commit_time: Timestamp,
    },
    /// Final commit with the assigned time.
    Commit {
        tid: TransactionId,
        commit_time: Timestamp,
    },
    Abort {
        tid: TransactionId,
    },
    /// Streamed scan; worker answers with `Response::Tuples` batches.
    Scan(RemoteScan),
    /// Recovery Phase 3: acquire a table-granularity read lock on behalf of
    /// the recovering site's lock owner `tid`.
    AcquireTableLock {
        tid: TransactionId,
        table: String,
    },
    ReleaseTableLock {
        tid: TransactionId,
        table: String,
    },
    /// Peer-state query used by the consensus-building protocol (§4.3.3).
    QueryTxnState {
        tid: TransactionId,
    },
    /// Liveness probe.
    Ping,
    /// Ask the timestamp authority's current time (recovering sites compute
    /// their HWM from this; served by coordinators).
    GetTime,
    /// A recovering site announces "`table` on `site` is coming online"
    /// (Fig 5-4; served by coordinators).
    RecComingOnline {
        site: SiteId,
        table: String,
    },
    /// Ask a buddy for `table`'s segment directory bounds (§4.2), so a
    /// recovering site can partition Phase 2 into per-segment ranges.
    SegmentBounds {
        table: String,
    },
    /// A ranged recovery scan: `scan` restricted to committed insertion
    /// times in the half-open interval `(ins_lo, ins_hi]`. The worker folds
    /// the range into the scan's segment-pruning bounds, so distinct ranges
    /// stream disjoint tuples and can be fetched from different buddies.
    ScanRange {
        scan: RemoteScan,
        ins_lo: Timestamp,
        ins_hi: Timestamp,
    },
    /// Epoch group commit: one PREPARE wave carrying every transaction of
    /// the epoch this worker participates in. Each entry carries the txn's
    /// full participant set (as in [`Request::Prepare`], for §4.3.3
    /// consensus). The worker answers with [`Response::VoteBatch`].
    PrepareBatch {
        epoch: u64,
        /// `(tid, participant set)` per transaction, coordinator order.
        txns: Vec<(TransactionId, Vec<SiteId>)>,
        time_bound: Timestamp,
    },
    /// Epoch group commit: one COMMIT wave carrying the per-txn outcomes of
    /// the epoch — commits with their assigned times plus the aborted txns
    /// this worker voted on. The worker answers with [`Response::AckBatch`].
    CommitBatch {
        epoch: u64,
        commits: Vec<(TransactionId, Timestamp)>,
        aborts: Vec<TransactionId>,
    },
    /// Membership: admit a brand-new site at `addr` into the cluster
    /// (served by coordinators). The coordinator allocates replica copies
    /// in the placement catalog and marks the site down-and-joining; the
    /// site then bootstraps via the ordinary recovery path and goes votable
    /// through the Fig 5-4 [`Request::RecComingOnline`] handshake.
    JoinSite {
        site: SiteId,
        addr: String,
    },
    /// Membership: gracefully retire `site` (served by coordinators). The
    /// coordinator drains the site from in-flight commit epochs, drops its
    /// copies from the placement catalog (refusing if any object would lose
    /// its last copy), and removes it from the address book.
    DecommissionSite {
        site: SiteId,
    },
    /// Index-backed point read: all versions of the tuple with primary key
    /// `key` visible under `mode` (§5.3's tuple-id index). Answered with a
    /// single non-streamed [`Response::Tuples`] (`done = true`) — the probe
    /// touches a handful of record ids, never a page range.
    PointRead {
        table: String,
        key: i64,
        mode: WireReadMode,
    },
}

/// Worker-visible transaction state, for consensus (§4.3.3 / Table 4.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WireTxnState {
    Unknown,
    Pending,
    PreparedVotedYes,
    PreparedVotedNo,
    PreparedToCommit(Timestamp),
    Committed(Timestamp),
    Aborted,
}

/// Responses from a worker/coordinator server.
#[derive(Clone, PartialEq, Debug)]
pub enum Response {
    Ok,
    Ack,
    Vote {
        yes: bool,
    },
    Time {
        now: Timestamp,
    },
    TxnState {
        state: WireTxnState,
    },
    /// One batch of a streamed scan; `done` marks the last batch.
    Tuples {
        batch: Vec<Tuple>,
        done: bool,
    },
    /// Fig 5-4's "all done" from the coordinator to the recovering site.
    AllDone,
    Err {
        msg: String,
    },
    /// Per-segment `(tmin_insert, tmax_insert, tmax_delete, pages)`
    /// directory bounds, oldest segment first. The page count lets the
    /// recovering site weight its ranged catch-up queries by data volume.
    SegmentBounds {
        segments: Vec<(Timestamp, Timestamp, Timestamp, u64)>,
    },
    /// Per-txn vote vector answering [`Request::PrepareBatch`], in the
    /// request's txn order. A NO vote aborts only that transaction.
    VoteBatch {
        votes: Vec<(TransactionId, bool)>,
    },
    /// Per-txn acks answering [`Request::CommitBatch`]: every txn this
    /// worker applied (committed or aborted) during the wave.
    AckBatch {
        acked: Vec<TransactionId>,
    },
}

impl Wire for Request {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            Request::Begin { tid } => {
                enc.put_u8(0);
                enc.put_u64(tid.0);
            }
            Request::Update { tid, req } => {
                enc.put_u8(1);
                enc.put_u64(tid.0);
                req.encode(enc);
            }
            Request::Prepare {
                tid,
                workers,
                time_bound,
            } => {
                enc.put_u8(2);
                enc.put_u64(tid.0);
                enc.put_u32(workers.len() as u32);
                for w in workers {
                    enc.put_u16(w.0);
                }
                enc.put_u64(time_bound.0);
            }
            Request::PrepareToCommit { tid, commit_time } => {
                enc.put_u8(3);
                enc.put_u64(tid.0);
                enc.put_u64(commit_time.0);
            }
            Request::Commit { tid, commit_time } => {
                enc.put_u8(4);
                enc.put_u64(tid.0);
                enc.put_u64(commit_time.0);
            }
            Request::Abort { tid } => {
                enc.put_u8(5);
                enc.put_u64(tid.0);
            }
            Request::Scan(s) => {
                enc.put_u8(6);
                s.encode(enc);
            }
            Request::AcquireTableLock { tid, table } => {
                enc.put_u8(7);
                enc.put_u64(tid.0);
                enc.put_str(table);
            }
            Request::ReleaseTableLock { tid, table } => {
                enc.put_u8(8);
                enc.put_u64(tid.0);
                enc.put_str(table);
            }
            Request::QueryTxnState { tid } => {
                enc.put_u8(9);
                enc.put_u64(tid.0);
            }
            Request::Ping => enc.put_u8(10),
            Request::GetTime => enc.put_u8(11),
            Request::RecComingOnline { site, table } => {
                enc.put_u8(12);
                enc.put_u16(site.0);
                enc.put_str(table);
            }
            Request::SegmentBounds { table } => {
                enc.put_u8(13);
                enc.put_str(table);
            }
            Request::ScanRange {
                scan,
                ins_lo,
                ins_hi,
            } => {
                enc.put_u8(14);
                scan.encode(enc);
                enc.put_u64(ins_lo.0);
                enc.put_u64(ins_hi.0);
            }
            Request::PrepareBatch {
                epoch,
                txns,
                time_bound,
            } => {
                enc.put_u8(15);
                enc.put_u64(*epoch);
                enc.put_u32(txns.len() as u32);
                for (tid, workers) in txns {
                    enc.put_u64(tid.0);
                    enc.put_u32(workers.len() as u32);
                    for w in workers {
                        enc.put_u16(w.0);
                    }
                }
                enc.put_u64(time_bound.0);
            }
            Request::CommitBatch {
                epoch,
                commits,
                aborts,
            } => {
                enc.put_u8(16);
                enc.put_u64(*epoch);
                enc.put_u32(commits.len() as u32);
                for (tid, commit_time) in commits {
                    enc.put_u64(tid.0);
                    enc.put_u64(commit_time.0);
                }
                enc.put_u32(aborts.len() as u32);
                for tid in aborts {
                    enc.put_u64(tid.0);
                }
            }
            Request::JoinSite { site, addr } => {
                enc.put_u8(17);
                enc.put_u16(site.0);
                enc.put_str(addr);
            }
            Request::DecommissionSite { site } => {
                enc.put_u8(18);
                enc.put_u16(site.0);
            }
            Request::PointRead { table, key, mode } => {
                enc.put_u8(19);
                enc.put_str(table);
                enc.put_i64(*key);
                mode.encode(enc);
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> DbResult<Self> {
        Ok(match dec.get_u8()? {
            0 => Request::Begin {
                tid: TransactionId(dec.get_u64()?),
            },
            1 => Request::Update {
                tid: TransactionId(dec.get_u64()?),
                req: UpdateRequest::decode(dec)?,
            },
            2 => {
                let tid = TransactionId(dec.get_u64()?);
                let n = dec.get_u32()? as usize;
                let n = checked_count(dec, n)?;
                let mut workers = Vec::with_capacity(n);
                for _ in 0..n {
                    workers.push(SiteId(dec.get_u16()?));
                }
                Request::Prepare {
                    tid,
                    workers,
                    time_bound: Timestamp(dec.get_u64()?),
                }
            }
            3 => Request::PrepareToCommit {
                tid: TransactionId(dec.get_u64()?),
                commit_time: Timestamp(dec.get_u64()?),
            },
            4 => Request::Commit {
                tid: TransactionId(dec.get_u64()?),
                commit_time: Timestamp(dec.get_u64()?),
            },
            5 => Request::Abort {
                tid: TransactionId(dec.get_u64()?),
            },
            6 => Request::Scan(RemoteScan::decode(dec)?),
            7 => Request::AcquireTableLock {
                tid: TransactionId(dec.get_u64()?),
                table: dec.get_str()?,
            },
            8 => Request::ReleaseTableLock {
                tid: TransactionId(dec.get_u64()?),
                table: dec.get_str()?,
            },
            9 => Request::QueryTxnState {
                tid: TransactionId(dec.get_u64()?),
            },
            10 => Request::Ping,
            11 => Request::GetTime,
            12 => Request::RecComingOnline {
                site: SiteId(dec.get_u16()?),
                table: dec.get_str()?,
            },
            13 => Request::SegmentBounds {
                table: dec.get_str()?,
            },
            14 => Request::ScanRange {
                scan: RemoteScan::decode(dec)?,
                ins_lo: Timestamp(dec.get_u64()?),
                ins_hi: Timestamp(dec.get_u64()?),
            },
            15 => {
                let epoch = dec.get_u64()?;
                let n = dec.get_u32()? as usize;
                let n = checked_count(dec, n)?;
                let mut txns = Vec::with_capacity(n);
                for _ in 0..n {
                    let tid = TransactionId(dec.get_u64()?);
                    let m = dec.get_u32()? as usize;
                    let m = checked_count(dec, m)?;
                    let mut workers = Vec::with_capacity(m);
                    for _ in 0..m {
                        workers.push(SiteId(dec.get_u16()?));
                    }
                    txns.push((tid, workers));
                }
                Request::PrepareBatch {
                    epoch,
                    txns,
                    time_bound: Timestamp(dec.get_u64()?),
                }
            }
            16 => {
                let epoch = dec.get_u64()?;
                let n = dec.get_u32()? as usize;
                let n = checked_count(dec, n)?;
                let mut commits = Vec::with_capacity(n);
                for _ in 0..n {
                    commits.push((TransactionId(dec.get_u64()?), Timestamp(dec.get_u64()?)));
                }
                let m = dec.get_u32()? as usize;
                let m = checked_count(dec, m)?;
                let mut aborts = Vec::with_capacity(m);
                for _ in 0..m {
                    aborts.push(TransactionId(dec.get_u64()?));
                }
                Request::CommitBatch {
                    epoch,
                    commits,
                    aborts,
                }
            }
            17 => Request::JoinSite {
                site: SiteId(dec.get_u16()?),
                addr: dec.get_str()?,
            },
            18 => Request::DecommissionSite {
                site: SiteId(dec.get_u16()?),
            },
            19 => Request::PointRead {
                table: dec.get_str()?,
                key: dec.get_i64()?,
                mode: WireReadMode::decode(dec)?,
            },
            t => return Err(DbError::corrupt(format!("bad request tag {t}"))),
        })
    }
}

impl Wire for Response {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            Response::Ok => enc.put_u8(0),
            Response::Ack => enc.put_u8(1),
            Response::Vote { yes } => {
                enc.put_u8(2);
                enc.put_bool(*yes);
            }
            Response::Time { now } => {
                enc.put_u8(3);
                enc.put_u64(now.0);
            }
            Response::TxnState { state } => {
                enc.put_u8(4);
                match state {
                    WireTxnState::Unknown => enc.put_u8(0),
                    WireTxnState::Pending => enc.put_u8(1),
                    WireTxnState::PreparedVotedYes => enc.put_u8(2),
                    WireTxnState::PreparedVotedNo => enc.put_u8(3),
                    WireTxnState::PreparedToCommit(t) => {
                        enc.put_u8(4);
                        enc.put_u64(t.0);
                    }
                    WireTxnState::Committed(t) => {
                        enc.put_u8(5);
                        enc.put_u64(t.0);
                    }
                    WireTxnState::Aborted => enc.put_u8(6),
                }
            }
            Response::Tuples { batch, done } => {
                enc.put_u8(5);
                enc.put_bool(*done);
                enc.put_u32(batch.len() as u32);
                for t in batch {
                    t.write_wire(enc);
                }
            }
            Response::AllDone => enc.put_u8(6),
            Response::Err { msg } => {
                enc.put_u8(7);
                enc.put_str(msg);
            }
            Response::SegmentBounds { segments } => {
                enc.put_u8(8);
                enc.put_u32(segments.len() as u32);
                for (tmin_ins, tmax_ins, tmax_del, pages) in segments {
                    enc.put_u64(tmin_ins.0);
                    enc.put_u64(tmax_ins.0);
                    enc.put_u64(tmax_del.0);
                    enc.put_u64(*pages);
                }
            }
            Response::VoteBatch { votes } => {
                enc.put_u8(9);
                enc.put_u32(votes.len() as u32);
                for (tid, yes) in votes {
                    enc.put_u64(tid.0);
                    enc.put_bool(*yes);
                }
            }
            Response::AckBatch { acked } => {
                enc.put_u8(10);
                enc.put_u32(acked.len() as u32);
                for tid in acked {
                    enc.put_u64(tid.0);
                }
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> DbResult<Self> {
        Ok(match dec.get_u8()? {
            0 => Response::Ok,
            1 => Response::Ack,
            2 => Response::Vote {
                yes: dec.get_bool()?,
            },
            3 => Response::Time {
                now: Timestamp(dec.get_u64()?),
            },
            4 => Response::TxnState {
                state: match dec.get_u8()? {
                    0 => WireTxnState::Unknown,
                    1 => WireTxnState::Pending,
                    2 => WireTxnState::PreparedVotedYes,
                    3 => WireTxnState::PreparedVotedNo,
                    4 => WireTxnState::PreparedToCommit(Timestamp(dec.get_u64()?)),
                    5 => WireTxnState::Committed(Timestamp(dec.get_u64()?)),
                    6 => WireTxnState::Aborted,
                    t => return Err(DbError::corrupt(format!("bad txn state tag {t}"))),
                },
            },
            5 => {
                let done = dec.get_bool()?;
                let n = dec.get_u32()? as usize;
                let n = checked_count(dec, n)?;
                let mut batch = Vec::with_capacity(n);
                for _ in 0..n {
                    batch.push(Tuple::read_wire(dec)?);
                }
                Response::Tuples { batch, done }
            }
            6 => Response::AllDone,
            7 => Response::Err {
                msg: dec.get_str()?,
            },
            8 => {
                let n = dec.get_u32()? as usize;
                let n = checked_count(dec, n)?;
                let mut segments = Vec::with_capacity(n);
                for _ in 0..n {
                    segments.push((
                        Timestamp(dec.get_u64()?),
                        Timestamp(dec.get_u64()?),
                        Timestamp(dec.get_u64()?),
                        dec.get_u64()?,
                    ));
                }
                Response::SegmentBounds { segments }
            }
            9 => {
                let n = dec.get_u32()? as usize;
                let n = checked_count(dec, n)?;
                let mut votes = Vec::with_capacity(n);
                for _ in 0..n {
                    votes.push((TransactionId(dec.get_u64()?), dec.get_bool()?));
                }
                Response::VoteBatch { votes }
            }
            10 => {
                let n = dec.get_u32()? as usize;
                let n = checked_count(dec, n)?;
                let mut acked = Vec::with_capacity(n);
                for _ in 0..n {
                    acked.push(TransactionId(dec.get_u64()?));
                }
                Response::AckBatch { acked }
            }
            t => return Err(DbError::corrupt(format!("bad response tag {t}"))),
        })
    }
}

/// Incrementally built, pre-framed `Response::Tuples` message.
///
/// The zero-copy scan service transcodes admitted rows from page bytes
/// straight into this buffer; `finish` patches the frame length, done flag,
/// and row count once the batch is complete. The output is byte-identical
/// to `Response::Tuples { batch, done }.to_framed_vec()` (asserted by the
/// wire tests), so the receiving side needs no changes.
pub struct TuplesFrameBuilder {
    enc: Encoder,
    rows: u32,
}

// Byte offsets within the frame: [0..4] length prefix, [4] response tag,
// [5] done flag, [6..10] row count, [10..] wire tuples.
const TUPLES_DONE_OFFSET: usize = 5;
const TUPLES_COUNT_OFFSET: usize = 6;

impl TuplesFrameBuilder {
    pub fn new() -> Self {
        let mut enc = Encoder::new();
        enc.put_u32(0); // frame length, patched in finish()
        enc.put_u8(5); // Response::Tuples tag
        enc.put_bool(false); // done flag, patched in finish()
        enc.put_u32(0); // row count, patched in finish()
        TuplesFrameBuilder { enc, rows: 0 }
    }

    /// The underlying encoder, positioned after the header: append one wire
    /// tuple per row, then call [`note_row`](Self::note_row).
    pub fn encoder(&mut self) -> &mut Encoder {
        &mut self.enc
    }

    pub fn note_row(&mut self) {
        self.rows += 1;
    }

    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Finalizes into a pre-framed buffer ready for `send_framed`.
    pub fn finish(mut self, done: bool) -> Vec<u8> {
        let len = (self.enc.len() - 4) as u32;
        self.enc.patch_u32(0, len);
        self.enc.patch_u32(TUPLES_COUNT_OFFSET, self.rows);
        let mut bytes = self.enc.into_bytes();
        bytes[TUPLES_DONE_OFFSET] = done as u8;
        bytes
    }
}

impl Default for TuplesFrameBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_req(r: Request) {
        let bytes = r.to_vec();
        assert_eq!(Request::from_slice(&bytes).unwrap(), r);
    }

    fn round_trip_resp(r: Response) {
        let bytes = r.to_vec();
        assert_eq!(Response::from_slice(&bytes).unwrap(), r);
    }

    #[test]
    fn tuples_frame_builder_matches_materialized_encoding() {
        let batch = vec![
            Tuple::new(vec![
                Value::Time(Timestamp(3)),
                Value::Time(Timestamp::ZERO),
                Value::Int64(7),
                Value::Int32(-2),
                Value::Str("hi".into()),
            ]),
            Tuple::new(vec![Value::Int64(1), Value::Time(Timestamp(9))]),
        ];
        for done in [false, true] {
            let mut b = TuplesFrameBuilder::new();
            for t in &batch {
                t.write_wire(b.encoder());
                b.note_row();
            }
            let built = b.finish(done);
            let reference = Response::Tuples {
                batch: batch.clone(),
                done,
            }
            .to_framed_vec();
            assert_eq!(built, reference);
        }
        // Empty final frame (every stream ends with one).
        assert_eq!(
            TuplesFrameBuilder::new().finish(true),
            Response::Tuples {
                batch: vec![],
                done: true
            }
            .to_framed_vec()
        );
    }

    #[test]
    fn requests_round_trip() {
        let tid = TransactionId::from_parts(SiteId(1), 7);
        round_trip_req(Request::Begin { tid });
        round_trip_req(Request::Update {
            tid,
            req: UpdateRequest::Insert {
                table: "sales".into(),
                values: vec![Value::Int64(1), Value::Int32(2), Value::Str("x".into())],
            },
        });
        round_trip_req(Request::Update {
            tid,
            req: UpdateRequest::UpdateByKey {
                table: "sales".into(),
                key: 42,
                set: vec![(1, Value::Int32(9))],
            },
        });
        round_trip_req(Request::Update {
            tid,
            req: UpdateRequest::DeleteWhere {
                table: "sales".into(),
                pred: Expr::col(2).eq(Expr::lit(5i64)),
            },
        });
        round_trip_req(Request::Prepare {
            tid,
            workers: vec![SiteId(1), SiteId(2), SiteId(3)],
            time_bound: Timestamp(99),
        });
        round_trip_req(Request::PrepareToCommit {
            tid,
            commit_time: Timestamp(100),
        });
        round_trip_req(Request::Commit {
            tid,
            commit_time: Timestamp(100),
        });
        round_trip_req(Request::Abort { tid });
        round_trip_req(Request::AcquireTableLock {
            tid,
            table: "sales".into(),
        });
        round_trip_req(Request::QueryTxnState { tid });
        round_trip_req(Request::Ping);
        round_trip_req(Request::GetTime);
        round_trip_req(Request::RecComingOnline {
            site: SiteId(3),
            table: "sales".into(),
        });
        round_trip_req(Request::SegmentBounds {
            table: "sales".into(),
        });
        let tid2 = TransactionId::from_parts(SiteId(1), 8);
        round_trip_req(Request::PrepareBatch {
            epoch: 3,
            txns: vec![(tid, vec![SiteId(1), SiteId(2)]), (tid2, vec![SiteId(2)])],
            time_bound: Timestamp(99),
        });
        round_trip_req(Request::PrepareBatch {
            epoch: 0,
            txns: vec![],
            time_bound: Timestamp::ZERO,
        });
        round_trip_req(Request::CommitBatch {
            epoch: 3,
            commits: vec![(tid, Timestamp(100)), (tid2, Timestamp(101))],
            aborts: vec![TransactionId::from_parts(SiteId(1), 9)],
        });
        round_trip_req(Request::CommitBatch {
            epoch: 4,
            commits: vec![],
            aborts: vec![],
        });
        round_trip_req(Request::JoinSite {
            site: SiteId(7),
            addr: "127.0.0.1:4077".into(),
        });
        round_trip_req(Request::DecommissionSite { site: SiteId(7) });
        round_trip_req(Request::PointRead {
            table: "sales".into(),
            key: -42,
            mode: WireReadMode::Historical(Timestamp(10)),
        });
        round_trip_req(Request::PointRead {
            table: "sales".into(),
            key: 7,
            mode: WireReadMode::Current(tid),
        });
    }

    #[test]
    fn scans_round_trip() {
        let mut scan = RemoteScan::new("t", WireReadMode::SeeDeletedHistorical(Timestamp(10)));
        scan.predicate = Some(Expr::col(2).lt(Expr::lit(5000i64)));
        scan.ins_after = Some(Timestamp(4));
        scan.ins_at_or_before = Some(Timestamp(10));
        scan.del_after = Some(Timestamp(4));
        scan.ids_and_deletions_only = true;
        round_trip_req(Request::Scan(scan.clone()));
        round_trip_req(Request::ScanRange {
            scan,
            ins_lo: Timestamp(4),
            ins_hi: Timestamp(10),
        });
    }

    #[test]
    fn responses_round_trip() {
        round_trip_resp(Response::Ok);
        round_trip_resp(Response::Vote { yes: false });
        round_trip_resp(Response::Time {
            now: Timestamp(123),
        });
        round_trip_resp(Response::TxnState {
            state: WireTxnState::PreparedToCommit(Timestamp(9)),
        });
        round_trip_resp(Response::TxnState {
            state: WireTxnState::Committed(Timestamp(11)),
        });
        round_trip_resp(Response::Tuples {
            batch: vec![Tuple::new(vec![Value::Int64(1), Value::Time(Timestamp(2))])],
            done: true,
        });
        round_trip_resp(Response::AllDone);
        round_trip_resp(Response::Err { msg: "boom".into() });
        round_trip_resp(Response::SegmentBounds { segments: vec![] });
        round_trip_resp(Response::SegmentBounds {
            segments: vec![
                (Timestamp(1), Timestamp(5), Timestamp(3), 16),
                (Timestamp(6), Timestamp(9), Timestamp(0), 4),
            ],
        });
        let tid = TransactionId::from_parts(SiteId(1), 7);
        let tid2 = TransactionId::from_parts(SiteId(1), 8);
        round_trip_resp(Response::VoteBatch {
            votes: vec![(tid, true), (tid2, false)],
        });
        round_trip_resp(Response::VoteBatch { votes: vec![] });
        round_trip_resp(Response::AckBatch {
            acked: vec![tid, tid2],
        });
        round_trip_resp(Response::AckBatch { acked: vec![] });
    }
}
