//! Data placement and K-safety (thesis §3.2, §5.1).
//!
//! Each logical table has K+1 *copies*; a copy is either one full replica on
//! a site or a set of horizontal partitions spread over sites whose
//! predicates are mutually exclusive and collectively exhaustive. Copies
//! need not be stored identically — this catalog only records *which sites
//! logically hold which rows*, which is exactly the information the thesis
//! assumes the catalog stores for computing recovery objects and recovery
//! predicates (§5.1).

use harbor_common::{DbError, DbResult, SiteId};
use harbor_exec::Expr;
use parking_lot::RwLock;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::Arc;

/// One piece of one copy: a site plus the partition predicate it holds
/// (`None` = the whole table). Predicates are over the stored tuple
/// (version columns at indices 0/1).
#[derive(Clone, Debug)]
pub struct Part {
    pub site: SiteId,
    pub predicate: Option<Expr>,
}

impl Part {
    pub fn full(site: SiteId) -> Self {
        Part {
            site,
            predicate: None,
        }
    }

    pub fn partition(site: SiteId, predicate: Expr) -> Self {
        Part {
            site,
            predicate: Some(predicate),
        }
    }
}

/// One logical copy of a table.
#[derive(Clone, Debug)]
pub struct Copy {
    pub parts: Vec<Part>,
}

/// Placement of one logical table.
#[derive(Clone, Debug)]
pub struct TablePlacement {
    pub name: String,
    pub copies: Vec<Copy>,
}

/// A recovery object (§5.1): a buddy site, the object to query there, and
/// the recovery predicate restricting it to the failed object's rows.
#[derive(Clone, Debug)]
pub struct RecoveryObject {
    pub buddy: SiteId,
    pub table: String,
    /// Conjunction of the failed part's predicate and the buddy part's
    /// predicate (`None` = everything).
    pub predicate: Option<Expr>,
    /// Other live sites that can answer the same recovery queries (full
    /// copies on sites other than `buddy`). A segment-parallel Phase 2 fans
    /// ranges across `buddy` plus these; they also serve as fail-over
    /// targets if `buddy` dies mid-recovery.
    pub alternates: Vec<SiteId>,
}

/// Cluster-wide placement catalog plus the address book.
///
/// The catalog is *versioned and mutable*: membership operations (site
/// join, decommission, re-replication) edit it at runtime and bump
/// [`version`](Self::version), so planners can tell a stale snapshot from
/// the cluster-birth layout. Copies being bootstrapped onto a site are
/// tracked in `joining` until their Phase-3 handshake completes; they are
/// routable (they must absorb forwarded updates) but are never offered as
/// recovery buddies.
#[derive(Clone, Debug, Default)]
pub struct Placement {
    tables: HashMap<String, TablePlacement>,
    addresses: HashMap<SiteId, String>,
    coordinator_addr: Option<String>,
    /// `(table, site)` copies allocated but not yet caught up: their data
    /// is incomplete until recovery Phase 3 announces them online.
    joining: BTreeSet<(String, SiteId)>,
    /// Bumped on every mutation.
    version: u64,
}

impl Placement {
    pub fn new() -> Self {
        Placement::default()
    }

    /// The catalog mutation counter: distinguishes a stale snapshot from
    /// the live membership.
    pub fn version(&self) -> u64 {
        self.version
    }

    fn bump(&mut self) {
        self.version += 1;
    }

    pub fn add_table(&mut self, name: &str, copies: Vec<Copy>) {
        self.tables.insert(
            name.to_string(),
            TablePlacement {
                name: name.to_string(),
                copies,
            },
        );
        self.bump();
    }

    /// Convenience: a table fully replicated on each given site (the
    /// thesis evaluation's configuration).
    pub fn add_replicated_table(&mut self, name: &str, sites: &[SiteId]) {
        let copies = sites
            .iter()
            .map(|s| Copy {
                parts: vec![Part::full(*s)],
            })
            .collect();
        self.add_table(name, copies);
    }

    pub fn set_address(&mut self, site: SiteId, addr: &str) {
        self.addresses.insert(site, addr.to_string());
        self.bump();
    }

    pub fn address(&self, site: SiteId) -> DbResult<&str> {
        self.addresses
            .get(&site)
            .map(|s| s.as_str())
            .ok_or_else(|| DbError::internal(format!("no address for {site}")))
    }

    /// `true` while `site` is in the address book — i.e. a cluster member
    /// (possibly crashed, possibly still joining), as opposed to never
    /// added or already decommissioned.
    pub fn is_member(&self, site: SiteId) -> bool {
        self.addresses.contains_key(&site)
    }

    /// Every member site, sorted.
    pub fn member_sites(&self) -> Vec<SiteId> {
        let mut v: Vec<SiteId> = self.addresses.keys().copied().collect();
        v.sort();
        v
    }

    /// Allocates a brand-new full copy of `table` on `site`, marked
    /// join-pending: it routes updates but serves as no one's buddy until
    /// [`finish_copy_join`](Self::finish_copy_join).
    pub fn add_full_copy(&mut self, table: &str, site: SiteId) -> DbResult<()> {
        let tp = self
            .tables
            .get_mut(table)
            .ok_or_else(|| DbError::Schema(format!("unplaced table {table:?}")))?;
        if tp
            .copies
            .iter()
            .flat_map(|c| c.parts.iter())
            .any(|p| p.site == site)
        {
            return Err(DbError::internal(format!(
                "{site} already holds a part of {table}"
            )));
        }
        tp.copies.push(Copy {
            parts: vec![Part::full(site)],
        });
        self.joining.insert((table.to_string(), site));
        self.bump();
        Ok(())
    }

    /// Marks the copy of `table` on `site` fully caught up (Phase-3
    /// handshake complete): it is now a valid recovery buddy.
    pub fn finish_copy_join(&mut self, table: &str, site: SiteId) {
        if self.joining.remove(&(table.to_string(), site)) {
            self.bump();
        }
    }

    /// Rolls back an *aborted* bootstrap: the still-joining copy of `table`
    /// on `site` leaves the catalog (its data is incomplete and never went
    /// live). No-op if the pair is not joining.
    pub fn abort_copy_join(&mut self, table: &str, site: SiteId) {
        if !self.joining.remove(&(table.to_string(), site)) {
            return;
        }
        if let Some(tp) = self.tables.get_mut(table) {
            tp.copies
                .retain(|c| !c.parts.iter().all(|p| p.site == site));
        }
        self.bump();
    }

    pub fn is_copy_joining(&self, table: &str, site: SiteId) -> bool {
        self.joining.contains(&(table.to_string(), site))
    }

    /// All `(table, site)` copies still bootstrapping, sorted.
    pub fn joining_copies(&self) -> Vec<(String, SiteId)> {
        self.joining.iter().cloned().collect()
    }

    /// Removes `site` from the catalog: drops every copy stored wholly on
    /// it and erases its address. Refuses if a table would lose its last
    /// copy, or if `site` holds a *piece* of a multi-site partitioned copy
    /// (dropping one partition would leave the copy non-exhaustive; such
    /// parts must be re-homed with data movement first). Returns the
    /// affected table names.
    pub fn remove_site(&mut self, site: SiteId) -> DbResult<Vec<String>> {
        if !self.addresses.contains_key(&site) {
            return Err(DbError::internal(format!("{site} is not a member")));
        }
        let mut affected = Vec::new();
        for tp in self.tables.values() {
            let whole: usize = tp
                .copies
                .iter()
                .filter(|c| c.parts.iter().all(|p| p.site == site))
                .count();
            let partial = tp
                .copies
                .iter()
                .any(|c| c.parts.len() > 1 && c.parts.iter().any(|p| p.site == site));
            if partial {
                return Err(DbError::internal(format!(
                    "{site} holds a partition of {:?}; re-home it before decommission",
                    tp.name
                )));
            }
            if whole > 0 {
                if tp.copies.len() - whole == 0 {
                    return Err(DbError::Unrecoverable(format!(
                        "decommissioning {site} would drop the last copy of {:?}",
                        tp.name
                    )));
                }
                affected.push(tp.name.clone());
            }
        }
        for tp in self.tables.values_mut() {
            tp.copies
                .retain(|c| !c.parts.iter().all(|p| p.site == site));
        }
        self.addresses.remove(&site);
        self.joining.retain(|(_, s)| *s != site);
        self.bump();
        affected.sort();
        Ok(affected)
    }

    pub fn set_coordinator_addr(&mut self, addr: &str) {
        self.coordinator_addr = Some(addr.to_string());
        self.bump();
    }

    pub fn coordinator_addr(&self) -> DbResult<&str> {
        self.coordinator_addr
            .as_deref()
            .ok_or_else(|| DbError::internal("no coordinator address"))
    }

    pub fn table(&self, name: &str) -> DbResult<&TablePlacement> {
        self.tables
            .get(name)
            .ok_or_else(|| DbError::Schema(format!("unplaced table {name:?}")))
    }

    pub fn table_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.tables.keys().cloned().collect();
        v.sort();
        v
    }

    /// Sites that must receive an inserted row: those with a part whose
    /// predicate admits the stored form of the tuple. Full copies admit
    /// everything; horizontal partitions admit their slice (§3.2).
    pub fn sites_for_insert(
        &self,
        table: &str,
        user_values: &[harbor_common::Value],
    ) -> DbResult<Vec<SiteId>> {
        use harbor_common::{Timestamp, Tuple};
        let tp = self.table(table)?;
        // Predicates are over the stored tuple; timestamps are not known
        // yet, so evaluate with placeholders (partition predicates only
        // reference user columns).
        let stored = Tuple::versioned(Timestamp::ZERO, Timestamp::ZERO, user_values.to_vec());
        let mut out = Vec::new();
        for copy in &tp.copies {
            for part in &copy.parts {
                let admit = match &part.predicate {
                    None => true,
                    Some(p) => p.eval_bool(&stored)?,
                };
                if admit && !out.contains(&part.site) {
                    out.push(part.site);
                }
            }
        }
        out.sort();
        Ok(out)
    }

    /// All sites holding any part of `table`.
    pub fn sites_for(&self, table: &str) -> DbResult<Vec<SiteId>> {
        let tp = self.table(table)?;
        let mut out: Vec<SiteId> = tp
            .copies
            .iter()
            .flat_map(|c| c.parts.iter().map(|p| p.site))
            .collect();
        out.sort();
        out.dedup();
        Ok(out)
    }

    /// All tables with a part on `site`, with the part predicates.
    pub fn objects_on(&self, site: SiteId) -> Vec<(String, Option<Expr>)> {
        let mut out = Vec::new();
        for tp in self.tables.values() {
            for c in &tp.copies {
                for p in &c.parts {
                    if p.site == site {
                        out.push((tp.name.clone(), p.predicate.clone()));
                    }
                }
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// The replication factor minus one: how many site failures each copy
    /// set can absorb (K of K-safety), assuming copies on distinct sites.
    pub fn k_for(&self, table: &str) -> DbResult<usize> {
        Ok(self.table(table)?.copies.len().saturating_sub(1))
    }

    /// Computes the recovery objects and predicates for the part of
    /// `table` stored on the failed site (§5.1): picks a copy whose parts
    /// all live on online sites, and intersects each part's predicate with
    /// the failed part's predicate. The resulting objects are mutually
    /// exclusive and collectively cover the failed object.
    pub fn recovery_plan(
        &self,
        failed: SiteId,
        table: &str,
        down: &HashSet<SiteId>,
    ) -> DbResult<Vec<RecoveryObject>> {
        let tp = self.table(table)?;
        // The failed part's predicate (first part on `failed` found).
        let failed_pred = tp
            .copies
            .iter()
            .flat_map(|c| c.parts.iter())
            .find(|p| p.site == failed)
            .map(|p| p.predicate.clone())
            .ok_or_else(|| DbError::internal(format!("{failed} holds no part of {table}")))?;
        // A buddy must be *current live membership* at plan time — not
        // merely "not in the caller's down set". A decommissioned site
        // lingers in stale part lists only until the catalog mutation
        // lands, and a joining site's copy is still incomplete; naming
        // either as buddy would recover from a vanished or partial
        // replica.
        let buddy_ok = |p: &Part| {
            p.site != failed
                && !down.contains(&p.site)
                && self.addresses.contains_key(&p.site)
                && !self.joining.contains(&(table.to_string(), p.site))
        };
        // First copy that avoids the failed site and every down site.
        for (chosen, copy) in tp.copies.iter().enumerate() {
            if !copy.parts.iter().all(&buddy_ok) {
                continue;
            }
            // Other live full copies can answer the same ranged recovery
            // queries (their single part holds every row, so any recovery
            // predicate evaluates there); partitioned copies cannot serve a
            // whole recovery object and are not offered as alternates.
            let alternates: Vec<SiteId> = tp
                .copies
                .iter()
                .enumerate()
                .filter(|(i, c)| {
                    *i != chosen
                        && c.parts.len() == 1
                        && c.parts[0].predicate.is_none()
                        && buddy_ok(&c.parts[0])
                })
                .map(|(_, c)| c.parts[0].site)
                .collect();
            let objects = copy
                .parts
                .iter()
                .map(|p| RecoveryObject {
                    buddy: p.site,
                    table: table.to_string(),
                    predicate: match (&failed_pred, &p.predicate) {
                        (None, None) => None,
                        (Some(a), None) => Some(a.clone()),
                        (None, Some(b)) => Some(b.clone()),
                        (Some(a), Some(b)) => Some(a.clone().and(b.clone())),
                    },
                    alternates: alternates
                        .iter()
                        .copied()
                        .filter(|s| *s != p.site)
                        .collect(),
                })
                .collect();
            return Ok(objects);
        }
        Err(DbError::Unrecoverable(format!(
            "no live copy of {table} covers the failed part on {failed} \
             (more than K failures?)"
        )))
    }

    /// Test-only: poke the address book directly to simulate a stale
    /// catalog (copy entries outliving membership).
    #[cfg(test)]
    pub(crate) fn mutate_addresses_for_test(
        &mut self,
        f: impl FnOnce(&mut HashMap<SiteId, String>),
    ) {
        f(&mut self.addresses);
    }
}

/// One shared, runtime-mutable placement catalog.
///
/// The coordinator and the cluster facade hold clones of the same handle,
/// so a membership mutation (join, decommission, re-replication) is
/// immediately visible to transaction routing, read fail-over, and
/// recovery planning. Readers take short-lived snapshots or cloned-out
/// values — no guard ever spans an RPC (the lock-across-blocking rule).
#[derive(Clone, Default)]
pub struct SharedPlacement {
    inner: Arc<RwLock<Placement>>,
}

impl From<Placement> for SharedPlacement {
    fn from(p: Placement) -> Self {
        SharedPlacement {
            inner: Arc::new(RwLock::new(p)),
        }
    }
}

impl SharedPlacement {
    pub fn new(p: Placement) -> Self {
        p.into()
    }

    /// A point-in-time copy of the whole catalog (what a recovery run
    /// plans against).
    pub fn snapshot(&self) -> Placement {
        self.inner.read().clone()
    }

    pub fn version(&self) -> u64 {
        self.inner.read().version()
    }

    /// Runs `f` under the read lock. `f` must not block (no RPCs, no
    /// sleeps); clone out whatever outlives the call.
    pub fn read<R>(&self, f: impl FnOnce(&Placement) -> R) -> R {
        f(&self.inner.read())
    }

    /// Runs `f` under the write lock; same no-blocking contract.
    pub fn mutate<R>(&self, f: impl FnOnce(&mut Placement) -> R) -> R {
        f(&mut self.inner.write())
    }

    pub fn address(&self, site: SiteId) -> DbResult<String> {
        self.read(|p| p.address(site).map(str::to_string))
    }

    pub fn coordinator_addr(&self) -> DbResult<String> {
        self.read(|p| p.coordinator_addr().map(str::to_string))
    }

    pub fn sites_for(&self, table: &str) -> DbResult<Vec<SiteId>> {
        self.read(|p| p.sites_for(table))
    }

    pub fn sites_for_insert(
        &self,
        table: &str,
        user_values: &[harbor_common::Value],
    ) -> DbResult<Vec<SiteId>> {
        self.read(|p| p.sites_for_insert(table, user_values))
    }

    pub fn table_names(&self) -> Vec<String> {
        self.read(|p| p.table_names())
    }

    pub fn objects_on(&self, site: SiteId) -> Vec<(String, Option<Expr>)> {
        self.read(|p| p.objects_on(site))
    }

    pub fn k_for(&self, table: &str) -> DbResult<usize> {
        self.read(|p| p.k_for(table))
    }

    pub fn is_member(&self, site: SiteId) -> bool {
        self.read(|p| p.is_member(site))
    }

    pub fn member_sites(&self) -> Vec<SiteId> {
        self.read(|p| p.member_sites())
    }

    pub fn joining_copies(&self) -> Vec<(String, SiteId)> {
        self.read(|p| p.joining_copies())
    }

    pub fn recovery_plan(
        &self,
        failed: SiteId,
        table: &str,
        down: &HashSet<SiteId>,
    ) -> DbResult<Vec<RecoveryObject>> {
        self.read(|p| p.recovery_plan(failed, table, down))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(n: u16) -> SiteId {
        SiteId(n)
    }

    /// Registers addresses for sites 1..=n (recovery planning filters
    /// buddies against the address book, i.e. live membership).
    fn with_members(p: &mut Placement, n: u16) {
        for i in 1..=n {
            p.set_address(s(i), &format!("site-{i}"));
        }
    }

    #[test]
    fn replicated_table_recovery_uses_one_buddy() {
        let mut p = Placement::new();
        with_members(&mut p, 3);
        p.add_replicated_table("sales", &[s(1), s(2), s(3)]);
        assert_eq!(p.k_for("sales").unwrap(), 2);
        let plan = p.recovery_plan(s(1), "sales", &HashSet::new()).unwrap();
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].buddy, s(2));
        assert!(plan[0].predicate.is_none());
        // With site 2 also down, site 3 serves.
        let down: HashSet<SiteId> = [s(2)].into_iter().collect();
        let plan = p.recovery_plan(s(1), "sales", &down).unwrap();
        assert_eq!(plan[0].buddy, s(3));
        // All copies down: unrecoverable.
        let down: HashSet<SiteId> = [s(2), s(3)].into_iter().collect();
        assert!(matches!(
            p.recovery_plan(s(1), "sales", &down),
            Err(DbError::Unrecoverable(_))
        ));
    }

    #[test]
    fn partitioned_copy_yields_multiple_recovery_objects() {
        // The EMP example of §5.1: EMP1 full on site 1; EMP2 split by
        // employee_id over sites 2 and 3. Site 1 fails; its recovery
        // predicate is the whole table here (it held a full copy).
        let mut p = Placement::new();
        with_members(&mut p, 3);
        let id_col = 2; // first user field
        p.add_table(
            "employees",
            vec![
                Copy {
                    parts: vec![Part::full(s(1))],
                },
                Copy {
                    parts: vec![
                        Part::partition(s(2), Expr::col(id_col).lt(Expr::lit(1000i64))),
                        Part::partition(s(3), Expr::col(id_col).ge(Expr::lit(1000i64))),
                    ],
                },
            ],
        );
        let plan = p.recovery_plan(s(1), "employees", &HashSet::new()).unwrap();
        assert_eq!(plan.len(), 2);
        assert_eq!(plan[0].buddy, s(2));
        assert!(plan[0].predicate.is_some());
        assert_eq!(plan[1].buddy, s(3));
        // And the reverse: recover the partition on site 2 from the full
        // copy on site 1, with the partition predicate as recovery pred.
        let plan = p.recovery_plan(s(2), "employees", &HashSet::new()).unwrap();
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].buddy, s(1));
        assert!(plan[0].predicate.is_some());
    }

    #[test]
    fn recovery_plan_offers_live_full_copies_as_alternates() {
        let mut p = Placement::new();
        with_members(&mut p, 4);
        p.add_replicated_table("sales", &[s(1), s(2), s(3), s(4)]);
        let plan = p.recovery_plan(s(1), "sales", &HashSet::new()).unwrap();
        assert_eq!(plan[0].buddy, s(2));
        assert_eq!(plan[0].alternates, vec![s(3), s(4)]);
        // Down sites are not offered.
        let down: HashSet<SiteId> = [s(3)].into_iter().collect();
        let plan = p.recovery_plan(s(1), "sales", &down).unwrap();
        assert_eq!(plan[0].buddy, s(2));
        assert_eq!(plan[0].alternates, vec![s(4)]);
        // A partitioned copy is never an alternate: it cannot serve a whole
        // recovery object by itself.
        let id_col = 2;
        let mut p = Placement::new();
        with_members(&mut p, 4);
        p.add_table(
            "emp",
            vec![
                Copy {
                    parts: vec![Part::full(s(1))],
                },
                Copy {
                    parts: vec![Part::full(s(2))],
                },
                Copy {
                    parts: vec![
                        Part::partition(s(3), Expr::col(id_col).lt(Expr::lit(10i64))),
                        Part::partition(s(4), Expr::col(id_col).ge(Expr::lit(10i64))),
                    ],
                },
            ],
        );
        let plan = p.recovery_plan(s(1), "emp", &HashSet::new()).unwrap();
        assert_eq!(plan[0].buddy, s(2));
        assert!(plan[0].alternates.is_empty());
    }

    #[test]
    fn objects_on_lists_site_contents() {
        let mut p = Placement::new();
        p.add_replicated_table("a", &[s(1), s(2)]);
        p.add_replicated_table("b", &[s(2), s(3)]);
        let on2 = p.objects_on(s(2));
        assert_eq!(on2.len(), 2);
        assert_eq!(on2[0].0, "a");
        assert_eq!(on2[1].0, "b");
        assert_eq!(p.objects_on(s(9)).len(), 0);
    }

    #[test]
    fn k_safety_example_from_section_3_2() {
        // 1-safe: R on S1,S2; R' on S3,S4. Failures of S1 and S3 together
        // are tolerated because at most one failure hits each relation.
        let mut p = Placement::new();
        with_members(&mut p, 4);
        p.add_replicated_table("r", &[s(1), s(2)]);
        p.add_replicated_table("r2", &[s(3), s(4)]);
        let down: HashSet<SiteId> = [s(3)].into_iter().collect();
        let plan = p.recovery_plan(s(1), "r", &down).unwrap();
        assert_eq!(plan[0].buddy, s(2));
        let down: HashSet<SiteId> = [s(1)].into_iter().collect();
        let plan = p.recovery_plan(s(3), "r2", &down).unwrap();
        assert_eq!(plan[0].buddy, s(4));
    }

    /// Regression for placement-plan staleness: a site that was
    /// decommissioned (gone from the address book) but still named in a
    /// stale part list must never be chosen as buddy or alternate, even
    /// when the caller's `down` set does not mention it — fail-over
    /// targets are filtered against live membership at plan time.
    #[test]
    fn recovery_plan_skips_decommissioned_sites() {
        let mut p = Placement::new();
        with_members(&mut p, 3);
        p.add_replicated_table("sales", &[s(1), s(2), s(3)]);
        // Simulate the stale-catalog hazard: site 2 leaves the address
        // book while its copy entry lingers (the window between the two
        // halves of a decommission, or a snapshot raced with one).
        p.mutate_addresses_for_test(|a| {
            a.remove(&s(2));
        });
        let plan = p.recovery_plan(s(1), "sales", &HashSet::new()).unwrap();
        assert_eq!(plan[0].buddy, s(3), "buddy must be a live member");
        assert!(
            !plan[0].alternates.contains(&s(2)),
            "decommissioned site offered as alternate"
        );
        // A clean decommission removes the copy too, and k shrinks.
        let mut p = Placement::new();
        with_members(&mut p, 3);
        p.add_replicated_table("sales", &[s(1), s(2), s(3)]);
        assert_eq!(p.k_for("sales").unwrap(), 2);
        let affected = p.remove_site(s(2)).unwrap();
        assert_eq!(affected, vec!["sales".to_string()]);
        assert_eq!(p.k_for("sales").unwrap(), 1);
        let plan = p.recovery_plan(s(1), "sales", &HashSet::new()).unwrap();
        assert_eq!(plan[0].buddy, s(3));
    }

    /// A joining site's copy is allocated (and routable) before its data
    /// is complete; recovery planning must not hand it out as a buddy
    /// until its Phase-3 handshake finishes.
    #[test]
    fn recovery_plan_skips_joining_copies() {
        let mut p = Placement::new();
        with_members(&mut p, 2);
        p.add_replicated_table("sales", &[s(1), s(2)]);
        p.set_address(s(3), "site-3");
        p.add_full_copy("sales", s(3)).unwrap();
        assert!(p.is_copy_joining("sales", s(3)));
        let down: HashSet<SiteId> = [s(2)].into_iter().collect();
        // Only the joining copy avoids failed+down: planning must fail
        // rather than bootstrap from an incomplete replica.
        assert!(matches!(
            p.recovery_plan(s(1), "sales", &down),
            Err(DbError::Unrecoverable(_))
        ));
        // The joining site itself plans against current copies only.
        let plan = p.recovery_plan(s(3), "sales", &HashSet::new()).unwrap();
        assert_eq!(plan[0].buddy, s(1));
        assert_eq!(plan[0].alternates, vec![s(2)]);
        // Once announced online it serves like any other copy.
        p.finish_copy_join("sales", s(3));
        let plan = p.recovery_plan(s(1), "sales", &down).unwrap();
        assert_eq!(plan[0].buddy, s(3));
    }

    #[test]
    fn remove_site_guards_last_copy_and_partitions() {
        let mut p = Placement::new();
        with_members(&mut p, 3);
        p.add_replicated_table("solo", &[s(1)]);
        assert!(matches!(
            p.remove_site(s(1)),
            Err(DbError::Unrecoverable(_))
        ));
        let id_col = 2;
        let mut p = Placement::new();
        with_members(&mut p, 3);
        p.add_table(
            "emp",
            vec![
                Copy {
                    parts: vec![Part::full(s(1))],
                },
                Copy {
                    parts: vec![
                        Part::partition(s(2), Expr::col(id_col).lt(Expr::lit(10i64))),
                        Part::partition(s(3), Expr::col(id_col).ge(Expr::lit(10i64))),
                    ],
                },
            ],
        );
        // Site 2 holds a piece of a multi-site copy: refuse until re-homed.
        assert!(p.remove_site(s(2)).is_err());
        // Site 1's whole copy can go (the partitioned copy remains).
        assert_eq!(p.remove_site(s(1)).unwrap(), vec!["emp".to_string()]);
        assert!(!p.is_member(s(1)));
    }

    #[test]
    fn catalog_mutations_bump_version() {
        let p = SharedPlacement::default();
        let v0 = p.version();
        p.mutate(|pl| pl.set_address(s(1), "a"));
        p.mutate(|pl| pl.add_replicated_table("t", &[s(1)]));
        assert!(p.version() > v0);
        let v1 = p.version();
        p.mutate(|pl| {
            pl.set_address(s(2), "b");
            pl.add_full_copy("t", s(2))
        })
        .unwrap();
        assert!(p.version() > v1);
        assert_eq!(p.joining_copies(), vec![("t".to_string(), s(2))]);
        let snap = p.snapshot();
        p.mutate(|pl| pl.finish_copy_join("t", s(2)));
        // The snapshot is a point in time, not a live view.
        assert!(snap.is_copy_joining("t", s(2)));
        assert!(p.joining_copies().is_empty());
        assert_eq!(p.member_sites(), vec![s(1), s(2)]);
    }
}
