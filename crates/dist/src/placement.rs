//! Data placement and K-safety (thesis §3.2, §5.1).
//!
//! Each logical table has K+1 *copies*; a copy is either one full replica on
//! a site or a set of horizontal partitions spread over sites whose
//! predicates are mutually exclusive and collectively exhaustive. Copies
//! need not be stored identically — this catalog only records *which sites
//! logically hold which rows*, which is exactly the information the thesis
//! assumes the catalog stores for computing recovery objects and recovery
//! predicates (§5.1).

use harbor_common::{DbError, DbResult, SiteId};
use harbor_exec::Expr;
use std::collections::{HashMap, HashSet};

/// One piece of one copy: a site plus the partition predicate it holds
/// (`None` = the whole table). Predicates are over the stored tuple
/// (version columns at indices 0/1).
#[derive(Clone, Debug)]
pub struct Part {
    pub site: SiteId,
    pub predicate: Option<Expr>,
}

impl Part {
    pub fn full(site: SiteId) -> Self {
        Part {
            site,
            predicate: None,
        }
    }

    pub fn partition(site: SiteId, predicate: Expr) -> Self {
        Part {
            site,
            predicate: Some(predicate),
        }
    }
}

/// One logical copy of a table.
#[derive(Clone, Debug)]
pub struct Copy {
    pub parts: Vec<Part>,
}

/// Placement of one logical table.
#[derive(Clone, Debug)]
pub struct TablePlacement {
    pub name: String,
    pub copies: Vec<Copy>,
}

/// A recovery object (§5.1): a buddy site, the object to query there, and
/// the recovery predicate restricting it to the failed object's rows.
#[derive(Clone, Debug)]
pub struct RecoveryObject {
    pub buddy: SiteId,
    pub table: String,
    /// Conjunction of the failed part's predicate and the buddy part's
    /// predicate (`None` = everything).
    pub predicate: Option<Expr>,
    /// Other live sites that can answer the same recovery queries (full
    /// copies on sites other than `buddy`). A segment-parallel Phase 2 fans
    /// ranges across `buddy` plus these; they also serve as fail-over
    /// targets if `buddy` dies mid-recovery.
    pub alternates: Vec<SiteId>,
}

/// Cluster-wide placement catalog plus the address book.
#[derive(Clone, Debug, Default)]
pub struct Placement {
    tables: HashMap<String, TablePlacement>,
    addresses: HashMap<SiteId, String>,
    coordinator_addr: Option<String>,
}

impl Placement {
    pub fn new() -> Self {
        Placement::default()
    }

    pub fn add_table(&mut self, name: &str, copies: Vec<Copy>) {
        self.tables.insert(
            name.to_string(),
            TablePlacement {
                name: name.to_string(),
                copies,
            },
        );
    }

    /// Convenience: a table fully replicated on each given site (the
    /// thesis evaluation's configuration).
    pub fn add_replicated_table(&mut self, name: &str, sites: &[SiteId]) {
        let copies = sites
            .iter()
            .map(|s| Copy {
                parts: vec![Part::full(*s)],
            })
            .collect();
        self.add_table(name, copies);
    }

    pub fn set_address(&mut self, site: SiteId, addr: &str) {
        self.addresses.insert(site, addr.to_string());
    }

    pub fn address(&self, site: SiteId) -> DbResult<&str> {
        self.addresses
            .get(&site)
            .map(|s| s.as_str())
            .ok_or_else(|| DbError::internal(format!("no address for {site}")))
    }

    pub fn set_coordinator_addr(&mut self, addr: &str) {
        self.coordinator_addr = Some(addr.to_string());
    }

    pub fn coordinator_addr(&self) -> DbResult<&str> {
        self.coordinator_addr
            .as_deref()
            .ok_or_else(|| DbError::internal("no coordinator address"))
    }

    pub fn table(&self, name: &str) -> DbResult<&TablePlacement> {
        self.tables
            .get(name)
            .ok_or_else(|| DbError::Schema(format!("unplaced table {name:?}")))
    }

    pub fn table_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.tables.keys().cloned().collect();
        v.sort();
        v
    }

    /// Sites that must receive an inserted row: those with a part whose
    /// predicate admits the stored form of the tuple. Full copies admit
    /// everything; horizontal partitions admit their slice (§3.2).
    pub fn sites_for_insert(
        &self,
        table: &str,
        user_values: &[harbor_common::Value],
    ) -> DbResult<Vec<SiteId>> {
        use harbor_common::{Timestamp, Tuple};
        let tp = self.table(table)?;
        // Predicates are over the stored tuple; timestamps are not known
        // yet, so evaluate with placeholders (partition predicates only
        // reference user columns).
        let stored = Tuple::versioned(Timestamp::ZERO, Timestamp::ZERO, user_values.to_vec());
        let mut out = Vec::new();
        for copy in &tp.copies {
            for part in &copy.parts {
                let admit = match &part.predicate {
                    None => true,
                    Some(p) => p.eval_bool(&stored)?,
                };
                if admit && !out.contains(&part.site) {
                    out.push(part.site);
                }
            }
        }
        out.sort();
        Ok(out)
    }

    /// All sites holding any part of `table`.
    pub fn sites_for(&self, table: &str) -> DbResult<Vec<SiteId>> {
        let tp = self.table(table)?;
        let mut out: Vec<SiteId> = tp
            .copies
            .iter()
            .flat_map(|c| c.parts.iter().map(|p| p.site))
            .collect();
        out.sort();
        out.dedup();
        Ok(out)
    }

    /// All tables with a part on `site`, with the part predicates.
    pub fn objects_on(&self, site: SiteId) -> Vec<(String, Option<Expr>)> {
        let mut out = Vec::new();
        for tp in self.tables.values() {
            for c in &tp.copies {
                for p in &c.parts {
                    if p.site == site {
                        out.push((tp.name.clone(), p.predicate.clone()));
                    }
                }
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// The replication factor minus one: how many site failures each copy
    /// set can absorb (K of K-safety), assuming copies on distinct sites.
    pub fn k_for(&self, table: &str) -> DbResult<usize> {
        Ok(self.table(table)?.copies.len().saturating_sub(1))
    }

    /// Computes the recovery objects and predicates for the part of
    /// `table` stored on the failed site (§5.1): picks a copy whose parts
    /// all live on online sites, and intersects each part's predicate with
    /// the failed part's predicate. The resulting objects are mutually
    /// exclusive and collectively cover the failed object.
    pub fn recovery_plan(
        &self,
        failed: SiteId,
        table: &str,
        down: &HashSet<SiteId>,
    ) -> DbResult<Vec<RecoveryObject>> {
        let tp = self.table(table)?;
        // The failed part's predicate (first part on `failed` found).
        let failed_pred = tp
            .copies
            .iter()
            .flat_map(|c| c.parts.iter())
            .find(|p| p.site == failed)
            .map(|p| p.predicate.clone())
            .ok_or_else(|| DbError::internal(format!("{failed} holds no part of {table}")))?;
        // First copy that avoids the failed site and every down site.
        for (chosen, copy) in tp.copies.iter().enumerate() {
            let usable = copy
                .parts
                .iter()
                .all(|p| p.site != failed && !down.contains(&p.site));
            if !usable {
                continue;
            }
            // Other live full copies can answer the same ranged recovery
            // queries (their single part holds every row, so any recovery
            // predicate evaluates there); partitioned copies cannot serve a
            // whole recovery object and are not offered as alternates.
            let alternates: Vec<SiteId> = tp
                .copies
                .iter()
                .enumerate()
                .filter(|(i, c)| {
                    *i != chosen
                        && c.parts.len() == 1
                        && c.parts[0].predicate.is_none()
                        && c.parts[0].site != failed
                        && !down.contains(&c.parts[0].site)
                })
                .map(|(_, c)| c.parts[0].site)
                .collect();
            let objects = copy
                .parts
                .iter()
                .map(|p| RecoveryObject {
                    buddy: p.site,
                    table: table.to_string(),
                    predicate: match (&failed_pred, &p.predicate) {
                        (None, None) => None,
                        (Some(a), None) => Some(a.clone()),
                        (None, Some(b)) => Some(b.clone()),
                        (Some(a), Some(b)) => Some(a.clone().and(b.clone())),
                    },
                    alternates: alternates
                        .iter()
                        .copied()
                        .filter(|s| *s != p.site)
                        .collect(),
                })
                .collect();
            return Ok(objects);
        }
        Err(DbError::Unrecoverable(format!(
            "no live copy of {table} covers the failed part on {failed} \
             (more than K failures?)"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(n: u16) -> SiteId {
        SiteId(n)
    }

    #[test]
    fn replicated_table_recovery_uses_one_buddy() {
        let mut p = Placement::new();
        p.add_replicated_table("sales", &[s(1), s(2), s(3)]);
        assert_eq!(p.k_for("sales").unwrap(), 2);
        let plan = p.recovery_plan(s(1), "sales", &HashSet::new()).unwrap();
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].buddy, s(2));
        assert!(plan[0].predicate.is_none());
        // With site 2 also down, site 3 serves.
        let down: HashSet<SiteId> = [s(2)].into_iter().collect();
        let plan = p.recovery_plan(s(1), "sales", &down).unwrap();
        assert_eq!(plan[0].buddy, s(3));
        // All copies down: unrecoverable.
        let down: HashSet<SiteId> = [s(2), s(3)].into_iter().collect();
        assert!(matches!(
            p.recovery_plan(s(1), "sales", &down),
            Err(DbError::Unrecoverable(_))
        ));
    }

    #[test]
    fn partitioned_copy_yields_multiple_recovery_objects() {
        // The EMP example of §5.1: EMP1 full on site 1; EMP2 split by
        // employee_id over sites 2 and 3. Site 1 fails; its recovery
        // predicate is the whole table here (it held a full copy).
        let mut p = Placement::new();
        let id_col = 2; // first user field
        p.add_table(
            "employees",
            vec![
                Copy {
                    parts: vec![Part::full(s(1))],
                },
                Copy {
                    parts: vec![
                        Part::partition(s(2), Expr::col(id_col).lt(Expr::lit(1000i64))),
                        Part::partition(s(3), Expr::col(id_col).ge(Expr::lit(1000i64))),
                    ],
                },
            ],
        );
        let plan = p.recovery_plan(s(1), "employees", &HashSet::new()).unwrap();
        assert_eq!(plan.len(), 2);
        assert_eq!(plan[0].buddy, s(2));
        assert!(plan[0].predicate.is_some());
        assert_eq!(plan[1].buddy, s(3));
        // And the reverse: recover the partition on site 2 from the full
        // copy on site 1, with the partition predicate as recovery pred.
        let plan = p.recovery_plan(s(2), "employees", &HashSet::new()).unwrap();
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].buddy, s(1));
        assert!(plan[0].predicate.is_some());
    }

    #[test]
    fn recovery_plan_offers_live_full_copies_as_alternates() {
        let mut p = Placement::new();
        p.add_replicated_table("sales", &[s(1), s(2), s(3), s(4)]);
        let plan = p.recovery_plan(s(1), "sales", &HashSet::new()).unwrap();
        assert_eq!(plan[0].buddy, s(2));
        assert_eq!(plan[0].alternates, vec![s(3), s(4)]);
        // Down sites are not offered.
        let down: HashSet<SiteId> = [s(3)].into_iter().collect();
        let plan = p.recovery_plan(s(1), "sales", &down).unwrap();
        assert_eq!(plan[0].buddy, s(2));
        assert_eq!(plan[0].alternates, vec![s(4)]);
        // A partitioned copy is never an alternate: it cannot serve a whole
        // recovery object by itself.
        let id_col = 2;
        let mut p = Placement::new();
        p.add_table(
            "emp",
            vec![
                Copy {
                    parts: vec![Part::full(s(1))],
                },
                Copy {
                    parts: vec![Part::full(s(2))],
                },
                Copy {
                    parts: vec![
                        Part::partition(s(3), Expr::col(id_col).lt(Expr::lit(10i64))),
                        Part::partition(s(4), Expr::col(id_col).ge(Expr::lit(10i64))),
                    ],
                },
            ],
        );
        let plan = p.recovery_plan(s(1), "emp", &HashSet::new()).unwrap();
        assert_eq!(plan[0].buddy, s(2));
        assert!(plan[0].alternates.is_empty());
    }

    #[test]
    fn objects_on_lists_site_contents() {
        let mut p = Placement::new();
        p.add_replicated_table("a", &[s(1), s(2)]);
        p.add_replicated_table("b", &[s(2), s(3)]);
        let on2 = p.objects_on(s(2));
        assert_eq!(on2.len(), 2);
        assert_eq!(on2[0].0, "a");
        assert_eq!(on2[1].0, "b");
        assert_eq!(p.objects_on(s(9)).len(), 0);
    }

    #[test]
    fn k_safety_example_from_section_3_2() {
        // 1-safe: R on S1,S2; R' on S3,S4. Failures of S1 and S3 together
        // are tolerated because at most one failure hits each relation.
        let mut p = Placement::new();
        p.add_replicated_table("r", &[s(1), s(2)]);
        p.add_replicated_table("r2", &[s(3), s(4)]);
        let down: HashSet<SiteId> = [s(3)].into_iter().collect();
        let plan = p.recovery_plan(s(1), "r", &down).unwrap();
        assert_eq!(plan[0].buddy, s(2));
        let down: HashSet<SiteId> = [s(1)].into_iter().collect();
        let plan = p.recovery_plan(s(3), "r2", &down).unwrap();
        assert_eq!(plan[0].buddy, s(4));
    }
}
