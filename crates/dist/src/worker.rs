//! The worker site: a thread-per-connection server executing update
//! requests, commit-protocol steps, remote scans, and recovery lock
//! requests against its local [`Engine`] (thesis §4.1, §6.1.6).

use crate::consensus::{self, BackupState};
use crate::failpoint::{CrashPoint, CrashSchedule};
use crate::message::{
    RemoteScan, Request, Response, TuplesFrameBuilder, UpdateRequest, WireReadMode, WireTxnState,
};
use crate::protocol::ProtocolKind;
use harbor_common::codec::Wire;
use harbor_common::tuple::{
    raw_version_timestamps, transcode_fixed_cols_to_wire, transcode_fixed_to_wire,
};
use harbor_common::{DbError, DbResult, SiteId, Timestamp, TransactionId, Tuple, Value};
use harbor_engine::Engine;
use harbor_exec::op::Operator;
use harbor_exec::{run_update_by_key, Expr, ReadMode, SeqScan};
use harbor_net::{Channel, Transport};
use harbor_storage::{LockKey, LockMode, ScanBounds};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Worker-local distributed-transaction bookkeeping (beyond the engine's
/// local state): the participant set from PREPARE and the commit time from
/// PREPARE-TO-COMMIT, which the consensus protocol needs (§4.3.3).
#[derive(Clone, Debug, Default)]
struct DistTxn {
    workers: Vec<SiteId>,
    voted: Option<bool>,
    ptc_time: Option<Timestamp>,
    /// `Some(true)` committed, `Some(false)` aborted.
    outcome: Option<bool>,
    commit_time: Option<Timestamp>,
}

/// Configuration for one worker.
#[derive(Clone, Debug)]
pub struct WorkerConfig {
    pub site: SiteId,
    pub addr: String,
    pub protocol: ProtocolKind,
    /// Run the periodic checkpoint thread at this interval (HARBOR
    /// checkpoint, plus an ARIES fuzzy log checkpoint when logging).
    pub checkpoint_every: Option<Duration>,
    /// Addresses of peer workers (consensus) — site id → address.
    pub peers: HashMap<SiteId, String>,
    /// Address of the coordinator's server. In-doubt 2PC transactions
    /// resolve against its forced log (presumed abort); `None` leaves only
    /// the worker-side consensus election, which is the coordinator-dead
    /// fallback.
    pub coordinator: Option<String>,
    /// Automatically run the consensus protocol when the coordinator's
    /// connection drops mid-commit (3PC only; 2PC blocks by design).
    pub auto_consensus: bool,
    /// Answer `ids_and_deletions_only` recovery queries from the per-table
    /// deletion log instead of scanning segments (the §5.2-footnote
    /// deletion vector; ablation 4 measures the difference).
    pub use_deletion_log: bool,
    /// Rows per streamed scan batch (ablation 5 sweeps this).
    pub scan_batch: usize,
    /// Cluster-wide crash schedule; the worker probes it at the protocol
    /// steps of [`CrashPoint`] (PREPARE vote, PTC ack, recovery scans,
    /// consensus resolution).
    pub crash_schedule: Arc<CrashSchedule>,
}

/// A running worker site.
pub struct Worker {
    cfg: WorkerConfig,
    engine: Arc<Engine>,
    transport: Arc<dyn Transport>,
    dist_txns: Arc<Mutex<HashMap<TransactionId, DistTxn>>>,
    /// Live peer address book, seeded from `cfg.peers` and edited at
    /// runtime as sites join and leave the cluster (consensus must reach
    /// the *current* membership, not the birth roster).
    peers: Mutex<HashMap<SiteId, String>>,
    shutdown: Arc<AtomicBool>,
    /// Set by [`CrashPoint::WorkerAfterPtcAck`]: crash as soon as the reply
    /// currently being produced is on the wire.
    crash_after_reply: AtomicBool,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Worker {
    /// Starts serving at `cfg.addr`.
    pub fn start(
        engine: Arc<Engine>,
        transport: Arc<dyn Transport>,
        cfg: WorkerConfig,
    ) -> DbResult<Arc<Worker>> {
        let listener = transport.listen(&cfg.addr)?;
        Self::start_with_listener(engine, transport, cfg, listener)
    }

    /// Starts serving on an already-bound listener (lets callers bind TCP
    /// port 0 and learn the real address before wiring the address book).
    pub fn start_with_listener(
        engine: Arc<Engine>,
        transport: Arc<dyn Transport>,
        mut cfg: WorkerConfig,
        listener: Box<dyn harbor_net::Listener>,
    ) -> DbResult<Arc<Worker>> {
        cfg.addr = listener.local_addr();
        let peers = Mutex::new(cfg.peers.clone());
        let worker = Arc::new(Worker {
            cfg,
            engine,
            transport,
            dist_txns: Arc::new(Mutex::new(HashMap::new())),
            peers,
            shutdown: Arc::new(AtomicBool::new(false)),
            crash_after_reply: AtomicBool::new(false),
            handles: Mutex::new(Vec::new()),
        });
        {
            let w = worker.clone();
            let h = std::thread::Builder::new()
                .name(format!("worker-{}-acceptor", w.cfg.site.0))
                .spawn(move || w.accept_loop(listener))
                .map_err(|e| DbError::internal(format!("spawn acceptor: {e}")))?;
            worker.handles.lock().push(h);
        }
        if let Some(every) = worker.cfg.checkpoint_every {
            let w = worker.clone();
            let h = std::thread::Builder::new()
                .name(format!("worker-{}-checkpointer", w.cfg.site.0))
                .spawn(move || w.checkpoint_loop(every))
                .map_err(|e| DbError::internal(format!("spawn checkpointer: {e}")))?;
            worker.handles.lock().push(h);
        }
        Ok(worker)
    }

    pub fn site(&self) -> SiteId {
        self.cfg.site
    }

    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    pub fn protocol(&self) -> ProtocolKind {
        self.cfg.protocol
    }

    pub fn addr(&self) -> &str {
        &self.cfg.addr
    }

    /// Fail-stop crash: stop serving immediately and join the server
    /// threads. The engine's volatile state dies with the caller's `Arc`s;
    /// nothing is flushed.
    pub fn crash(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let handles: Vec<_> = self.handles.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }

    /// Graceful variant used by tests to end a run (same mechanics; the
    /// name documents intent).
    pub fn stop(&self) {
        self.crash();
    }

    /// Begins a fail-stop crash *from inside a serving thread* (a fired
    /// [`CrashPoint`]): only flips the shutdown flag — the acceptor,
    /// checkpointer and connection threads all observe it within their next
    /// poll slice and exit, and the listener unbinds. A thread cannot join
    /// itself, so the final [`crash`](Self::crash) join is left to the
    /// harness once [`is_shutdown`](Self::is_shutdown) reports true.
    pub fn initiate_crash(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// `true` once the worker has crashed or begun crashing.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Probes the cluster crash schedule for `point`; on a hit, starts the
    /// fail-stop crash and reports `true` so the caller can vanish without
    /// replying.
    pub(crate) fn fire_crash(&self, point: CrashPoint) -> bool {
        if self.cfg.crash_schedule.fire(self.cfg.site, point) {
            self.initiate_crash();
            true
        } else {
            false
        }
    }

    fn accept_loop(self: &Arc<Self>, listener: Box<dyn harbor_net::Listener>) {
        while !self.shutdown.load(Ordering::SeqCst) {
            match listener.accept_timeout(Duration::from_millis(50)) {
                Ok(Some(chan)) => {
                    let w = self.clone();
                    let spawned = std::thread::Builder::new()
                        .name(format!("worker-{}-conn", w.cfg.site.0))
                        .spawn(move || w.serve_connection(chan));
                    // Thread exhaustion must not kill the acceptor: dropping
                    // the un-spawned closure closes the connection, and the
                    // peer's liveness deadline classifies the site as slow,
                    // not dead.
                    if let Ok(h) = spawned {
                        self.handles.lock().push(h);
                    }
                }
                Ok(None) => {}
                Err(_) => break,
            }
        }
    }

    fn checkpoint_loop(self: &Arc<Self>, every: Duration) {
        while !self.shutdown.load(Ordering::SeqCst) {
            // Sleep in small slices so crash() returns promptly.
            static_sleep_accumulate(self, every);
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let _ = self.engine.checkpoint();
            if self.engine.is_logging() {
                let _ = self.engine.log_checkpoint();
            }
        }
    }

    fn serve_connection(self: &Arc<Self>, mut chan: Box<dyn Channel>) {
        // Transactions begun on this connection (coordinator-failure
        // detection) and recovery locks granted through it (§5.5.1).
        let mut conn_txns: Vec<TransactionId> = Vec::new();
        let mut conn_locks: Vec<(TransactionId, LockKey)> = Vec::new();
        loop {
            let frame = match chan.recv_timeout(Duration::from_millis(50)) {
                Ok(Some(f)) => f,
                Ok(None) => {
                    if self.shutdown.load(Ordering::SeqCst) {
                        return; // crash: vanish without cleanup
                    }
                    continue;
                }
                Err(_) => {
                    self.on_disconnect(&conn_txns, &conn_locks);
                    return;
                }
            };
            if self.shutdown.load(Ordering::SeqCst) {
                // A crash point fired elsewhere in the worker: a crashed
                // site serves nothing, even requests already in flight —
                // otherwise a half-dead site could still grant locks or
                // votes after its fail-stop began.
                return;
            }
            let req = match Request::from_slice(&frame) {
                Ok(r) => r,
                Err(e) => {
                    let _ = chan.send(
                        &Response::Err {
                            msg: format!("bad request: {e}"),
                        }
                        .to_vec(),
                    );
                    continue;
                }
            };
            if let Request::Begin { tid } = &req {
                conn_txns.push(*tid);
            }
            match &req {
                Request::AcquireTableLock { tid, table } => {
                    let resp = self.handle(&req, &mut chan);
                    if matches!(resp, Response::Ok) {
                        if let Some(def) = self.engine.table_def(table) {
                            conn_locks.push((*tid, LockKey::Table(def.id)));
                        }
                    }
                    let _ = chan.send(&resp.to_vec());
                }
                Request::ReleaseTableLock { tid, table } => {
                    let resp = self.handle(&req, &mut chan);
                    if let Some(def) = self.engine.table_def(table) {
                        conn_locks.retain(|(t, k)| !(t == tid && *k == LockKey::Table(def.id)));
                    }
                    let _ = chan.send(&resp.to_vec());
                }
                Request::Scan(_) | Request::ScanRange { .. } => {
                    // Streaming: handle() sends the batches itself.
                    let resp = self.handle(&req, &mut chan);
                    if self.shutdown.load(Ordering::SeqCst) {
                        return; // crashed mid-stream: the status frame is never sent
                    }
                    let _ = chan.send(&resp.to_vec());
                }
                _ => {
                    let resp = self.handle(&req, &mut chan);
                    if self.shutdown.load(Ordering::SeqCst) {
                        // A crash point fired while handling (e.g. during
                        // the PREPARE vote): a crashed site sends nothing.
                        return;
                    }
                    if chan.send(&resp.to_vec()).is_err() {
                        self.on_disconnect(&conn_txns, &conn_locks);
                        return;
                    }
                    if self.crash_after_reply.swap(false, Ordering::SeqCst) {
                        // WorkerAfterPtcAck: the ack is on the wire; die in
                        // the prepared-to-commit state (Table 4.1).
                        self.initiate_crash();
                        return;
                    }
                }
            }
        }
    }

    /// Coordinator (or recovering-site) connection died (§4.3.2, §5.5.1).
    fn on_disconnect(
        self: &Arc<Self>,
        conn_txns: &[TransactionId],
        conn_locks: &[(TransactionId, LockKey)],
    ) {
        // Override a dead recoverer's locks so transactions can progress.
        for (tid, _) in conn_locks {
            self.engine.locks().release_all(*tid);
        }
        for tid in conn_txns {
            let state = self.backup_state(*tid);
            match state {
                // Not yet prepared, or prepared-voted-NO: safe to abort
                // unilaterally under every protocol (§4.3.2).
                BackupState::Pending | BackupState::PreparedNo => {
                    let _ = self
                        .engine
                        .abort(*tid, self.cfg.protocol.worker_commit_logging());
                    self.dist_txns.lock().entry(*tid).or_default().outcome = Some(false);
                }
                BackupState::Committed(_) | BackupState::Aborted => {}
                // Prepared-YES or beyond: 2PC must block for the
                // coordinator; 3PC runs the consensus protocol.
                _ => {
                    if self.cfg.protocol.is_three_phase() && self.cfg.auto_consensus {
                        let w = self.clone();
                        let tid = *tid;
                        std::thread::spawn(move || {
                            let _ = w.resolve_by_consensus(tid);
                        });
                    }
                }
            }
        }
    }

    /// Transactions this worker holds commit-protocol state for with no
    /// decided outcome — the set a backup-coordinator consensus round would
    /// have to terminate if the coordinator were lost (§4.3.3). A worker in
    /// this state may hold an *acknowledged* transaction as merely
    /// prepared-to-commit (its COMMIT frame was lost), so it must not serve
    /// as a recovery buddy until these are resolved.
    pub fn unresolved_dist_txns(&self) -> Vec<TransactionId> {
        let dist = self.dist_txns.lock();
        let mut out: Vec<TransactionId> = dist
            .iter()
            .filter(|(_, i)| i.outcome.is_none())
            .map(|(tid, _)| *tid)
            .collect();
        out.sort_unstable();
        out
    }

    /// This worker's consensus-relevant state for `tid` (Fig 4-5).
    pub fn backup_state(&self, tid: TransactionId) -> BackupState {
        let dist = self.dist_txns.lock();
        let info = dist.get(&tid);
        if let Some(info) = info {
            if let Some(outcome) = info.outcome {
                return if outcome {
                    let t = info
                        .commit_time
                        .or(info.ptc_time)
                        .unwrap_or(Timestamp::ZERO);
                    BackupState::Committed(t)
                } else {
                    BackupState::Aborted
                };
            }
            if let Some(t) = info.ptc_time {
                return BackupState::PreparedToCommit(t);
            }
            match info.voted {
                Some(true) => return BackupState::PreparedYes,
                Some(false) => return BackupState::PreparedNo,
                None => {}
            }
        }
        drop(dist);
        match self.engine.txn_status(tid) {
            Some(_) => BackupState::Pending,
            None => BackupState::Aborted, // unknown = treated as aborted
        }
    }

    /// Runs the consensus-building protocol for `tid` (§4.3.3): elects the
    /// lowest-ranked live participant as backup coordinator; if that is
    /// this site, drives the outcome per Table 4.1.
    pub fn resolve_by_consensus(self: &Arc<Self>, tid: TransactionId) -> DbResult<bool> {
        let workers = {
            let dist = self.dist_txns.lock();
            dist.get(&tid)
                .map(|i| i.workers.clone())
                .unwrap_or_default()
        };
        // Let in-flight protocol messages land before deciding.
        if workers.is_empty() {
            // No PREPARE ever arrived: commit processing never began, so
            // the worker can safely abort unilaterally (§4.3.3: "if a
            // worker detects a coordinator failure before a transaction's
            // commit processing stage ... the worker can safely abort").
            self.engine
                .abort(tid, self.cfg.protocol.worker_commit_logging())?;
            self.dist_txns.lock().entry(tid).or_default().outcome = Some(false);
            return Ok(true);
        }
        // 2PC: the coordinator's forced log is the outcome authority — the
        // worker-only Table 4.1 election is sound only under 3PC's lock-step
        // state transitions. A 2PC coordinator may have forced COMMIT and
        // acked the client while every surviving worker is still merely
        // prepared (its COMMIT frame lost); electing a prepared-YES backup
        // would then abort an acknowledged transaction. Ask the coordinator
        // first; fall back to the election only when it is unreachable
        // (coordinator-death termination).
        if !self.cfg.protocol.is_three_phase() {
            match self.query_coordinator_outcome(tid) {
                Some(WireTxnState::Committed(t)) => {
                    self.adopt_outcome(tid, Some(t))?;
                    return Ok(true);
                }
                Some(WireTxnState::Aborted) | Some(WireTxnState::Unknown) => {
                    self.adopt_outcome(tid, None)?;
                    return Ok(true);
                }
                // The coordinator is alive but the transaction is still in
                // flight: stay blocked, the protocol will finish it.
                Some(_) => return Ok(false),
                None => {} // unreachable: consensus election below
            }
        }
        if consensus::resolve(self, tid, &workers)? {
            return Ok(true);
        }
        // A higher-ranked live site is the backup: follow the termination
        // protocol by polling its view of the transaction and adopting the
        // outcome it reaches. Paced by the shared seeded-backoff schedule
        // (per-site seed decorrelates concurrent elections) instead of an
        // ad-hoc fixed-sleep wall-clock deadline.
        let policy = harbor_common::RetryPolicy::new(
            200,
            std::time::Duration::from_millis(25),
            std::time::Duration::from_millis(100),
            0x0BAC_C0FF ^ u64::from(self.cfg.site.0),
        );
        let mut attempt = 0u32;
        loop {
            match consensus::query_backup_state(self, tid, &workers) {
                Some(BackupState::Committed(t)) => {
                    if self.engine.txn_status(tid).is_some() {
                        self.engine
                            .commit(tid, t, self.cfg.protocol.worker_commit_logging())?;
                    }
                    self.engine.advance_applied_clock(t);
                    let mut dist = self.dist_txns.lock();
                    let info = dist.entry(tid).or_default();
                    info.outcome = Some(true);
                    info.commit_time = Some(t);
                    return Ok(true);
                }
                Some(BackupState::Aborted) => {
                    self.engine
                        .abort(tid, self.cfg.protocol.worker_commit_logging())?;
                    self.dist_txns.lock().entry(tid).or_default().outcome = Some(false);
                    return Ok(true);
                }
                _ => {
                    // Backup undecided (or we are next in line if it died):
                    // retry, re-running the election each time.
                    if attempt >= policy.attempts {
                        return Ok(false);
                    }
                    std::thread::sleep(policy.delay(attempt));
                    attempt += 1;
                    if consensus::resolve(self, tid, &workers)? {
                        return Ok(true);
                    }
                }
            }
        }
    }

    /// Asks the coordinator for `tid`'s authoritative outcome (bounded
    /// retries on transient timeouts — the query is idempotent). `None`
    /// when no coordinator address is configured or it is unreachable.
    fn query_coordinator_outcome(&self, tid: TransactionId) -> Option<WireTxnState> {
        let addr = self.cfg.coordinator.as_deref()?;
        let reply = crate::with_read_retries(
            None,
            consensus::CONSENSUS_RETRIES,
            Duration::from_millis(10),
            || {
                let mut chan = self.transport.connect(addr)?;
                crate::rpc_deadline(
                    chan.as_mut(),
                    &Request::QueryTxnState { tid },
                    consensus::CONSENSUS_DEADLINE,
                )
            },
        );
        match reply {
            Ok(Response::TxnState { state }) => Some(state),
            _ => None,
        }
    }

    /// Applies a decided outcome learned out-of-band (from the coordinator's
    /// log): `Some(t)` commits at `t`, `None` aborts. Idempotent — a
    /// transaction the engine no longer knows only has its bookkeeping
    /// updated.
    fn adopt_outcome(
        self: &Arc<Self>,
        tid: TransactionId,
        outcome: Option<Timestamp>,
    ) -> DbResult<()> {
        match outcome {
            Some(t) => {
                if self.engine.txn_status(tid).is_some() {
                    self.engine
                        .commit(tid, t, self.cfg.protocol.worker_commit_logging())?;
                }
                self.engine.advance_applied_clock(t);
                let mut dist = self.dist_txns.lock();
                let info = dist.entry(tid).or_default();
                info.outcome = Some(true);
                info.commit_time = Some(t);
            }
            None => {
                self.engine
                    .abort(tid, self.cfg.protocol.worker_commit_logging())?;
                self.dist_txns.lock().entry(tid).or_default().outcome = Some(false);
            }
        }
        Ok(())
    }

    /// One peer's current address (owned — no guard escapes, so callers
    /// are free to block on the connection).
    pub(crate) fn peer_addr(&self, site: SiteId) -> Option<String> {
        self.peers.lock().get(&site).cloned()
    }

    /// Registers (or re-addresses) a peer that joined the cluster.
    pub fn add_peer(&self, site: SiteId, addr: &str) {
        self.peers.lock().insert(site, addr.to_string());
    }

    /// Forgets a decommissioned peer.
    pub fn remove_peer(&self, site: SiteId) {
        self.peers.lock().remove(&site);
    }

    pub(crate) fn transport(&self) -> &Arc<dyn Transport> {
        &self.transport
    }

    /// Executes one request. Streaming responses (scans) write directly to
    /// `chan`; the returned response is the final frame.
    fn handle(self: &Arc<Self>, req: &Request, chan: &mut Box<dyn Channel>) -> Response {
        match self.handle_inner(req, chan) {
            Ok(resp) => resp,
            Err(e) => Response::Err { msg: e.to_string() },
        }
    }

    fn handle_inner(
        self: &Arc<Self>,
        req: &Request,
        chan: &mut Box<dyn Channel>,
    ) -> DbResult<Response> {
        match req {
            Request::Begin { tid } => {
                self.engine.begin(*tid)?;
                self.dist_txns.lock().insert(*tid, DistTxn::default());
                Ok(Response::Ok)
            }
            Request::Update { tid, req } => {
                self.apply_update(*tid, req)?;
                Ok(Response::Ok)
            }
            Request::Prepare {
                tid,
                workers,
                time_bound,
            } => {
                if self.fire_crash(CrashPoint::WorkerDuringPrepareVote) {
                    // Crash while producing the vote: the coordinator sees a
                    // dead participant, not a vote (§4.3.2 treats that as NO).
                    return Err(DbError::SiteDown("worker crashed (fail point)".into()));
                }
                let yes = self.vote_on_prepare(*tid, workers, *time_bound)?;
                Ok(Response::Vote { yes })
            }
            Request::PrepareBatch {
                txns, time_bound, ..
            } => {
                // Either crash point kills the whole vote vector: the
                // coordinator sees a dead participant and must abort only
                // this worker's txns, not the epoch.
                if self.fire_crash(CrashPoint::WorkerDuringBatchPrepare)
                    || self.fire_crash(CrashPoint::WorkerDuringPrepareVote)
                {
                    return Err(DbError::SiteDown("worker crashed (fail point)".into()));
                }
                let mut votes = Vec::with_capacity(txns.len());
                for (tid, workers) in txns {
                    // A failed vote is a NO vote, not a dead worker: the
                    // rest of the epoch must still get its votes.
                    let yes = self
                        .vote_on_prepare(*tid, workers, *time_bound)
                        .unwrap_or(false);
                    votes.push((*tid, yes));
                }
                Ok(Response::VoteBatch { votes })
            }
            Request::PrepareToCommit { tid, commit_time } => {
                // Duplicate deliveries (consensus replay) are fine.
                if self.engine.txn_status(*tid).is_none() {
                    return Ok(Response::Ack);
                }
                self.engine.prepare_to_commit(
                    *tid,
                    *commit_time,
                    self.cfg.protocol.worker_ptc_logging(),
                )?;
                self.dist_txns.lock().entry(*tid).or_default().ptc_time = Some(*commit_time);
                if self
                    .cfg
                    .crash_schedule
                    .fire(self.cfg.site, CrashPoint::WorkerAfterPtcAck)
                {
                    // The point is "after the ack is on the wire", so don't
                    // flip the shutdown flag yet (that would suppress the
                    // ack): the serving loop crashes right after the send.
                    self.crash_after_reply.store(true, Ordering::SeqCst);
                }
                Ok(Response::Ack)
            }
            Request::Commit { tid, commit_time } => {
                self.apply_commit(*tid, *commit_time)?;
                Ok(Response::Ack)
            }
            Request::Abort { tid } => {
                self.apply_abort(*tid)?;
                Ok(Response::Ack)
            }
            Request::CommitBatch {
                commits, aborts, ..
            } => {
                // Per-txn isolation: one failed apply must not block the
                // rest of the wave's acks (the coordinator re-resolves any
                // unacked txn through recovery, not the epoch).
                let mut acked = Vec::with_capacity(commits.len() + aborts.len());
                for (tid, commit_time) in commits {
                    if self.apply_commit(*tid, *commit_time).is_ok() {
                        acked.push(*tid);
                    }
                }
                for tid in aborts {
                    if self.apply_abort(*tid).is_ok() {
                        acked.push(*tid);
                    }
                }
                Ok(Response::AckBatch { acked })
            }
            Request::Scan(scan) => {
                self.stream_scan(scan, chan)?;
                Ok(Response::Ok)
            }
            Request::ScanRange {
                scan,
                ins_lo,
                ins_hi,
            } => {
                // Fold the insertion-time range `(ins_lo, ins_hi]` into the
                // scan's bounds: the worker then prunes segments outside the
                // range and ships only the range's tuples, so distinct
                // ranges stream disjoint slices of the same recovery query.
                let mut ranged = scan.clone();
                ranged.ins_after = Some(match ranged.ins_after {
                    Some(t) => t.max(*ins_lo),
                    None => *ins_lo,
                });
                ranged.ins_at_or_before = Some(match ranged.ins_at_or_before {
                    Some(t) => t.min(*ins_hi),
                    None => *ins_hi,
                });
                self.stream_scan(&ranged, chan)?;
                Ok(Response::Ok)
            }
            Request::SegmentBounds { table } => {
                let def = self
                    .engine
                    .table_def(table)
                    .ok_or_else(|| DbError::Schema(format!("no table {table:?}")))?;
                let heap = self.engine.pool().table(def.id)?;
                let segments = heap
                    .segments()
                    .iter()
                    .map(|s| {
                        (
                            s.tmin_insert,
                            s.tmax_insert,
                            s.tmax_delete,
                            s.page_count as u64,
                        )
                    })
                    .collect();
                Ok(Response::SegmentBounds { segments })
            }
            Request::AcquireTableLock { tid, table } => {
                let def = self
                    .engine
                    .table_def(table)
                    .ok_or_else(|| DbError::Schema(format!("no table {table:?}")))?;
                self.engine
                    .locks()
                    .acquire(*tid, LockKey::Table(def.id), LockMode::Shared)?;
                Ok(Response::Ok)
            }
            Request::ReleaseTableLock { tid, table } => {
                let def = self
                    .engine
                    .table_def(table)
                    .ok_or_else(|| DbError::Schema(format!("no table {table:?}")))?;
                self.engine.locks().release(*tid, LockKey::Table(def.id));
                // The lock owner id is dedicated to this one recovery
                // object, so drop any stragglers it may hold too.
                self.engine.locks().release_all(*tid);
                Ok(Response::Ok)
            }
            Request::QueryTxnState { tid } => {
                let state = match self.backup_state(*tid) {
                    BackupState::Pending => WireTxnState::Pending,
                    BackupState::PreparedYes => WireTxnState::PreparedVotedYes,
                    BackupState::PreparedNo => WireTxnState::PreparedVotedNo,
                    BackupState::PreparedToCommit(t) => WireTxnState::PreparedToCommit(t),
                    BackupState::Committed(t) => WireTxnState::Committed(t),
                    BackupState::Aborted => WireTxnState::Aborted,
                };
                Ok(Response::TxnState { state })
            }
            Request::PointRead { table, key, mode } => {
                let def = self
                    .engine
                    .table_def(table)
                    .ok_or_else(|| DbError::Schema(format!("no table {table:?}")))?;
                let batch =
                    harbor_exec::index_lookup(&self.engine, def.id, *key, read_mode(*mode))?
                        .into_iter()
                        .map(|(_, t)| t)
                        .collect();
                Ok(Response::Tuples { batch, done: true })
            }
            Request::Ping => Ok(Response::Ok),
            Request::GetTime
            | Request::RecComingOnline { .. }
            | Request::JoinSite { .. }
            | Request::DecommissionSite { .. } => {
                Err(DbError::protocol("request must be sent to a coordinator"))
            }
        }
    }

    /// Votes on one PREPARE (§4.3.2) — shared by the serial and batched
    /// first phases, so both populate the same per-txn consensus state.
    fn vote_on_prepare(
        &self,
        tid: TransactionId,
        workers: &[SiteId],
        time_bound: Timestamp,
    ) -> DbResult<bool> {
        // A vote request for an unknown transaction gets NO
        // (§4.3.2: worker crashed and recovered in between).
        if self.engine.txn_status(tid).is_none() {
            return Ok(false);
        }
        {
            let mut dist = self.dist_txns.lock();
            let info = dist.entry(tid).or_default();
            info.workers = workers.to_vec();
        }
        // Duplicate PREPARE (a backup coordinator replaying the
        // first phase, §4.3.3): repeat the previous vote.
        match self.backup_state(tid) {
            BackupState::PreparedYes | BackupState::PreparedToCommit(_) => return Ok(true),
            BackupState::PreparedNo | BackupState::Aborted => return Ok(false),
            _ => {}
        }
        match self
            .engine
            .prepare(tid, time_bound, self.cfg.protocol.worker_prepare_logging())
        {
            Ok(()) => {
                self.dist_txns.lock().entry(tid).or_default().voted = Some(true);
                Ok(true)
            }
            Err(_) => {
                // NO vote: roll back immediately (Figs 4-2/4-3).
                self.dist_txns.lock().entry(tid).or_default().voted = Some(false);
                self.engine
                    .abort(tid, self.cfg.protocol.worker_commit_logging())?;
                self.dist_txns.lock().entry(tid).or_default().outcome = Some(false);
                Ok(false)
            }
        }
    }

    /// Applies one COMMIT decision — shared by the serial and batched
    /// second phases. Duplicate deliveries are fine (the engine no longer
    /// knows the txn); the applied clock always advances.
    fn apply_commit(&self, tid: TransactionId, commit_time: Timestamp) -> DbResult<()> {
        if self.engine.txn_status(tid).is_some() {
            self.engine
                .commit(tid, commit_time, self.cfg.protocol.worker_commit_logging())?;
        }
        self.engine.advance_applied_clock(commit_time);
        let mut dist = self.dist_txns.lock();
        let info = dist.entry(tid).or_default();
        info.outcome = Some(true);
        info.commit_time = Some(commit_time);
        Ok(())
    }

    /// Applies one ABORT decision — shared by the serial and batched paths.
    fn apply_abort(&self, tid: TransactionId) -> DbResult<()> {
        self.engine
            .abort(tid, self.cfg.protocol.worker_commit_logging())?;
        self.dist_txns.lock().entry(tid).or_default().outcome = Some(false);
        Ok(())
    }

    /// Executes one logical update request (§4.1).
    fn apply_update(&self, tid: TransactionId, req: &UpdateRequest) -> DbResult<()> {
        match req {
            UpdateRequest::Insert { table, values } => {
                let def = self
                    .engine
                    .table_def(table)
                    .ok_or_else(|| DbError::Schema(format!("no table {table:?}")))?;
                self.engine.insert(tid, def.id, values.clone())?;
                Ok(())
            }
            UpdateRequest::InsertMany { table, rows } => {
                let def = self
                    .engine
                    .table_def(table)
                    .ok_or_else(|| DbError::Schema(format!("no table {table:?}")))?;
                for row in rows {
                    self.engine.insert(tid, def.id, row.clone())?;
                }
                Ok(())
            }
            UpdateRequest::DeleteWhere { table, pred } => {
                let def = self
                    .engine
                    .table_def(table)
                    .ok_or_else(|| DbError::Schema(format!("no table {table:?}")))?;
                harbor_exec::run_delete(&self.engine, tid, def.id, pred)?;
                Ok(())
            }
            UpdateRequest::UpdateByKey { table, key, set } => {
                let def = self
                    .engine
                    .table_def(table)
                    .ok_or_else(|| DbError::Schema(format!("no table {table:?}")))?;
                run_update_by_key(&self.engine, tid, def.id, *key, |user| apply_set(user, set))?;
                Ok(())
            }
            UpdateRequest::UpdateWhere { table, pred, set } => {
                let def = self
                    .engine
                    .table_def(table)
                    .ok_or_else(|| DbError::Schema(format!("no table {table:?}")))?;
                harbor_exec::run_update(&self.engine, tid, def.id, pred, |user| {
                    apply_set(user, set)
                })?;
                Ok(())
            }
            UpdateRequest::SimulateWork { cycles } => {
                simulate_cpu_work(*cycles);
                Ok(())
            }
        }
    }

    /// Streams a scan's result in batches.
    fn stream_scan(&self, scan: &RemoteScan, chan: &mut Box<dyn Channel>) -> DbResult<()> {
        let def = self
            .engine
            .table_def(&scan.table)
            .ok_or_else(|| DbError::Schema(format!("no table {:?}", scan.table)))?;
        // Deletion-log fast path (§5.2 footnote): a pure deletion query is
        // answered from the ordered deletion log — cost proportional to the
        // number of deletions rather than to the segments they touched.
        if self.cfg.use_deletion_log && scan.ids_and_deletions_only && scan.ins_after.is_none() {
            if let Some(after) = scan.del_after {
                return self.stream_deletions_from_log(scan, def.id, after, chan);
            }
        }
        let mode = read_mode(scan.mode);
        let bounds = ScanBounds {
            ins_at_or_before: scan.ins_at_or_before,
            ins_after: scan.ins_after,
            del_after: scan.del_after,
            uncommitted_from_segment: None,
        };
        // Residual predicate: the pruning bounds re-applied per tuple plus
        // the recovery predicate. Timestamps are columns 0 and 1.
        let mut residual: Option<Expr> = scan.predicate.clone();
        let mut add = |e: Expr| {
            residual = Some(match residual.take() {
                Some(r) => r.and(e),
                None => e,
            });
        };
        if let Some(t) = scan.ins_at_or_before {
            add(Expr::col(0).le(Expr::time(t)));
        }
        if let Some(t) = scan.ins_after {
            add(Expr::col(0).gt(Expr::time(t)));
            // `insertion_time != uncommitted` (§5.4.1): modes that can see
            // uncommitted tuples must not ship them.
            add(Expr::col(0).ne(Expr::time(Timestamp::UNCOMMITTED)));
        }
        if let Some(t) = scan.del_after {
            add(Expr::col(1).gt(Expr::time(t)));
        }
        // Zero-copy fast path: with no user predicate, both the visibility
        // rule and the residual range checks run on the raw version pair,
        // and admitted rows transcode from page bytes straight into the
        // pre-framed outgoing buffer — no intermediate `Tuple` vectors.
        let desc = self.engine.pool().table(def.id)?.desc().clone();
        if scan.predicate.is_none() && desc.has_version_columns() {
            return self.stream_scan_zero_copy(scan, def.id, mode, bounds, &desc, chan);
        }
        let mut op = SeqScan::with_bounds(self.engine.pool().clone(), def.id, mode, bounds)?;
        op.open()?;
        let scan_batch = self.cfg.scan_batch.max(1);
        let shipped = &self.engine.metrics().clone();
        let mut fetched: Vec<Tuple> = Vec::with_capacity(scan_batch);
        let mut batch = Vec::with_capacity(scan_batch);
        loop {
            fetched.clear();
            let done = !op.next_batch(scan_batch, &mut fetched)?;
            for tup in fetched.drain(..) {
                let keep = match &residual {
                    Some(p) => p.eval_bool(&tup)?,
                    None => true,
                };
                if keep {
                    let out = if scan.ids_and_deletions_only {
                        // (tuple_id, deletion_time) pairs (§5.3).
                        Tuple2::project_id_del(&tup)?
                    } else {
                        tup
                    };
                    batch.push(out);
                }
            }
            if batch.len() >= scan_batch || done {
                shipped.add_recovery_tuples_shipped(batch.len() as u64);
                let resp = Response::Tuples {
                    batch: std::mem::take(&mut batch),
                    done,
                };
                // Pre-framed: one copy, one syscall on TCP.
                let framed = resp.to_framed_vec();
                shipped.add_recovery_bytes_shipped((framed.len() - 4) as u64);
                chan.send_framed(&framed)?;
                self.maybe_crash_serving_scan(scan)?;
                if done {
                    break;
                }
            }
        }
        op.close();
        Ok(())
    }

    /// The zero-copy service path behind [`stream_scan`](Self::stream_scan):
    /// walks the pruned pages itself, applies `ReadMode::admit` plus the
    /// §5.4.1 residual range checks to the raw timestamps at their fixed
    /// slot offsets, and re-encodes admitted rows from page bytes into the
    /// outgoing [`TuplesFrameBuilder`] — never materializing a `Tuple`.
    fn stream_scan_zero_copy(
        &self,
        scan: &RemoteScan,
        table: harbor_common::TableId,
        mode: ReadMode,
        bounds: ScanBounds,
        desc: &harbor_common::TupleDesc,
        chan: &mut Box<dyn Channel>,
    ) -> DbResult<()> {
        let pool = self.engine.pool().clone();
        let heap = pool.table(table)?;
        let mut pages = Vec::new();
        for (seg, _) in heap.prune(&bounds) {
            pages.extend(heap.segment_page_ids(seg));
        }
        let scan_batch = self.cfg.scan_batch.max(1);
        let metrics = self.engine.metrics().clone();
        let lock_tid = mode.lock_tid();
        // Fan out across contiguous page partitions when the scan is
        // lock-free and large enough to amortise the worker threads. Locked
        // modes stay serial: transactional page locks must be acquired by
        // the one thread that owns the transaction.
        let workers = if lock_tid.is_some() {
            1
        } else {
            harbor_common::config::DEFAULT_SCAN_WORKERS
                .min(pages.len() / harbor_common::config::PARALLEL_SCAN_MIN_PAGES)
                .max(1)
        };
        if workers > 1 {
            return self.stream_scan_zero_copy_parallel(
                scan, &pool, &pages, workers, mode, desc, &metrics, chan,
            );
        }
        let mut frame = TuplesFrameBuilder::new();
        let mut admitted = 0u64;
        let mut skipped = 0u64;
        for pid in pages {
            let (a, s) =
                transcode_page_into_frame(scan, &pool, lock_tid, pid, mode, desc, &mut frame)?;
            admitted += a;
            skipped += s;
            if frame.rows() as usize >= scan_batch {
                let full = std::mem::take(&mut frame);
                self.ship_zero_copy_frame(full, false, &metrics, chan)?;
                self.maybe_crash_serving_scan(scan)?;
            }
        }
        self.ship_zero_copy_frame(frame, true, &metrics, chan)?;
        self.maybe_crash_serving_scan(scan)?;
        metrics.add_scan_rows_admitted(admitted);
        metrics.add_scan_rows_skipped_predecode(skipped);
        Ok(())
    }

    /// Partitioned variant of the zero-copy scan service: the pruned page
    /// range splits into `workers` contiguous partitions, each walked by
    /// its own thread transcoding admitted rows into pre-framed buffers.
    /// Frames travel through bounded channels to this (merging) thread,
    /// which ships them in strict partition order, so for a given page list
    /// the shipped row sequence is identical to the serial path's and
    /// independent of thread interleaving. One final empty `done` frame
    /// ends the stream exactly as the serial path would.
    ///
    /// Two invariants the lint/witness planes watch for: a worker finishes
    /// and sends a frame only *after* the frame latch it was built under is
    /// released (a blocked channel send must never hold a page latch), and
    /// the pool draws no RNG and reads no wall clock — disk-fault ordinals
    /// are per-(table, page, direction), so chaos traces replay
    /// byte-identically however the partitions interleave.
    #[allow(clippy::too_many_arguments)]
    fn stream_scan_zero_copy_parallel(
        &self,
        scan: &RemoteScan,
        pool: &harbor_storage::BufferPool,
        pages: &[harbor_common::PageId],
        workers: usize,
        mode: ReadMode,
        desc: &harbor_common::TupleDesc,
        metrics: &harbor_common::Metrics,
        chan: &mut Box<dyn Channel>,
    ) -> DbResult<()> {
        let scan_batch = self.cfg.scan_batch.max(1);
        let per = pages.len().div_ceil(workers).max(1);
        std::thread::scope(|s| -> DbResult<()> {
            let mut rxs = Vec::with_capacity(workers);
            for (i, part) in pages.chunks(per).enumerate() {
                let (tx, rx) = std::sync::mpsc::sync_channel::<DbResult<(Vec<u8>, u32)>>(4);
                rxs.push(rx);
                std::thread::Builder::new()
                    .name(format!("worker-{}-scan-{i}", self.cfg.site.0))
                    .spawn_scoped(s, move || {
                        let mut frame = TuplesFrameBuilder::new();
                        let (mut admitted, mut skipped) = (0u64, 0u64);
                        for &pid in part {
                            match transcode_page_into_frame(
                                scan, pool, None, pid, mode, desc, &mut frame,
                            ) {
                                Ok((a, sk)) => {
                                    admitted += a;
                                    skipped += sk;
                                }
                                Err(e) => {
                                    let _ = tx.send(Err(e));
                                    return;
                                }
                            }
                            if frame.rows() as usize >= scan_batch {
                                let full = std::mem::take(&mut frame);
                                let rows = full.rows();
                                // The page latch dropped when the transcode
                                // returned; the potentially-blocking send
                                // holds no guard.
                                if tx.send(Ok((full.finish(false), rows))).is_err() {
                                    return; // merger gone: stop quietly
                                }
                            }
                        }
                        if frame.rows() > 0 {
                            let rows = frame.rows();
                            let _ = tx.send(Ok((frame.finish(false), rows)));
                        }
                        metrics.add_scan_rows_admitted(admitted);
                        metrics.add_scan_rows_skipped_predecode(skipped);
                    })
                    .map_err(|e| DbError::internal(format!("spawn scan worker: {e}")))?;
            }
            // Merge: drain partitions in order. A send/crash error returned
            // here drops the receivers, which unblocks and retires every
            // worker before the scope joins them.
            for rx in &rxs {
                loop {
                    match rx.recv() {
                        Ok(Ok((framed, rows))) => {
                            metrics.add_recovery_tuples_shipped(rows as u64);
                            let payload = (framed.len() - 4) as u64;
                            metrics.add_recovery_bytes_shipped(payload);
                            metrics.add_scan_bytes_zero_copy(payload);
                            chan.send_framed(&framed)?;
                            self.maybe_crash_serving_scan(scan)?;
                        }
                        Ok(Err(e)) => return Err(e),
                        Err(_) => break, // partition exhausted
                    }
                }
            }
            Ok(())
        })?;
        self.ship_zero_copy_frame(TuplesFrameBuilder::new(), true, metrics, chan)?;
        self.maybe_crash_serving_scan(scan)?;
        Ok(())
    }

    fn ship_zero_copy_frame(
        &self,
        frame: TuplesFrameBuilder,
        done: bool,
        metrics: &harbor_common::Metrics,
        chan: &mut Box<dyn Channel>,
    ) -> DbResult<()> {
        let rows = frame.rows() as u64;
        let framed = frame.finish(done);
        let payload = (framed.len() - 4) as u64;
        metrics.add_recovery_tuples_shipped(rows);
        metrics.add_recovery_bytes_shipped(payload);
        metrics.add_scan_bytes_zero_copy(payload);
        chan.send_framed(&framed)
    }

    /// Probes the buddy-death crash points while serving a recovery scan:
    /// Phase-2 historical catch-up scans and Phase-3 locked scans die
    /// *mid-stream*, after at least one batch is on the wire, so the
    /// recovering side must detect the severed stream and reassign (§5.5).
    fn maybe_crash_serving_scan(&self, scan: &RemoteScan) -> DbResult<()> {
        let point = match scan.mode {
            WireReadMode::SeeDeletedHistorical(_) => CrashPoint::WorkerServingPhase2Scan,
            WireReadMode::SeeDeletedLocked(_) => CrashPoint::WorkerServingPhase3Scan,
            _ => return Ok(()),
        };
        if self.fire_crash(point) {
            return Err(DbError::SiteDown(
                "worker crashed serving recovery scan (fail point)".into(),
            ));
        }
        Ok(())
    }
}

impl Worker {
    /// The deletion-log fast path behind `stream_scan`.
    fn stream_deletions_from_log(
        &self,
        scan: &RemoteScan,
        table: harbor_common::TableId,
        after: Timestamp,
        chan: &mut Box<dyn Channel>,
    ) -> DbResult<()> {
        let dlog = self.engine.deletion_log(table)?;
        let entries = dlog.deleted_after(self.engine.pool(), after)?;
        let hwm = match scan.mode {
            WireReadMode::SeeDeletedHistorical(t) => Some(t),
            _ => None,
        };
        let scan_batch = self.cfg.scan_batch.max(1);
        let mut batch = Vec::with_capacity(scan_batch);
        let shipped = self.engine.metrics().clone();
        for (rid, del) in entries {
            // Deletions after the HWM read as "not deleted" in historical
            // mode, so they never satisfy `deletion_time > after` (§5.3).
            if let Some(hwm) = hwm {
                if del > hwm {
                    continue;
                }
            }
            let tup = match self.engine.read_tuple(rid) {
                Ok(t) => t,
                Err(_) => continue, // physically removed since logging
            };
            if tup.deletion_ts()? != del {
                continue; // undeleted or re-deleted since logging
            }
            let ins = tup.insertion_ts()?;
            if ins.is_uncommitted() {
                continue;
            }
            if let Some(hwm) = hwm {
                if ins > hwm {
                    continue;
                }
            }
            if let Some(bound) = scan.ins_at_or_before {
                if ins > bound {
                    continue;
                }
            }
            if let Some(p) = &scan.predicate {
                if !p.eval_bool(&tup)? {
                    continue;
                }
            }
            batch.push(Tuple2::project_id_del(&tup)?);
            if batch.len() >= scan_batch {
                shipped.add_recovery_tuples_shipped(batch.len() as u64);
                let framed = Response::Tuples {
                    batch: std::mem::take(&mut batch),
                    done: false,
                }
                .to_framed_vec();
                shipped.add_recovery_bytes_shipped((framed.len() - 4) as u64);
                chan.send_framed(&framed)?;
                self.maybe_crash_serving_scan(scan)?;
            }
        }
        shipped.add_recovery_tuples_shipped(batch.len() as u64);
        let framed = Response::Tuples { batch, done: true }.to_framed_vec();
        shipped.add_recovery_bytes_shipped((framed.len() - 4) as u64);
        chan.send_framed(&framed)?;
        Ok(())
    }
}

/// Transcodes one page's admitted rows into `frame` under the page latch
/// (plus a page lock when `lock_tid` is set), returning the
/// `(admitted, skipped)` deltas. The latch guard is released before this
/// returns — callers are free to block on channel or socket sends.
fn transcode_page_into_frame(
    scan: &RemoteScan,
    pool: &harbor_storage::BufferPool,
    lock_tid: Option<TransactionId>,
    pid: harbor_common::PageId,
    mode: ReadMode,
    desc: &harbor_common::TupleDesc,
    frame: &mut TuplesFrameBuilder,
) -> DbResult<(u64, u64)> {
    // (tuple_id, deletion_time) projection: key is the first user field.
    let id_del_cols = [2usize, 1usize];
    let mut admitted = 0u64;
    let mut skipped = 0u64;
    pool.with_page(lock_tid, pid, |page| {
        for slot in page.occupied_slots() {
            let bytes = page.read(slot)?;
            let (ins, del) = raw_version_timestamps(bytes)?;
            let Some(masked) = mode.admit(ins, del) else {
                skipped += 1;
                continue;
            };
            // Residual bounds, re-applied per tuple exactly as the
            // legacy path's Expr did: insertion checks see the raw
            // value, the deletion check sees the masked one.
            let reject = scan.ins_at_or_before.is_some_and(|t| ins > t)
                || scan
                    .ins_after
                    .is_some_and(|t| ins <= t || ins == Timestamp::UNCOMMITTED)
                || scan.del_after.is_some_and(|t| masked <= t);
            if reject {
                skipped += 1;
                continue;
            }
            if scan.ids_and_deletions_only {
                transcode_fixed_cols_to_wire(desc, bytes, &id_del_cols, masked, frame.encoder())?;
            } else {
                transcode_fixed_to_wire(desc, bytes, masked, frame.encoder())?;
            }
            frame.note_row();
            admitted += 1;
        }
        Ok(())
    })?;
    Ok((admitted, skipped))
}

/// Maps a wire-expressible read mode onto the engine's.
fn read_mode(mode: WireReadMode) -> ReadMode {
    match mode {
        WireReadMode::Historical(t) => ReadMode::Historical(t),
        WireReadMode::SeeDeletedHistorical(t) => ReadMode::SeeDeletedHistorical(t),
        // The recovering site already holds a table-granularity read
        // lock (Phase 3); per-page locks would be redundant and would
        // outlive the table lock's release. Latch-only access suffices.
        WireReadMode::SeeDeletedLocked(_) => ReadMode::SeeDeleted,
        WireReadMode::Current(tid) => ReadMode::Current(tid),
    }
}

/// Helper namespace for tuple projections used by recovery queries.
struct Tuple2;

impl Tuple2 {
    /// `(tuple_id, deletion_time)` from a stored tuple: key is the first
    /// user field (column 2).
    fn project_id_del(t: &harbor_common::Tuple) -> DbResult<harbor_common::Tuple> {
        Ok(harbor_common::Tuple::new(vec![
            t.get(2).clone(),
            t.get(1).clone(),
        ]))
    }
}

/// Overwrites the listed user fields.
fn apply_set(user: &[Value], set: &[(u16, Value)]) -> Vec<Value> {
    let mut out = user.to_vec();
    for (i, v) in set {
        if (*i as usize) < out.len() {
            out[*i as usize] = v.clone();
        }
    }
    out
}

/// Spin loop modelling per-transaction CPU work (Fig 6-3).
pub fn simulate_cpu_work(cycles: u64) {
    let mut acc: u64 = 0x9e37_79b9;
    for i in 0..cycles {
        acc = std::hint::black_box(acc.wrapping_mul(6364136223846793005).wrapping_add(i));
    }
    std::hint::black_box(acc);
}

/// Sleeps `total` in short slices, checking the worker's shutdown flag.
fn static_sleep_accumulate(w: &Worker, total: Duration) {
    let mut left = total;
    let slice = Duration::from_millis(20);
    while left > Duration::ZERO && !w.shutdown.load(Ordering::SeqCst) {
        let d = left.min(slice);
        std::thread::sleep(d);
        left = left.saturating_sub(d);
    }
}
