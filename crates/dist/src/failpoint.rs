//! Cluster-wide crash schedules.
//!
//! PR 1 could only crash the *coordinator* at three hand-armed points
//! ([`crate::FailPoint`]). A [`CrashSchedule`] generalizes that to any site:
//! the harness arms `(site, CrashPoint)` pairs up front, and the coordinator
//! and workers probe the schedule at the protocol steps named by
//! [`CrashPoint`]. A fired point is *consumed* — it can never fire twice —
//! and a schedule entry that is armed but never reached simply stays armed
//! until disarmed, so a leftover point cannot leak into a later transaction
//! (the PR-1 `FailPoint` bug this module fixes).
//!
//! Worker-side points make the thesis' cascading-failure cases reachable
//! from tests instead of only by luck: Table 4.1's backup-coordinator rows
//! need workers dying between PREPARE and PTC, and §5.5's buddy-death paths
//! need a site dying *while serving* a Phase-2/Phase-3 recovery scan.

use harbor_common::SiteId;
use parking_lot::Mutex;

/// A protocol step at which a site can be scheduled to crash.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashPoint {
    /// Coordinator: after collecting PREPARE votes, before acting on them.
    CoordAfterPrepare,
    /// Coordinator: after sending PREPARE-TO-COMMIT to `n` workers (3PC).
    CoordAfterPtcSent(usize),
    /// Coordinator: after sending COMMIT to `n` workers.
    CoordAfterCommitSent(usize),
    /// Coordinator: in epoch mode, after the epoch's decision records are
    /// forced but before the COMMIT wave goes out — every decided txn is
    /// durable at the coordinator yet no worker has heard the outcome, so
    /// recovery/consensus must resolve each txn individually.
    CoordAfterEpochForce,
    /// Worker: while handling a PREPARE request, before the vote is sent —
    /// the coordinator sees a dead participant instead of a vote.
    WorkerDuringPrepareVote,
    /// Worker: after receiving a batched PREPARE wave but before voting on
    /// any transaction in it — the whole vote vector is lost and the
    /// coordinator must abort only that worker's txns, not the epoch.
    WorkerDuringBatchPrepare,
    /// Worker: immediately *after* its PREPARE-TO-COMMIT ack is on the wire —
    /// the worker dies in the prepared-to-commit state (Table 4.1 rows where
    /// some participant reached PTC).
    WorkerAfterPtcAck,
    /// Worker: mid-stream while serving a Phase-2 historical recovery scan
    /// to a recovering buddy (§5.5 buddy death → range reassignment).
    WorkerServingPhase2Scan,
    /// Worker: mid-stream while serving a Phase-3 locked catch-up scan.
    WorkerServingPhase3Scan,
    /// Worker: mid-resolution while acting as the elected backup
    /// coordinator — between its consensus broadcasts, so the next-ranked
    /// live participant must take over with the Table 4.1 outcome unchanged.
    WorkerDuringConsensusResolve,
}

impl CrashPoint {
    /// `true` for points probed by the coordinator role.
    pub fn is_coordinator_point(&self) -> bool {
        matches!(
            self,
            CrashPoint::CoordAfterPrepare
                | CrashPoint::CoordAfterPtcSent(_)
                | CrashPoint::CoordAfterCommitSent(_)
                | CrashPoint::CoordAfterEpochForce
        )
    }
}

/// Shared schedule of `(site, point)` crash instructions. One instance is
/// shared by every site of a cluster; arming is thread-safe and firing
/// consumes the entry atomically, so a point fires exactly once even if the
/// probing step races with itself.
#[derive(Debug, Default)]
pub struct CrashSchedule {
    armed: Mutex<Vec<(SiteId, CrashPoint)>>,
}

impl CrashSchedule {
    pub fn new() -> Self {
        CrashSchedule::default()
    }

    /// Arms `point` for `site`. Multiple points may be armed per site.
    pub fn arm(&self, site: SiteId, point: CrashPoint) {
        self.armed.lock().push((site, point));
    }

    /// Consumes and returns the first entry for `site` matching `pred`.
    pub fn take_if(&self, site: SiteId, pred: impl Fn(&CrashPoint) -> bool) -> Option<CrashPoint> {
        let mut armed = self.armed.lock();
        let idx = armed.iter().position(|(s, p)| *s == site && pred(p))?;
        Some(armed.remove(idx).1)
    }

    /// Consumes the exact `(site, point)` entry; `true` if it was armed.
    pub fn fire(&self, site: SiteId, point: CrashPoint) -> bool {
        self.take_if(site, |p| *p == point).is_some()
    }

    /// Disarms every entry for `site` matching `pred` without firing it.
    pub fn disarm_if(&self, site: SiteId, pred: impl Fn(&CrashPoint) -> bool) {
        self.armed.lock().retain(|(s, p)| *s != site || !pred(p));
    }

    /// Entries still armed (diagnostics / leak assertions in tests).
    pub fn armed(&self) -> Vec<(SiteId, CrashPoint)> {
        self.armed.lock().clone()
    }

    pub fn is_empty(&self) -> bool {
        self.armed.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fire_consumes_exactly_once() {
        let s = CrashSchedule::new();
        s.arm(SiteId(1), CrashPoint::WorkerDuringPrepareVote);
        assert!(!s.fire(SiteId(2), CrashPoint::WorkerDuringPrepareVote));
        assert!(!s.fire(SiteId(1), CrashPoint::WorkerAfterPtcAck));
        assert!(s.fire(SiteId(1), CrashPoint::WorkerDuringPrepareVote));
        assert!(
            !s.fire(SiteId(1), CrashPoint::WorkerDuringPrepareVote),
            "a fired point must not fire again"
        );
        assert!(s.is_empty());
    }

    #[test]
    fn take_if_matches_counting_points() {
        let s = CrashSchedule::new();
        s.arm(SiteId(0), CrashPoint::CoordAfterPtcSent(2));
        assert!(s
            .take_if(
                SiteId(0),
                |p| matches!(p, CrashPoint::CoordAfterPtcSent(n) if 1 >= *n)
            )
            .is_none());
        assert_eq!(
            s.take_if(
                SiteId(0),
                |p| matches!(p, CrashPoint::CoordAfterPtcSent(n) if 2 >= *n)
            ),
            Some(CrashPoint::CoordAfterPtcSent(2))
        );
    }

    #[test]
    fn disarm_clears_without_firing() {
        let s = CrashSchedule::new();
        s.arm(SiteId(0), CrashPoint::CoordAfterPrepare);
        s.arm(SiteId(0), CrashPoint::WorkerAfterPtcAck);
        s.disarm_if(SiteId(0), |p| p.is_coordinator_point());
        assert_eq!(s.armed(), vec![(SiteId(0), CrashPoint::WorkerAfterPtcAck)]);
    }
}
