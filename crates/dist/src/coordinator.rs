//! The coordinator site (thesis §4.1, §4.3): originates transactions,
//! queues their logical update requests, distributes them to every live
//! replica, runs the chosen commit protocol, and — for HARBOR recovery —
//! serves the timestamp authority and the join-pending protocol (Fig 5-4).

use crate::failpoint::{CrashPoint, CrashSchedule};
use crate::message::{RemoteScan, Request, Response, UpdateRequest};
use crate::placement::Placement;
use crate::protocol::ProtocolKind;
use crate::{rpc_liveness, scan_rpc_deadline, with_read_retries, DEFAULT_RETRY_BACKOFF};
use harbor_common::codec::Wire;
use harbor_common::time::TimestampAuthority;
use harbor_common::{
    DbError, DbResult, DiskProfile, Metrics, SiteId, Timestamp, TransactionId, Tuple,
};
use harbor_net::{Channel, Transport};
use harbor_wal::record::{LogPayload, LogRecord, TxnOutcome};
use harbor_wal::{GroupCommit, LogManager, Lsn};
use parking_lot::Mutex;
use std::collections::{BTreeSet, HashMap};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

type SharedChan = Arc<Mutex<Box<dyn Channel>>>;

/// Fault-injection points inside the commit protocol (drives the
/// coordinator-failure scenarios of §4.3.3 / Table 4.1). Retained as the
/// coordinator-local arming API; internally each point is an entry in the
/// cluster-wide [`CrashSchedule`], is consumed exactly once when it fires,
/// and is cleared when the transaction finishes on *any* path — an armed
/// point can never leak into a later transaction.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum FailPoint {
    #[default]
    None,
    /// Crash after sending PREPARE (before reading votes).
    AfterPrepare,
    /// Crash after sending PREPARE-TO-COMMIT to `n` workers.
    AfterPtcSentTo(usize),
    /// Crash after sending COMMIT to `n` workers.
    AfterCommitSentTo(usize),
}

/// Construction options.
#[derive(Clone, Debug)]
pub struct CoordinatorConfig {
    pub site: SiteId,
    /// Address of the coordinator's own server (timestamp authority +
    /// recovery announcements).
    pub addr: String,
    pub protocol: ProtocolKind,
    /// Directory for the coordinator's log (2PC variants force a COMMIT /
    /// ABORT record; 3PC variants keep no log, §4.3.3).
    pub log_dir: Option<PathBuf>,
    pub group_commit: GroupCommit,
    pub disk: DiskProfile,
    /// Liveness deadline for one commit-protocol round trip: a participant
    /// that produces no reply for this long is treated as failed even if
    /// its socket never closes (partition detection, complementing §5.5.1's
    /// closed-connection detection).
    pub rpc_deadline: Duration,
    /// Bounded retries for idempotent historical reads (never for
    /// commit-protocol messages).
    pub read_retries: u32,
    /// Cluster-wide crash schedule probed by [`FailPoint`]s.
    pub crash_schedule: Arc<CrashSchedule>,
}

struct TxnInner {
    queue: Vec<UpdateRequest>,
    participants: BTreeSet<SiteId>,
    chans: HashMap<SiteId, SharedChan>,
    /// Set once the commit protocol has snapshotted participants; the
    /// join-pending forwarder skips such transactions.
    committing: bool,
    finished: bool,
}

struct TxnCtx {
    inner: Mutex<TxnInner>,
}

/// A running coordinator.
pub struct Coordinator {
    cfg: CoordinatorConfig,
    placement: Placement,
    transport: Arc<dyn Transport>,
    authority: Arc<TimestampAuthority>,
    wal: Option<Arc<LogManager>>,
    metrics: Metrics,
    txns: Mutex<HashMap<TransactionId, Arc<TxnCtx>>>,
    seq: AtomicU64,
    /// Sites believed down; updates skip them (§4.1: "crashed sites can be
    /// ignored by update queries").
    dead: Mutex<BTreeSet<SiteId>>,
    /// Per-site tables announced online while the site is still recovering
    /// other objects — Fig 5-4's announcement is per-`rec`, so routing is
    /// gated per (site, table) until every object on the site is back.
    partially_online: Mutex<HashMap<SiteId, std::collections::BTreeSet<String>>>,
    shutdown: Arc<AtomicBool>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Coordinator {
    pub fn start(
        cfg: CoordinatorConfig,
        placement: Placement,
        transport: Arc<dyn Transport>,
        metrics: Metrics,
    ) -> DbResult<Arc<Coordinator>> {
        let listener = transport.listen(&cfg.addr)?;
        Self::start_with_listener(cfg, placement, transport, metrics, listener)
    }

    /// As [`start`](Self::start) on an already-bound listener (TCP port 0).
    pub fn start_with_listener(
        mut cfg: CoordinatorConfig,
        placement: Placement,
        transport: Arc<dyn Transport>,
        metrics: Metrics,
        listener: Box<dyn harbor_net::Listener>,
    ) -> DbResult<Arc<Coordinator>> {
        cfg.addr = listener.local_addr();
        let wal = match (&cfg.log_dir, cfg.protocol.coordinator_logs()) {
            (Some(dir), true) => {
                std::fs::create_dir_all(dir)?;
                Some(Arc::new(LogManager::open(
                    dir.join("coordinator.log"),
                    cfg.group_commit,
                    cfg.disk,
                    metrics.clone(),
                )?))
            }
            _ => None,
        };
        let coordinator = Arc::new(Coordinator {
            authority: Arc::new(TimestampAuthority::default()),
            wal,
            metrics,
            txns: Mutex::new(HashMap::new()),
            seq: AtomicU64::new(1),
            dead: Mutex::new(BTreeSet::new()),
            partially_online: Mutex::new(HashMap::new()),
            shutdown: Arc::new(AtomicBool::new(false)),
            handles: Mutex::new(Vec::new()),
            placement,
            transport,
            cfg,
        });
        {
            let c = coordinator.clone();
            let h = std::thread::Builder::new()
                .name("coordinator-server".into())
                .spawn(move || c.server_loop(listener))
                .map_err(|e| DbError::internal(format!("spawn coordinator server: {e}")))?;
            coordinator.handles.lock().push(h);
        }
        Ok(coordinator)
    }

    pub fn site(&self) -> SiteId {
        self.cfg.site
    }

    /// Address of the coordinator's server (timestamp authority + recovery
    /// announcements).
    pub fn addr(&self) -> &str {
        &self.cfg.addr
    }

    pub fn protocol(&self) -> ProtocolKind {
        self.cfg.protocol
    }

    pub fn authority(&self) -> &Arc<TimestampAuthority> {
        &self.authority
    }

    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Arms a fault-injection point for the next commit. Replaces any
    /// coordinator point already armed; `FailPoint::None` disarms.
    pub fn set_fail_point(&self, fp: FailPoint) {
        let sched = &self.cfg.crash_schedule;
        sched.disarm_if(self.cfg.site, |p| p.is_coordinator_point());
        let point = match fp {
            FailPoint::None => return,
            FailPoint::AfterPrepare => CrashPoint::CoordAfterPrepare,
            FailPoint::AfterPtcSentTo(n) => CrashPoint::CoordAfterPtcSent(n),
            FailPoint::AfterCommitSentTo(n) => CrashPoint::CoordAfterCommitSent(n),
        };
        sched.arm(self.cfg.site, point);
    }

    /// One commit-protocol round trip under the liveness deadline.
    fn rpc_live(&self, chan: &mut dyn Channel, req: &Request) -> DbResult<Response> {
        rpc_liveness(chan, req, self.cfg.rpc_deadline, Some(&self.metrics))
    }

    /// Marks a site dead (failure detection normally does this on a
    /// dropped connection; tests may force it).
    pub fn mark_dead(&self, site: SiteId) {
        self.dead.lock().insert(site);
        self.partially_online.lock().remove(&site);
    }

    /// Marks a site fully usable again (all its objects online).
    pub fn mark_alive(&self, site: SiteId) {
        self.dead.lock().remove(&site);
        self.partially_online.lock().remove(&site);
    }

    pub fn is_dead(&self, site: SiteId) -> bool {
        self.dead.lock().contains(&site)
    }

    /// May updates/reads of `table` be routed to `site`? True when the site
    /// is fully alive, or when this specific object has announced it is
    /// coming online (§5.4.2).
    pub fn is_usable(&self, site: SiteId, table: &str) -> bool {
        if !self.dead.lock().contains(&site) {
            return true;
        }
        self.partially_online
            .lock()
            .get(&site)
            .map(|tables| tables.contains(table))
            .unwrap_or(false)
    }

    /// Simulated coordinator crash: stop the server and sever every worker
    /// connection mid-flight.
    pub fn crash(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Drop all per-transaction channels: workers see disconnects.
        let txns: Vec<Arc<TxnCtx>> = self.txns.lock().values().cloned().collect();
        for ctx in txns {
            let mut g = ctx.inner.lock();
            g.chans.clear();
            g.finished = true;
        }
        self.txns.lock().clear();
        let handles: Vec<_> = self.handles.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }

    // ------------------------------------------------------------------
    // Transaction API (one thread per in-flight transaction)
    // ------------------------------------------------------------------

    /// Starts a transaction; returns its id.
    pub fn begin(&self) -> DbResult<TransactionId> {
        if self.shutdown.load(Ordering::SeqCst) {
            return Err(DbError::SiteDown("coordinator crashed".into()));
        }
        let tid = TransactionId::from_parts(self.cfg.site, self.seq.fetch_add(1, Ordering::SeqCst));
        let ctx = Arc::new(TxnCtx {
            inner: Mutex::new(TxnInner {
                queue: Vec::new(),
                participants: BTreeSet::new(),
                chans: HashMap::new(),
                committing: false,
                finished: false,
            }),
        });
        self.txns.lock().insert(tid, ctx);
        Ok(tid)
    }

    fn ctx(&self, tid: TransactionId) -> DbResult<Arc<TxnCtx>> {
        self.txns
            .lock()
            .get(&tid)
            .cloned()
            .ok_or(DbError::UnknownTransaction(tid))
    }

    /// Opens (or reuses) the transaction's channel to `site`, sending
    /// BEGIN on first contact.
    fn ensure_chan(
        &self,
        tid: TransactionId,
        ctx: &Arc<TxnCtx>,
        site: SiteId,
    ) -> DbResult<SharedChan> {
        {
            let g = ctx.inner.lock();
            if let Some(c) = g.chans.get(&site) {
                return Ok(c.clone());
            }
        }
        let addr = self.placement.address(site)?.to_string();
        let mut chan = self.transport.connect(&addr)?;
        match self.rpc_live(chan.as_mut(), &Request::Begin { tid })? {
            Response::Ok => {}
            Response::Err { msg } => return Err(DbError::from_remote_msg(msg)),
            other => return Err(DbError::protocol(format!("bad BEGIN reply {other:?}"))),
        }
        let shared: SharedChan = Arc::new(Mutex::new(chan));
        let mut g = ctx.inner.lock();
        let entry = g
            .chans
            .entry(site)
            .or_insert_with(|| shared.clone())
            .clone();
        g.participants.insert(site);
        Ok(entry)
    }

    /// Queues and distributes one update request to every live site
    /// holding the relevant data (§4.1).
    pub fn update(&self, tid: TransactionId, req: UpdateRequest) -> DbResult<()> {
        let ctx = self.ctx(tid)?;
        // Determine targets and append to the queue under the ctx lock so
        // the join-pending forwarder sees a consistent prefix.
        let targets: Vec<SiteId> = {
            let mut g = ctx.inner.lock();
            g.queue.push(req.clone());
            match req.table() {
                Some(table) => {
                    // Inserts route only to sites whose partition admits
                    // the row; predicate-based updates go to every site
                    // holding any part (the predicate filters locally).
                    let sites = match &req {
                        UpdateRequest::Insert { values, .. } => {
                            self.placement.sites_for_insert(table, values)?
                        }
                        _ => self.placement.sites_for(table)?,
                    };
                    sites
                        .into_iter()
                        .filter(|s| self.is_usable(*s, table))
                        .collect()
                }
                // Table-less work (simulated CPU) goes to current
                // participants.
                None => g.participants.iter().copied().collect(),
            }
        };
        if targets.is_empty() {
            return Err(DbError::Unrecoverable(
                "no live replica available for update".into(),
            ));
        }
        for site in targets {
            let chan = match self.ensure_chan(tid, &ctx, site) {
                Ok(c) => c,
                Err(e) if e.is_disconnect() => {
                    self.mark_dead(site);
                    self.abort(tid)?;
                    return Err(DbError::TransactionAborted(tid));
                }
                Err(e) => return Err(e),
            };
            let resp = {
                let mut c = chan.lock();
                // harbor-lint: allow(lock-across-blocking) — the SharedChan mutex IS the per-site RPC serialization point; no other lock is ever taken under it
                self.rpc_live(
                    &mut **c,
                    &Request::Update {
                        tid,
                        req: req.clone(),
                    },
                )
            };
            match resp {
                Ok(Response::Ok) => {}
                Ok(Response::Err { msg }) => {
                    // Worker could not execute (lock timeout, constraint):
                    // abort everywhere.
                    self.abort(tid)?;
                    return Err(DbError::protocol(format!(
                        "update failed at {site}: {msg}; transaction aborted"
                    )));
                }
                Ok(other) => return Err(DbError::protocol(format!("bad UPDATE reply {other:?}"))),
                Err(_) => {
                    // Worker died mid-transaction (closed connection or an
                    // expired liveness deadline): abort and mark it dead
                    // (Fig 6-7 behaviour). §4.3.5's commit-with-(K-1)-safety
                    // alternative applies only once commit processing has
                    // begun.
                    self.mark_dead(site);
                    self.abort(tid)?;
                    return Err(DbError::TransactionAborted(tid));
                }
            }
        }
        Ok(())
    }

    /// Read-only historical scan against any single live replica (§3.1:
    /// reads go to one site).
    pub fn read_historical(
        &self,
        table: &str,
        as_of: Timestamp,
        scan: impl FnOnce(&mut RemoteScan),
    ) -> DbResult<Vec<Tuple>> {
        let sites = self.placement.sites_for(table)?;
        let mut s = RemoteScan::new(table, crate::message::WireReadMode::Historical(as_of));
        scan(&mut s);
        let mut last_err = DbError::Unrecoverable("no live replica".into());
        for site in sites {
            if !self.is_usable(site, table) {
                continue;
            }
            let addr = self.placement.address(site)?.to_string();
            // Historical reads are idempotent, so a transient timeout or a
            // torn connection earns a bounded retry with backoff before
            // failing over to the next replica.
            let result = with_read_retries(
                Some(&self.metrics),
                self.cfg.read_retries,
                DEFAULT_RETRY_BACKOFF,
                || {
                    let mut chan = self.transport.connect(&addr)?;
                    scan_rpc_deadline(chan.as_mut(), &s, self.cfg.rpc_deadline)
                },
            );
            match result {
                Ok(tuples) => return Ok(tuples),
                Err(e) => last_err = e,
            }
        }
        Err(last_err)
    }

    /// A read *with transactional read locks* inside `tid` — the
    /// "read-only transactions that wish to read the most up-to-date data
    /// use conventional read locks" side of §3.1. Routed to one live
    /// replica that is already (or becomes) a participant, so the locks are
    /// released by the transaction's commit/abort.
    pub fn read_current(
        &self,
        tid: TransactionId,
        table: &str,
        scan: impl FnOnce(&mut RemoteScan),
    ) -> DbResult<Vec<Tuple>> {
        let ctx = self.ctx(tid)?;
        let site = self
            .placement
            .sites_for(table)?
            .into_iter()
            .find(|s| self.is_usable(*s, table))
            .ok_or_else(|| DbError::Unrecoverable("no live replica".into()))?;
        let chan = self.ensure_chan(tid, &ctx, site)?;
        let mut s = RemoteScan::new(table, crate::message::WireReadMode::Current(tid));
        scan(&mut s);
        let mut c = chan.lock();
        // Lock-taking read inside a transaction: single attempt (a retry
        // could double-wait on locks), but still under the liveness deadline.
        // harbor-lint: allow(lock-across-blocking) — the SharedChan mutex IS the per-site RPC serialization point; no other lock is ever taken under it
        scan_rpc_deadline(&mut **c, &s, self.cfg.rpc_deadline)
    }

    /// Commits: runs the configured protocol. Returns the commit time.
    pub fn commit(&self, tid: TransactionId) -> DbResult<Timestamp> {
        let ctx = self.ctx(tid)?;
        let (participants, chans) = {
            let mut g = ctx.inner.lock();
            g.committing = true;
            (
                g.participants.iter().copied().collect::<Vec<_>>(),
                g.chans.clone(),
            )
        };
        if participants.is_empty() {
            // Read-only: nothing to agree on (§4.3: multi-phase protocols
            // apply only to update transactions).
            self.finish(tid, true)?;
            return Ok(self.authority.now().prev());
        }
        // Phase 1: PREPARE.
        let bound = self.authority.now();
        let prepare = Request::Prepare {
            tid,
            workers: participants.clone(),
            time_bound: bound,
        };
        let mut all_yes = true;
        let mut voters_yes: Vec<SiteId> = Vec::new();
        for site in &participants {
            let Some(chan) = chans.get(site) else {
                all_yes = false;
                continue;
            };
            let resp = {
                let mut c = chan.lock();
                // harbor-lint: allow(lock-across-blocking) — the SharedChan mutex IS the per-site RPC serialization point; no other lock is ever taken under it
                self.rpc_live(&mut **c, &prepare)
            };
            match resp {
                Ok(Response::Vote { yes: true }) => voters_yes.push(*site),
                Ok(Response::Vote { yes: false }) => all_yes = false,
                Ok(_) => {
                    // A nonsensical vote means the participant is broken or
                    // the stream is desynchronized; treat it like a dead
                    // participant (= NO vote, §4.3.2) rather than leaving
                    // the transaction half-prepared everywhere else.
                    self.mark_dead(*site);
                    all_yes = false;
                }
                Err(_) => {
                    // No response = NO vote (§4.3.2).
                    self.mark_dead(*site);
                    all_yes = false;
                }
            }
        }
        self.maybe_fail(CrashPoint::CoordAfterPrepare)?;
        if !all_yes {
            self.abort_prepared(tid, &voters_yes, &chans)?;
            self.finish(tid, false)?;
            return Err(DbError::TransactionAborted(tid));
        }
        // All YES: assign the commit time.
        let commit_time = self.authority.next_commit_time();
        if self.cfg.protocol.is_three_phase() {
            // Phase 2: PREPARE-TO-COMMIT; all ACKs = commit point.
            let ptc = Request::PrepareToCommit { tid, commit_time };
            let mut sent = 0usize;
            for site in &participants {
                let Some(chan) = chans.get(site) else {
                    continue;
                };
                let resp = {
                    let mut c = chan.lock();
                    // harbor-lint: allow(lock-across-blocking) — the SharedChan mutex IS the per-site RPC serialization point; no other lock is ever taken under it
                    self.rpc_live(&mut **c, &ptc)
                };
                sent += 1;
                self.maybe_fail_counting(
                    |p| matches!(p, CrashPoint::CoordAfterPtcSent(n) if sent >= *n),
                )?;
                match resp {
                    Ok(Response::Ack) => {}
                    Ok(_) | Err(_) => {
                        // No ack (dead or deadline-expired) or a
                        // protocol-violating ack: commit with the remaining
                        // workers (K-1 safety, §4.3.5) — it will recover or
                        // be fenced.
                        self.mark_dead(*site);
                    }
                }
            }
        } else {
            // 2PC commit point: force-write the COMMIT record.
            if let Some(wal) = &self.wal {
                wal.append_forced(&LogRecord::new(
                    tid,
                    Lsn::NONE,
                    LogPayload::Commit { commit_time },
                ))?;
            }
        }
        // Final phase: COMMIT.
        let commit = Request::Commit { tid, commit_time };
        let mut sent = 0usize;
        for site in &participants {
            let Some(chan) = chans.get(site) else {
                continue;
            };
            let resp = {
                let mut c = chan.lock();
                // harbor-lint: allow(lock-across-blocking) — the SharedChan mutex IS the per-site RPC serialization point; no other lock is ever taken under it
                self.rpc_live(&mut **c, &commit)
            };
            sent += 1;
            self.maybe_fail_counting(
                |p| matches!(p, CrashPoint::CoordAfterCommitSent(n) if sent >= *n),
            )?;
            match resp {
                Ok(Response::Ack) => {}
                Ok(_) | Err(_) => {
                    self.mark_dead(*site); // it will recover the commit
                }
            }
        }
        if let Some(wal) = &self.wal {
            wal.append(&LogRecord::new(
                tid,
                Lsn::NONE,
                LogPayload::End {
                    outcome: TxnOutcome::Committed,
                },
            ));
        }
        self.metrics.add_commits(1);
        self.finish(tid, true)?;
        Ok(commit_time)
    }

    /// Aborts the transaction everywhere.
    pub fn abort(&self, tid: TransactionId) -> DbResult<()> {
        let ctx = match self.ctx(tid) {
            Ok(c) => c,
            Err(_) => return Ok(()), // already finished
        };
        let (participants, chans) = {
            let g = ctx.inner.lock();
            (
                g.participants.iter().copied().collect::<Vec<_>>(),
                g.chans.clone(),
            )
        };
        self.abort_prepared(tid, &participants, &chans)?;
        self.metrics.add_aborts(1);
        self.finish(tid, false)
    }

    fn abort_prepared(
        &self,
        tid: TransactionId,
        sites: &[SiteId],
        chans: &HashMap<SiteId, SharedChan>,
    ) -> DbResult<()> {
        if let Some(wal) = &self.wal {
            wal.append_forced(&LogRecord::new(tid, Lsn::NONE, LogPayload::Abort))?;
        }
        let abort = Request::Abort { tid };
        for site in sites {
            let Some(chan) = chans.get(site) else {
                continue;
            };
            let resp = {
                let mut c = chan.lock();
                // harbor-lint: allow(lock-across-blocking) — the SharedChan mutex IS the per-site RPC serialization point; no other lock is ever taken under it
                self.rpc_live(&mut **c, &abort)
            };
            if resp.is_err() {
                self.mark_dead(*site);
            }
        }
        if let Some(wal) = &self.wal {
            wal.append(&LogRecord::new(
                tid,
                Lsn::NONE,
                LogPayload::End {
                    outcome: TxnOutcome::Aborted,
                },
            ));
        }
        Ok(())
    }

    /// Cleans up a finished transaction ("the coordinator can safely delete
    /// this queue when the transaction commits or aborts", §4.1). Also
    /// disarms any still-armed coordinator fail point: a point armed for a
    /// transaction that never reached it (e.g. `AfterPtcSentTo` on a
    /// transaction that aborted at PREPARE) must not survive to fire in a
    /// later, unrelated commit.
    fn finish(&self, tid: TransactionId, _committed: bool) -> DbResult<()> {
        if let Some(ctx) = self.txns.lock().remove(&tid) {
            let mut g = ctx.inner.lock();
            g.finished = true;
            g.queue.clear();
            g.chans.clear();
        }
        self.cfg
            .crash_schedule
            .disarm_if(self.cfg.site, |p| p.is_coordinator_point());
        Ok(())
    }

    fn maybe_fail(&self, at: CrashPoint) -> DbResult<()> {
        if self.cfg.crash_schedule.fire(self.cfg.site, at) {
            self.crash();
            return Err(DbError::SiteDown("coordinator crashed (fail point)".into()));
        }
        Ok(())
    }

    /// Fires a counting point (`AfterPtcSentTo(n)` / `AfterCommitSentTo(n)`)
    /// once the caller's predicate says the threshold is reached.
    fn maybe_fail_counting(&self, pred: impl Fn(&CrashPoint) -> bool) -> DbResult<()> {
        if self
            .cfg
            .crash_schedule
            .take_if(self.cfg.site, pred)
            .is_some()
        {
            self.crash();
            return Err(DbError::SiteDown("coordinator crashed (fail point)".into()));
        }
        Ok(())
    }

    /// Number of in-flight transactions (tests).
    pub fn inflight(&self) -> usize {
        self.txns.lock().len()
    }

    // ------------------------------------------------------------------
    // Coordinator server: timestamp authority + join-pending (Fig 5-4)
    // ------------------------------------------------------------------

    fn server_loop(self: &Arc<Self>, listener: Box<dyn harbor_net::Listener>) {
        while !self.shutdown.load(Ordering::SeqCst) {
            match listener.accept_timeout(Duration::from_millis(50)) {
                Ok(Some(chan)) => {
                    let c = self.clone();
                    let spawned = std::thread::Builder::new()
                        .name("coordinator-conn".into())
                        .spawn(move || c.serve_connection(chan));
                    // Dropping the un-spawned closure closes the connection;
                    // the worker retries against a live server rather than
                    // the whole loop dying.
                    if let Ok(h) = spawned {
                        self.handles.lock().push(h);
                    }
                }
                Ok(None) => {}
                Err(_) => break,
            }
        }
    }

    fn serve_connection(self: &Arc<Self>, mut chan: Box<dyn Channel>) {
        loop {
            let frame = match chan.recv_timeout(Duration::from_millis(50)) {
                Ok(Some(f)) => f,
                Ok(None) => {
                    if self.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    continue;
                }
                Err(_) => return,
            };
            let req = match Request::from_slice(&frame) {
                Ok(r) => r,
                Err(_) => return,
            };
            let resp = match req {
                Request::Ping => Response::Ok,
                Request::GetTime => Response::Time {
                    now: self.authority.now(),
                },
                Request::RecComingOnline { site, table } => match self.handle_join(site, &table) {
                    Ok(()) => Response::AllDone,
                    Err(e) => Response::Err { msg: e.to_string() },
                },
                _ => Response::Err {
                    msg: "not a coordinator request".into(),
                },
            };
            if chan.send(&resp.to_vec()).is_err() {
                return;
            }
        }
    }

    /// Fig 5-4: `table` on `site` is coming online. Mark the site usable
    /// for new transactions, and for every pending transaction that
    /// already touched the table, forward its queued update requests so
    /// the recoverer joins it; the `AllDone` reply is sent by the caller
    /// once this returns.
    fn handle_join(self: &Arc<Self>, site: SiteId, table: &str) -> DbResult<()> {
        // Gate routing per object: only `table` starts receiving updates
        // now; the site becomes fully alive once every object placed on it
        // has announced (§5.4.2 is per-`rec`).
        {
            let mut partial = self.partially_online.lock();
            let tables = partial.entry(site).or_default();
            tables.insert(table.to_string());
            let all_on_site: std::collections::BTreeSet<String> = self
                .placement
                .objects_on(site)
                .into_iter()
                .map(|(name, _)| name)
                .collect();
            if all_on_site.is_subset(tables) {
                drop(partial);
                self.mark_alive(site);
            }
        }
        let pending: Vec<(TransactionId, Arc<TxnCtx>)> = self
            .txns
            .lock()
            .iter()
            .map(|(t, c)| (*t, c.clone()))
            .collect();
        let mut doomed: Vec<TransactionId> = Vec::new();
        for (tid, ctx) in pending {
            // Snapshot the backlog under the lock but forward it OUTSIDE:
            // connect + RPC under the held ctx mutex would stall every
            // concurrent update/commit on this transaction for full network
            // round trips (and is exactly the guard-across-blocking class
            // harbor-lint flags). The queue only grows while the txn is
            // live, so forwarding resumes from the last sent index until
            // the locked view and the forwarded prefix agree, and only then
            // registers the participant — still under the lock, with no
            // blocking call in scope.
            let mut sent = 0usize;
            let mut chan: Option<Box<dyn Channel>> = None;
            'txn: loop {
                let backlog: Vec<UpdateRequest> = {
                    let mut g = ctx.inner.lock();
                    let stale = g.finished || g.committing || g.participants.contains(&site);
                    let relevant = g
                        .queue
                        .iter()
                        .any(|u| u.table().map(|t| t == table).unwrap_or(false));
                    if stale || !relevant {
                        drop(g);
                        // A BEGIN may already have reached the new site for
                        // a transaction we will not register (it finished or
                        // entered commit while we forwarded): roll the stray
                        // back so its locks release now, not by timeout.
                        if let Some(mut c) = chan.take() {
                            let _ = rpc_expect_ok(
                                c.as_mut(),
                                &Request::Abort { tid },
                                self.cfg.rpc_deadline,
                            );
                        }
                        break 'txn;
                    }
                    if g.queue.len() == sent {
                        if let Some(c) = chan.take() {
                            g.participants.insert(site);
                            g.chans.insert(site, Arc::new(Mutex::new(c)));
                        }
                        break 'txn;
                    }
                    g.queue[sent..].to_vec()
                };
                // Forward: fresh connection + BEGIN on the first pass, then
                // the unsent backlog suffix.
                let forwarded: DbResult<()> = (|| {
                    let c = match &mut chan {
                        Some(c) => c,
                        None => {
                            let addr = self.placement.address(site)?.to_string();
                            let mut fresh = self.transport.connect(&addr)?;
                            rpc_expect_ok(
                                fresh.as_mut(),
                                &Request::Begin { tid },
                                self.cfg.rpc_deadline,
                            )?;
                            chan.insert(fresh)
                        }
                    };
                    for u in &backlog {
                        let forward = match u.table() {
                            Some(t) if t == table => true,
                            Some(_) => false,
                            None => true, // CPU work applies everywhere
                        };
                        if forward {
                            rpc_expect_ok(
                                c.as_mut(),
                                &Request::Update {
                                    tid,
                                    req: u.clone(),
                                },
                                self.cfg.rpc_deadline,
                            )?;
                        }
                    }
                    Ok(())
                })();
                match forwarded {
                    Ok(()) => sent += backlog.len(),
                    // The backlog would not replay — typically a lock
                    // timeout against the recoverer's own Phase-3 locks, a
                    // deadlock the victim cannot see (it is blocked in this
                    // very RPC). The *transaction* is the loser (§5.4.1:
                    // deadlocks resolve by timeout), not the join: abort it
                    // and bring the site online.
                    Err(_) => {
                        doomed.push(tid);
                        break 'txn;
                    }
                }
            }
        }
        for tid in doomed {
            let _ = self.abort(tid);
        }
        Ok(())
    }
}

fn rpc_expect_ok(chan: &mut dyn Channel, req: &Request, deadline: Duration) -> DbResult<()> {
    match rpc_liveness(chan, req, deadline, None)? {
        Response::Ok => Ok(()),
        // Preserve the error class across the wire: a worker that tripped
        // on a corrupt page must not read as a protocol violation.
        Response::Err { msg } => Err(DbError::from_remote_msg(msg)),
        other => Err(DbError::protocol(format!("unexpected reply {other:?}"))),
    }
}
