//! The coordinator site (thesis §4.1, §4.3): originates transactions,
//! queues their logical update requests, distributes them to every live
//! replica, runs the chosen commit protocol, and — for HARBOR recovery —
//! serves the timestamp authority and the join-pending protocol (Fig 5-4).

use crate::failpoint::{CrashPoint, CrashSchedule};
use crate::message::{RemoteScan, Request, Response, UpdateRequest, WireTxnState};
use crate::placement::SharedPlacement;
use crate::protocol::ProtocolKind;
use crate::{rpc_liveness, scan_rpc_deadline, with_read_retries, DEFAULT_RETRY_BACKOFF};
use harbor_common::codec::Wire;
use harbor_common::time::TimestampAuthority;
use harbor_common::{
    DbError, DbResult, DiskProfile, Metrics, RetryPolicy, SiteId, Timestamp, TransactionId, Tuple,
};
use harbor_net::{Channel, Transport};
use harbor_wal::record::{LogPayload, LogRecord, TxnOutcome};
use harbor_wal::{GroupCommit, LogManager, Lsn};
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeSet, HashMap};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

type SharedChan = Arc<Mutex<Box<dyn Channel>>>;

/// Fault-injection points inside the commit protocol (drives the
/// coordinator-failure scenarios of §4.3.3 / Table 4.1). Retained as the
/// coordinator-local arming API; internally each point is an entry in the
/// cluster-wide [`CrashSchedule`], is consumed exactly once when it fires,
/// and is cleared when the transaction finishes on *any* path — an armed
/// point can never leak into a later transaction.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum FailPoint {
    #[default]
    None,
    /// Crash after sending PREPARE (before reading votes).
    AfterPrepare,
    /// Crash after sending PREPARE-TO-COMMIT to `n` workers.
    AfterPtcSentTo(usize),
    /// Crash after sending COMMIT to `n` workers.
    AfterCommitSentTo(usize),
}

/// Epoch group commit: the coordinator batches independent transactions
/// into *commit epochs* — one PREPARE wave carrying a vector of txn ids per
/// participating worker, per-txn vote vectors back, one forced log write
/// covering every decision record of the epoch, one COMMIT wave, vectored
/// acks. A NO vote or a dead worker aborts only the affected transactions,
/// never the epoch. Applies to the 2PC variants only (the 3PC variants keep
/// the paper-faithful serial path); `None` disables batching everywhere.
#[derive(Clone, Copy, Debug)]
pub struct EpochCommitConfig {
    /// Maximum transactions per epoch.
    pub max_txns: usize,
    /// How long an open epoch waits to accumulate more transactions once it
    /// has its first.
    pub max_wait: Duration,
    /// Epochs allowed in flight at once: epoch N+1's PREPARE wave overlaps
    /// epoch N's commit wave.
    pub pipeline_depth: usize,
}

impl Default for EpochCommitConfig {
    fn default() -> Self {
        EpochCommitConfig {
            max_txns: 16,
            max_wait: Duration::from_micros(500),
            pipeline_depth: 2,
        }
    }
}

/// Construction options.
#[derive(Clone, Debug)]
pub struct CoordinatorConfig {
    pub site: SiteId,
    /// Address of the coordinator's own server (timestamp authority +
    /// recovery announcements).
    pub addr: String,
    pub protocol: ProtocolKind,
    /// Directory for the coordinator's log (2PC variants force a COMMIT /
    /// ABORT record; 3PC variants keep no log, §4.3.3).
    pub log_dir: Option<PathBuf>,
    pub group_commit: GroupCommit,
    pub disk: DiskProfile,
    /// Liveness deadline for one commit-protocol round trip: a participant
    /// that produces no reply for this long is treated as failed even if
    /// its socket never closes (partition detection, complementing §5.5.1's
    /// closed-connection detection).
    pub rpc_deadline: Duration,
    /// Bounded retries for idempotent historical reads (never for
    /// commit-protocol messages).
    pub read_retries: u32,
    /// Cluster-wide crash schedule probed by [`FailPoint`]s.
    pub crash_schedule: Arc<CrashSchedule>,
    /// Batch commits into epochs (2PC variants only; `None` = the serial
    /// paper-faithful path).
    pub epoch_commit: Option<EpochCommitConfig>,
    /// Refuse updates to any object down to its *last* live copy
    /// ([`DbError::Degraded`]) instead of committing with zero surviving
    /// replicas. Off by default: the paper's model keeps accepting updates
    /// below K (a single-copy commit is durable-but-fragile, §4.3.5), and
    /// several crash-recovery tests exercise exactly that; clusters running
    /// the replication supervisor opt in for the stronger floor.
    pub degrade_read_only: bool,
}

struct TxnInner {
    queue: Vec<UpdateRequest>,
    participants: BTreeSet<SiteId>,
    chans: HashMap<SiteId, SharedChan>,
    /// Set once the commit protocol has snapshotted participants; the
    /// join-pending forwarder skips such transactions.
    committing: bool,
    finished: bool,
}

struct TxnCtx {
    inner: Mutex<TxnInner>,
}

/// Where a client thread parks while its transaction rides a commit epoch.
#[derive(Default)]
struct CommitWaiter {
    slot: Mutex<Option<DbResult<Timestamp>>>,
    cond: Condvar,
}

impl CommitWaiter {
    /// First resolution wins; later ones are ignored.
    fn resolve(&self, res: DbResult<Timestamp>) {
        let mut slot = self.slot.lock();
        if slot.is_none() {
            *slot = Some(res);
        }
        drop(slot);
        self.cond.notify_all();
    }
}

/// One transaction queued for the next epoch.
struct PendingCommit {
    tid: TransactionId,
    participants: Vec<SiteId>,
    waiter: Arc<CommitWaiter>,
}

/// Shared state between client threads, the epoch scheduler, and the
/// per-epoch runner threads.
struct EpochState {
    cfg: EpochCommitConfig,
    pending: Mutex<Vec<PendingCommit>>,
    pending_cond: Condvar,
    /// Epochs currently running their waves; bounded by `pipeline_depth`.
    inflight: Mutex<usize>,
    inflight_cond: Condvar,
    epoch_seq: AtomicU64,
}

/// A running coordinator.
pub struct Coordinator {
    cfg: CoordinatorConfig,
    placement: SharedPlacement,
    transport: Arc<dyn Transport>,
    authority: Arc<TimestampAuthority>,
    wal: Option<Arc<LogManager>>,
    metrics: Metrics,
    txns: Mutex<HashMap<TransactionId, Arc<TxnCtx>>>,
    seq: AtomicU64,
    /// Sites believed down; updates skip them (§4.1: "crashed sites can be
    /// ignored by update queries").
    dead: Mutex<BTreeSet<SiteId>>,
    /// Per-site tables announced online while the site is still recovering
    /// other objects — Fig 5-4's announcement is per-`rec`, so routing is
    /// gated per (site, table) until every object on the site is back.
    partially_online: Mutex<HashMap<SiteId, std::collections::BTreeSet<String>>>,
    /// `(site, table)` copies being bootstrapped onto an otherwise-live
    /// site (supervisor re-replication): routing must skip exactly this
    /// object on this site — the rest of the site keeps serving — until
    /// its Fig 5-4 announcement lands. The joining-site case is handled by
    /// the coarser `dead` + `partially_online` gates instead.
    bootstrapping: Mutex<BTreeSet<(SiteId, String)>>,
    shutdown: Arc<AtomicBool>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// Present iff epoch group commit is active (2PC variants with
    /// `epoch_commit` configured).
    epoch: Option<Arc<EpochState>>,
    /// Commit decisions this coordinator is the authority for: tid → commit
    /// time, recorded the moment the COMMIT record is durable (2PC) or the
    /// commit point passes (3PC), and rebuilt from the log on restart.
    /// In-doubt 2PC workers resolve against this table (presumed abort for
    /// finished transactions it does not contain) instead of the worker-only
    /// §4.3.3 consensus, which is sound only under 3PC's lock-step states.
    decided_commits: Mutex<HashMap<TransactionId, Timestamp>>,
}

impl Coordinator {
    pub fn start(
        cfg: CoordinatorConfig,
        placement: impl Into<SharedPlacement>,
        transport: Arc<dyn Transport>,
        metrics: Metrics,
    ) -> DbResult<Arc<Coordinator>> {
        let listener = transport.listen(&cfg.addr)?;
        Self::start_with_listener(cfg, placement, transport, metrics, listener)
    }

    /// As [`start`](Self::start) on an already-bound listener (TCP port 0).
    /// `placement` may be a plain [`Placement`] (wrapped into its own
    /// [`SharedPlacement`]) or a handle shared with the cluster facade, so
    /// membership mutations are visible to both sides.
    pub fn start_with_listener(
        mut cfg: CoordinatorConfig,
        placement: impl Into<SharedPlacement>,
        transport: Arc<dyn Transport>,
        metrics: Metrics,
        listener: Box<dyn harbor_net::Listener>,
    ) -> DbResult<Arc<Coordinator>> {
        let placement = placement.into();
        cfg.addr = listener.local_addr();
        let wal = match (&cfg.log_dir, cfg.protocol.coordinator_logs()) {
            (Some(dir), true) => {
                std::fs::create_dir_all(dir)?;
                Some(Arc::new(LogManager::open(
                    dir.join("coordinator.log"),
                    cfg.group_commit,
                    cfg.disk,
                    metrics.clone(),
                )?))
            }
            _ => None,
        };
        // Rebuild the decided-commit table from the surviving log: after a
        // coordinator restart, in-doubt 2PC workers re-ask for outcomes whose
        // COMMIT records were forced by the previous incarnation.
        let mut decided_commits = HashMap::new();
        if let Some(wal) = &wal {
            for (_, rec) in wal.scan(Lsn::ZERO)? {
                if let LogPayload::Commit { commit_time } = rec.payload {
                    decided_commits.insert(rec.tid, commit_time);
                }
            }
        }
        // Epoch batching applies only to the 2PC variants; the 3PC variants
        // keep the serial paper-faithful path regardless of config.
        let epoch = match (cfg.epoch_commit, cfg.protocol.is_three_phase()) {
            (Some(ecfg), false) => Some(Arc::new(EpochState {
                cfg: ecfg,
                pending: Mutex::new(Vec::new()),
                pending_cond: Condvar::new(),
                inflight: Mutex::new(0),
                inflight_cond: Condvar::new(),
                epoch_seq: AtomicU64::new(0),
            })),
            _ => None,
        };
        let coordinator = Arc::new(Coordinator {
            authority: Arc::new(TimestampAuthority::default()),
            wal,
            metrics,
            txns: Mutex::new(HashMap::new()),
            seq: AtomicU64::new(1),
            dead: Mutex::new(BTreeSet::new()),
            partially_online: Mutex::new(HashMap::new()),
            bootstrapping: Mutex::new(BTreeSet::new()),
            shutdown: Arc::new(AtomicBool::new(false)),
            handles: Mutex::new(Vec::new()),
            placement,
            transport,
            epoch,
            decided_commits: Mutex::new(decided_commits),
            cfg,
        });
        {
            let c = coordinator.clone();
            let h = std::thread::Builder::new()
                .name("coordinator-server".into())
                .spawn(move || c.server_loop(listener))
                .map_err(|e| DbError::internal(format!("spawn coordinator server: {e}")))?;
            coordinator.handles.lock().push(h);
        }
        if let Some(es) = coordinator.epoch.clone() {
            let c = coordinator.clone();
            let h = std::thread::Builder::new()
                .name("epoch-scheduler".into())
                .spawn(move || c.epoch_scheduler(es))
                .map_err(|e| DbError::internal(format!("spawn epoch scheduler: {e}")))?;
            coordinator.handles.lock().push(h);
        }
        Ok(coordinator)
    }

    pub fn site(&self) -> SiteId {
        self.cfg.site
    }

    /// Address of the coordinator's server (timestamp authority + recovery
    /// announcements).
    pub fn addr(&self) -> &str {
        &self.cfg.addr
    }

    pub fn protocol(&self) -> ProtocolKind {
        self.cfg.protocol
    }

    pub fn authority(&self) -> &Arc<TimestampAuthority> {
        &self.authority
    }

    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    pub fn placement(&self) -> &SharedPlacement {
        &self.placement
    }

    /// Arms a fault-injection point for the next commit. Replaces any
    /// coordinator point already armed; `FailPoint::None` disarms.
    pub fn set_fail_point(&self, fp: FailPoint) {
        let sched = &self.cfg.crash_schedule;
        sched.disarm_if(self.cfg.site, |p| p.is_coordinator_point());
        let point = match fp {
            FailPoint::None => return,
            FailPoint::AfterPrepare => CrashPoint::CoordAfterPrepare,
            FailPoint::AfterPtcSentTo(n) => CrashPoint::CoordAfterPtcSent(n),
            FailPoint::AfterCommitSentTo(n) => CrashPoint::CoordAfterCommitSent(n),
        };
        sched.arm(self.cfg.site, point);
    }

    /// One commit-protocol round trip under the liveness deadline.
    fn rpc_live(&self, chan: &mut dyn Channel, req: &Request) -> DbResult<Response> {
        rpc_liveness(chan, req, self.cfg.rpc_deadline, Some(&self.metrics))
    }

    /// Marks a site dead (failure detection normally does this on a
    /// dropped connection; tests may force it).
    pub fn mark_dead(&self, site: SiteId) {
        self.dead.lock().insert(site);
        self.partially_online.lock().remove(&site);
    }

    /// Marks a site fully usable again (all its objects online).
    pub fn mark_alive(&self, site: SiteId) {
        self.dead.lock().remove(&site);
        self.partially_online.lock().remove(&site);
    }

    pub fn is_dead(&self, site: SiteId) -> bool {
        self.dead.lock().contains(&site)
    }

    /// The coordinator's authoritative answer for a transaction's outcome:
    /// committed iff its COMMIT record was forced here (2PC) or its commit
    /// point passed (3PC); still-running transactions report `Pending`;
    /// everything else is aborted by presumed abort. In-doubt 2PC workers
    /// dispatch on this instead of running worker-only consensus.
    pub fn txn_outcome(&self, tid: TransactionId) -> WireTxnState {
        if let Some(t) = self.decided_commits.lock().get(&tid) {
            return WireTxnState::Committed(*t);
        }
        if self.txns.lock().contains_key(&tid) {
            return WireTxnState::Pending;
        }
        WireTxnState::Aborted
    }

    /// May updates/reads of `table` be routed to `site`? True when the site
    /// is fully alive, or when this specific object has announced it is
    /// coming online (§5.4.2) — and never while this object is being
    /// bootstrapped onto the site by re-replication (its copy is
    /// incomplete; updates reach it through the recovery catch-up instead).
    pub fn is_usable(&self, site: SiteId, table: &str) -> bool {
        if self
            .bootstrapping
            .lock()
            .contains(&(site, table.to_string()))
        {
            return false;
        }
        if !self.dead.lock().contains(&site) {
            return true;
        }
        self.partially_online
            .lock()
            .get(&site)
            .map(|tables| tables.contains(table))
            .unwrap_or(false)
    }

    // ------------------------------------------------------------------
    // Membership: join, decommission, re-replication bookkeeping
    // ------------------------------------------------------------------

    /// In-flight transaction count — the supervisor's admission-throttle
    /// input: re-replication yields while the commit path is busy.
    pub fn inflight_txns(&self) -> usize {
        self.txns.lock().len()
    }

    /// Admits a brand-new site at `addr`: registers it in the address book
    /// and allocates a join-pending full copy of every table on it. The
    /// site starts *down* — it routes no traffic until it bootstraps each
    /// object through the ordinary recovery path and the Fig 5-4
    /// announcements flip it live, object by object.
    pub fn admit_site(&self, site: SiteId, addr: &str) -> DbResult<()> {
        self.placement.mutate(|p| {
            if p.is_member(site) {
                return Err(DbError::internal(format!("{site} is already a member")));
            }
            if !p.objects_on(site).is_empty() {
                return Err(DbError::internal(format!(
                    "stale catalog: non-member {site} already holds parts"
                )));
            }
            p.set_address(site, addr);
            for table in p.table_names() {
                p.add_full_copy(&table, site)?;
            }
            Ok(())
        })?;
        self.mark_dead(site);
        self.metrics.add_joins(1);
        Ok(())
    }

    /// Allocates a join-pending copy of one `table` on an *existing* member
    /// (supervisor re-replication onto a surviving site). Routing skips
    /// exactly this object on this site until its announcement lands; the
    /// rest of the site keeps serving.
    pub fn begin_bootstrap(&self, site: SiteId, table: &str) -> DbResult<()> {
        self.placement.mutate(|p| {
            if !p.is_member(site) {
                return Err(DbError::internal(format!("{site} is not a member")));
            }
            p.add_full_copy(table, site)
        })?;
        self.bootstrapping.lock().insert((site, table.to_string()));
        Ok(())
    }

    /// Rolls back a failed single-table bootstrap: the half-built copy is
    /// dropped from the catalog and the routing gate lifted.
    pub fn abandon_bootstrap(&self, site: SiteId, table: &str) {
        self.bootstrapping.lock().remove(&(site, table.to_string()));
        self.placement.mutate(|p| p.abort_copy_join(table, site));
    }

    /// Rolls back a failed whole-site join: every copy on `site` leaves the
    /// catalog along with its address-book entry. Returns the affected
    /// tables.
    pub fn evict_site(&self, site: SiteId) -> DbResult<Vec<String>> {
        let affected = self.placement.mutate(|p| p.remove_site(site))?;
        self.dead.lock().remove(&site);
        self.partially_online.lock().remove(&site);
        self.bootstrapping.lock().retain(|(s, _)| *s != site);
        Ok(affected)
    }

    /// Gracefully retires `site`: stops routing new work to it, drains
    /// every in-flight transaction (and thus every in-flight commit epoch)
    /// it participates in, then drops its copies from the catalog and its
    /// address-book entry. Refuses — leaving membership untouched — if a
    /// table would lose its last copy or the drain does not converge.
    /// Returns the tables whose replication factor shrank.
    pub fn decommission_site(&self, site: SiteId) -> DbResult<Vec<String>> {
        if !self.placement.is_member(site) {
            return Err(DbError::internal(format!("{site} is not a member")));
        }
        // Stop routing new transactions to the site; remember whether it
        // was live so a refused decommission can restore it.
        let newly_marked = self.dead.lock().insert(site);
        let restore = |this: &Self| {
            if newly_marked {
                this.dead.lock().remove(&site);
            }
        };
        // Drain: in-flight transactions (including those riding open commit
        // epochs) finish their protocol with the full participant set; only
        // a *quiet* site can leave without voting holes.
        let policy = RetryPolicy::new(
            400,
            Duration::from_millis(2),
            Duration::from_millis(25),
            0xDECA_0FF5,
        );
        let mut attempt = 0u32;
        loop {
            // Snapshot the contexts first: holding the registry lock while
            // taking each per-txn lock would invert the txns → inner rank.
            let ctxs: Vec<Arc<TxnCtx>> = self.txns.lock().values().cloned().collect();
            let busy = ctxs.iter().any(|ctx| {
                let g = ctx.inner.lock();
                !g.finished && g.participants.contains(&site)
            });
            if !busy {
                break;
            }
            if attempt >= policy.attempts {
                restore(self);
                return Err(DbError::internal(format!(
                    "decommission of {site} timed out draining in-flight transactions"
                )));
            }
            std::thread::sleep(policy.delay(attempt));
            attempt += 1;
        }
        match self.placement.mutate(|p| p.remove_site(site)) {
            Ok(affected) => {
                self.dead.lock().remove(&site);
                self.partially_online.lock().remove(&site);
                self.bootstrapping.lock().retain(|(s, _)| *s != site);
                self.metrics.add_decommissions(1);
                Ok(affected)
            }
            Err(e) => {
                restore(self);
                Err(e)
            }
        }
    }

    /// Simulated coordinator crash: stop the server and sever every worker
    /// connection mid-flight.
    pub fn crash(&self) {
        self.initiate_crash();
        let handles: Vec<_> = self.handles.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }

    /// The crash itself, without reaping threads. Epoch runner and scheduler
    /// threads fire crash points from inside threads tracked in `handles`,
    /// and a thread cannot join itself — they call this and unwind; the
    /// harness's eventual external [`crash`](Self::crash) joins them.
    fn initiate_crash(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Drop all per-transaction channels: workers see disconnects.
        let txns: Vec<Arc<TxnCtx>> = self.txns.lock().values().cloned().collect();
        for ctx in txns {
            let mut g = ctx.inner.lock();
            g.chans.clear();
            g.finished = true;
        }
        self.txns.lock().clear();
        // Wake parked epoch clients so they observe the shutdown flag.
        if let Some(es) = &self.epoch {
            let leftovers: Vec<PendingCommit> = es.pending.lock().drain(..).collect();
            for p in leftovers {
                p.waiter
                    .resolve(Err(DbError::SiteDown("coordinator crashed".into())));
            }
            es.pending_cond.notify_all();
            es.inflight_cond.notify_all();
        }
    }

    // ------------------------------------------------------------------
    // Transaction API (one thread per in-flight transaction)
    // ------------------------------------------------------------------

    /// Starts a transaction; returns its id.
    pub fn begin(&self) -> DbResult<TransactionId> {
        if self.shutdown.load(Ordering::SeqCst) {
            return Err(DbError::SiteDown("coordinator crashed".into()));
        }
        let tid = TransactionId::from_parts(self.cfg.site, self.seq.fetch_add(1, Ordering::SeqCst));
        let ctx = Arc::new(TxnCtx {
            inner: Mutex::new(TxnInner {
                queue: Vec::new(),
                participants: BTreeSet::new(),
                chans: HashMap::new(),
                committing: false,
                finished: false,
            }),
        });
        self.txns.lock().insert(tid, ctx);
        Ok(tid)
    }

    fn ctx(&self, tid: TransactionId) -> DbResult<Arc<TxnCtx>> {
        self.txns
            .lock()
            .get(&tid)
            .cloned()
            .ok_or(DbError::UnknownTransaction(tid))
    }

    /// Opens (or reuses) the transaction's channel to `site`, sending
    /// BEGIN on first contact.
    fn ensure_chan(
        &self,
        tid: TransactionId,
        ctx: &Arc<TxnCtx>,
        site: SiteId,
    ) -> DbResult<SharedChan> {
        {
            let g = ctx.inner.lock();
            if let Some(c) = g.chans.get(&site) {
                return Ok(c.clone());
            }
        }
        let addr = self.placement.address(site)?;
        let mut chan = self.transport.connect(&addr)?;
        match self.rpc_live(chan.as_mut(), &Request::Begin { tid })? {
            Response::Ok => {}
            Response::Err { msg } => return Err(DbError::from_remote_msg(msg)),
            other => return Err(DbError::protocol(format!("bad BEGIN reply {other:?}"))),
        }
        let shared: SharedChan = Arc::new(Mutex::new(chan));
        let mut g = ctx.inner.lock();
        let entry = g
            .chans
            .entry(site)
            .or_insert_with(|| shared.clone())
            .clone();
        g.participants.insert(site);
        Ok(entry)
    }

    /// Queues and distributes one update request to every live site
    /// holding the relevant data (§4.1).
    pub fn update(&self, tid: TransactionId, req: UpdateRequest) -> DbResult<()> {
        let ctx = self.ctx(tid)?;
        // Determine targets and append to the queue under the ctx lock so
        // the join-pending forwarder sees a consistent prefix.
        let targets: Vec<SiteId> = {
            let mut g = ctx.inner.lock();
            g.queue.push(req.clone());
            match req.table() {
                Some(table) => {
                    // Inserts route only to sites whose partition admits
                    // the row; predicate-based updates go to every site
                    // holding any part (the predicate filters locally).
                    let sites = match &req {
                        UpdateRequest::Insert { values, .. } => {
                            self.placement.sites_for_insert(table, values)?
                        }
                        _ => self.placement.sites_for(table)?,
                    };
                    let placed = sites.len();
                    let live: Vec<SiteId> = sites
                        .into_iter()
                        .filter(|s| self.is_usable(*s, table))
                        .collect();
                    // Read-only degradation floor (opt-in): an object that
                    // was placed redundantly but is down to one live copy
                    // refuses updates — committing against a single replica
                    // leaves no survivor if it dies — until the supervisor
                    // re-replicates it back above the floor.
                    if self.cfg.degrade_read_only && placed >= 2 && live.len() <= 1 {
                        return Err(DbError::degraded(format!(
                            "{table:?} is down to {} of {placed} placed copies; \
                             updates refused until re-replication restores K",
                            live.len()
                        )));
                    }
                    live
                }
                // Table-less work (simulated CPU) goes to current
                // participants.
                None => g.participants.iter().copied().collect(),
            }
        };
        if targets.is_empty() {
            return Err(DbError::Unrecoverable(
                "no live replica available for update".into(),
            ));
        }
        for site in targets {
            let chan = match self.ensure_chan(tid, &ctx, site) {
                Ok(c) => c,
                Err(e) if e.is_disconnect() => {
                    self.mark_dead(site);
                    self.abort(tid)?;
                    return Err(DbError::TransactionAborted(tid));
                }
                Err(e) => return Err(e),
            };
            let resp = {
                let mut c = chan.lock();
                // harbor-lint: allow(lock-across-blocking) — the SharedChan mutex IS the per-site RPC serialization point; no other lock is ever taken under it
                self.rpc_live(
                    &mut **c,
                    &Request::Update {
                        tid,
                        req: req.clone(),
                    },
                )
            };
            match resp {
                Ok(Response::Ok) => {}
                Ok(Response::Err { msg }) => {
                    // Worker could not execute (lock timeout, constraint):
                    // abort everywhere.
                    self.abort(tid)?;
                    return Err(DbError::protocol(format!(
                        "update failed at {site}: {msg}; transaction aborted"
                    )));
                }
                Ok(other) => return Err(DbError::protocol(format!("bad UPDATE reply {other:?}"))),
                Err(_) => {
                    // Worker died mid-transaction (closed connection or an
                    // expired liveness deadline): abort and mark it dead
                    // (Fig 6-7 behaviour). §4.3.5's commit-with-(K-1)-safety
                    // alternative applies only once commit processing has
                    // begun.
                    self.mark_dead(site);
                    self.abort(tid)?;
                    return Err(DbError::TransactionAborted(tid));
                }
            }
        }
        Ok(())
    }

    /// Read-only historical scan against any single live replica (§3.1:
    /// reads go to one site).
    pub fn read_historical(
        &self,
        table: &str,
        as_of: Timestamp,
        scan: impl FnOnce(&mut RemoteScan),
    ) -> DbResult<Vec<Tuple>> {
        let sites = self.placement.sites_for(table)?;
        let mut s = RemoteScan::new(table, crate::message::WireReadMode::Historical(as_of));
        scan(&mut s);
        let mut last_err = DbError::Unrecoverable("no live replica".into());
        for site in sites {
            if !self.is_usable(site, table) {
                continue;
            }
            let addr = self.placement.address(site)?;
            // Historical reads are idempotent, so a transient timeout or a
            // torn connection earns a bounded retry with backoff before
            // failing over to the next replica.
            let result = with_read_retries(
                Some(&self.metrics),
                self.cfg.read_retries,
                DEFAULT_RETRY_BACKOFF,
                || {
                    let mut chan = self.transport.connect(&addr)?;
                    scan_rpc_deadline(chan.as_mut(), &s, self.cfg.rpc_deadline)
                },
            );
            match result {
                Ok(tuples) => return Ok(tuples),
                Err(e) => last_err = e,
            }
        }
        Err(last_err)
    }

    /// A read *with transactional read locks* inside `tid` — the
    /// "read-only transactions that wish to read the most up-to-date data
    /// use conventional read locks" side of §3.1. Routed to one live
    /// replica that is already (or becomes) a participant, so the locks are
    /// released by the transaction's commit/abort.
    pub fn read_current(
        &self,
        tid: TransactionId,
        table: &str,
        scan: impl FnOnce(&mut RemoteScan),
    ) -> DbResult<Vec<Tuple>> {
        let ctx = self.ctx(tid)?;
        let site = self
            .placement
            .sites_for(table)?
            .into_iter()
            .find(|s| self.is_usable(*s, table))
            .ok_or_else(|| DbError::Unrecoverable("no live replica".into()))?;
        let chan = self.ensure_chan(tid, &ctx, site)?;
        let mut s = RemoteScan::new(table, crate::message::WireReadMode::Current(tid));
        scan(&mut s);
        let mut c = chan.lock();
        // Lock-taking read inside a transaction: single attempt (a retry
        // could double-wait on locks), but still under the liveness deadline.
        // harbor-lint: allow(lock-across-blocking) — the SharedChan mutex IS the per-site RPC serialization point; no other lock is ever taken under it
        scan_rpc_deadline(&mut **c, &s, self.cfg.rpc_deadline)
    }

    /// Commits: runs the configured protocol. Returns the commit time.
    pub fn commit(&self, tid: TransactionId) -> DbResult<Timestamp> {
        let ctx = self.ctx(tid)?;
        let (participants, chans) = {
            let mut g = ctx.inner.lock();
            g.committing = true;
            (
                g.participants.iter().copied().collect::<Vec<_>>(),
                g.chans.clone(),
            )
        };
        if participants.is_empty() {
            // Read-only: nothing to agree on (§4.3: multi-phase protocols
            // apply only to update transactions).
            self.finish(tid, true)?;
            return Ok(self.authority.now().prev());
        }
        if let Some(es) = self.epoch.clone() {
            return self.commit_via_epoch(tid, participants, es);
        }
        // Phase 1: PREPARE.
        let bound = self.authority.now();
        let prepare = Request::Prepare {
            tid,
            workers: participants.clone(),
            time_bound: bound,
        };
        let mut all_yes = true;
        let mut voters_yes: Vec<SiteId> = Vec::new();
        for site in &participants {
            let Some(chan) = chans.get(site) else {
                all_yes = false;
                continue;
            };
            let resp = {
                let mut c = chan.lock();
                // harbor-lint: allow(lock-across-blocking) — the SharedChan mutex IS the per-site RPC serialization point; no other lock is ever taken under it
                self.rpc_live(&mut **c, &prepare)
            };
            match resp {
                Ok(Response::Vote { yes: true }) => voters_yes.push(*site),
                Ok(Response::Vote { yes: false }) => all_yes = false,
                Ok(_) => {
                    // A nonsensical vote means the participant is broken or
                    // the stream is desynchronized; treat it like a dead
                    // participant (= NO vote, §4.3.2) rather than leaving
                    // the transaction half-prepared everywhere else.
                    self.mark_dead(*site);
                    all_yes = false;
                }
                Err(_) => {
                    // No response = NO vote (§4.3.2).
                    self.mark_dead(*site);
                    all_yes = false;
                }
            }
        }
        self.maybe_fail(CrashPoint::CoordAfterPrepare)?;
        if !all_yes {
            self.abort_prepared(tid, &voters_yes, &chans)?;
            self.finish(tid, false)?;
            return Err(DbError::TransactionAborted(tid));
        }
        // All YES: assign the commit time.
        let commit_time = self.authority.next_commit_time();
        if self.cfg.protocol.is_three_phase() {
            // Phase 2: PREPARE-TO-COMMIT; all ACKs = commit point.
            let ptc = Request::PrepareToCommit { tid, commit_time };
            let mut sent = 0usize;
            for site in &participants {
                let Some(chan) = chans.get(site) else {
                    continue;
                };
                let resp = {
                    let mut c = chan.lock();
                    // harbor-lint: allow(lock-across-blocking) — the SharedChan mutex IS the per-site RPC serialization point; no other lock is ever taken under it
                    self.rpc_live(&mut **c, &ptc)
                };
                sent += 1;
                self.maybe_fail_counting(
                    |p| matches!(p, CrashPoint::CoordAfterPtcSent(n) if sent >= *n),
                )?;
                match resp {
                    Ok(Response::Ack) => {}
                    Ok(_) | Err(_) => {
                        // No ack (dead or deadline-expired) or a
                        // protocol-violating ack: commit with the remaining
                        // workers (K-1 safety, §4.3.5) — it will recover or
                        // be fenced.
                        self.mark_dead(*site);
                    }
                }
            }
        } else {
            // 2PC commit point: force-write the COMMIT record.
            if let Some(wal) = &self.wal {
                wal.append_forced(&LogRecord::new(
                    tid,
                    Lsn::NONE,
                    LogPayload::Commit { commit_time },
                ))?;
            }
        }
        // The decision is durable (2PC) or the commit point has passed
        // (3PC): record it for in-doubt workers before telling anyone.
        self.decided_commits.lock().insert(tid, commit_time);
        // Final phase: COMMIT.
        let commit = Request::Commit { tid, commit_time };
        let mut sent = 0usize;
        for site in &participants {
            let Some(chan) = chans.get(site) else {
                continue;
            };
            let resp = {
                let mut c = chan.lock();
                // harbor-lint: allow(lock-across-blocking) — the SharedChan mutex IS the per-site RPC serialization point; no other lock is ever taken under it
                self.rpc_live(&mut **c, &commit)
            };
            sent += 1;
            self.maybe_fail_counting(
                |p| matches!(p, CrashPoint::CoordAfterCommitSent(n) if sent >= *n),
            )?;
            match resp {
                Ok(Response::Ack) => {}
                Ok(_) | Err(_) => {
                    self.mark_dead(*site); // it will recover the commit
                }
            }
        }
        if let Some(wal) = &self.wal {
            wal.append(&LogRecord::new(
                tid,
                Lsn::NONE,
                LogPayload::End {
                    outcome: TxnOutcome::Committed,
                },
            ));
        }
        self.metrics.add_commits(1);
        self.finish(tid, true)?;
        Ok(commit_time)
    }

    /// Aborts the transaction everywhere.
    pub fn abort(&self, tid: TransactionId) -> DbResult<()> {
        let ctx = match self.ctx(tid) {
            Ok(c) => c,
            Err(_) => return Ok(()), // already finished
        };
        let (participants, chans) = {
            let g = ctx.inner.lock();
            (
                g.participants.iter().copied().collect::<Vec<_>>(),
                g.chans.clone(),
            )
        };
        self.abort_prepared(tid, &participants, &chans)?;
        self.metrics.add_aborts(1);
        self.finish(tid, false)
    }

    fn abort_prepared(
        &self,
        tid: TransactionId,
        sites: &[SiteId],
        chans: &HashMap<SiteId, SharedChan>,
    ) -> DbResult<()> {
        if let Some(wal) = &self.wal {
            wal.append_forced(&LogRecord::new(tid, Lsn::NONE, LogPayload::Abort))?;
        }
        let abort = Request::Abort { tid };
        for site in sites {
            let Some(chan) = chans.get(site) else {
                continue;
            };
            let resp = {
                let mut c = chan.lock();
                // harbor-lint: allow(lock-across-blocking) — the SharedChan mutex IS the per-site RPC serialization point; no other lock is ever taken under it
                self.rpc_live(&mut **c, &abort)
            };
            if resp.is_err() {
                self.mark_dead(*site);
            }
        }
        if let Some(wal) = &self.wal {
            wal.append(&LogRecord::new(
                tid,
                Lsn::NONE,
                LogPayload::End {
                    outcome: TxnOutcome::Aborted,
                },
            ));
        }
        Ok(())
    }

    /// Cleans up a finished transaction ("the coordinator can safely delete
    /// this queue when the transaction commits or aborts", §4.1). Also
    /// disarms any still-armed coordinator fail point: a point armed for a
    /// transaction that never reached it (e.g. `AfterPtcSentTo` on a
    /// transaction that aborted at PREPARE) must not survive to fire in a
    /// later, unrelated commit.
    fn finish(&self, tid: TransactionId, _committed: bool) -> DbResult<()> {
        if let Some(ctx) = self.txns.lock().remove(&tid) {
            let mut g = ctx.inner.lock();
            g.finished = true;
            g.queue.clear();
            g.chans.clear();
        }
        self.cfg
            .crash_schedule
            .disarm_if(self.cfg.site, |p| p.is_coordinator_point());
        Ok(())
    }

    fn maybe_fail(&self, at: CrashPoint) -> DbResult<()> {
        if self.cfg.crash_schedule.fire(self.cfg.site, at) {
            self.crash();
            return Err(DbError::SiteDown("coordinator crashed (fail point)".into()));
        }
        Ok(())
    }

    /// Fires a counting point (`AfterPtcSentTo(n)` / `AfterCommitSentTo(n)`)
    /// once the caller's predicate says the threshold is reached.
    fn maybe_fail_counting(&self, pred: impl Fn(&CrashPoint) -> bool) -> DbResult<()> {
        if self
            .cfg
            .crash_schedule
            .take_if(self.cfg.site, pred)
            .is_some()
        {
            self.crash();
            return Err(DbError::SiteDown("coordinator crashed (fail point)".into()));
        }
        Ok(())
    }

    /// Number of in-flight transactions (tests).
    pub fn inflight(&self) -> usize {
        self.txns.lock().len()
    }

    // ------------------------------------------------------------------
    // Epoch group commit (extension 14): batched 2PC waves
    // ------------------------------------------------------------------

    /// Client side of epoch commit: enqueue the transaction for the next
    /// epoch and park until an epoch runner resolves it.
    fn commit_via_epoch(
        &self,
        tid: TransactionId,
        participants: Vec<SiteId>,
        es: Arc<EpochState>,
    ) -> DbResult<Timestamp> {
        let waiter = Arc::new(CommitWaiter::default());
        es.pending.lock().push(PendingCommit {
            tid,
            participants,
            waiter: waiter.clone(),
        });
        es.pending_cond.notify_all();
        let mut slot = waiter.slot.lock();
        loop {
            if let Some(res) = slot.take() {
                return res;
            }
            if self.shutdown.load(Ordering::SeqCst) {
                return Err(DbError::SiteDown("coordinator crashed".into()));
            }
            waiter.cond.wait_for(&mut slot, Duration::from_millis(50));
        }
    }

    /// Scheduler thread: drains the pending queue into epochs of at most
    /// `max_txns`, holds a non-full epoch open for `max_wait` to accumulate
    /// stragglers, and launches each epoch on its own runner thread subject
    /// to the `pipeline_depth` bound — epoch N+1's PREPARE wave may be on
    /// the wire while epoch N is still collecting acks.
    fn epoch_scheduler(self: &Arc<Self>, es: Arc<EpochState>) {
        let max_txns = es.cfg.max_txns.max(1);
        loop {
            let mut batch: Vec<PendingCommit> = Vec::new();
            {
                let mut q = es.pending.lock();
                loop {
                    if self.shutdown.load(Ordering::SeqCst) {
                        let leftovers: Vec<PendingCommit> = q.drain(..).collect();
                        drop(q);
                        for p in leftovers {
                            p.waiter
                                .resolve(Err(DbError::SiteDown("coordinator crashed".into())));
                        }
                        return;
                    }
                    if !q.is_empty() {
                        let take = q.len().min(max_txns);
                        batch.extend(q.drain(..take));
                        break;
                    }
                    es.pending_cond.wait_for(&mut q, Duration::from_millis(50));
                }
            }
            // Accumulation window: a short wait after the first arrival lets
            // concurrent clients join the same epoch.
            let deadline = Instant::now() + es.cfg.max_wait;
            while batch.len() < max_txns && !self.shutdown.load(Ordering::SeqCst) {
                let mut q = es.pending.lock();
                if q.is_empty()
                    && es.pending_cond.wait_until(&mut q, deadline).timed_out()
                    && q.is_empty()
                {
                    break;
                }
                let take = (max_txns - batch.len()).min(q.len());
                batch.extend(q.drain(..take));
                drop(q);
                if Instant::now() >= deadline {
                    break;
                }
            }
            // Pipeline gate: at most `pipeline_depth` epochs in flight.
            {
                let mut inflight = es.inflight.lock();
                while *inflight >= es.cfg.pipeline_depth.max(1)
                    && !self.shutdown.load(Ordering::SeqCst)
                {
                    es.inflight_cond
                        .wait_for(&mut inflight, Duration::from_millis(50));
                }
                *inflight += 1;
            }
            let release_slot = |es: &EpochState| {
                let mut inflight = es.inflight.lock();
                *inflight = inflight.saturating_sub(1);
                drop(inflight);
                es.inflight_cond.notify_all();
            };
            if self.shutdown.load(Ordering::SeqCst) {
                for p in batch {
                    p.waiter
                        .resolve(Err(DbError::SiteDown("coordinator crashed".into())));
                }
                release_slot(&es);
                continue;
            }
            let epoch = es.epoch_seq.fetch_add(1, Ordering::SeqCst);
            // Keep handles to the waiters: if the runner thread cannot be
            // spawned, its clients must still be unparked.
            let waiters: Vec<Arc<CommitWaiter>> = batch.iter().map(|p| p.waiter.clone()).collect();
            let me = self.clone();
            let es_runner = es.clone();
            let spawned = std::thread::Builder::new()
                .name(format!("epoch-{epoch}"))
                .spawn(move || {
                    me.run_epoch(epoch, batch);
                    let mut inflight = es_runner.inflight.lock();
                    *inflight = inflight.saturating_sub(1);
                    drop(inflight);
                    es_runner.inflight_cond.notify_all();
                });
            match spawned {
                Ok(h) => self.handles.lock().push(h),
                Err(e) => {
                    for w in waiters {
                        w.resolve(Err(DbError::internal(format!("spawn epoch runner: {e}"))));
                    }
                    release_slot(&es);
                }
            }
        }
    }

    /// Runs one epoch end to end: batched PREPARE wave → per-txn vote
    /// vectors → one forced log write covering every decision record →
    /// batched COMMIT wave → vectored acks. Failures abort only the
    /// affected transactions; the epoch itself always completes.
    fn run_epoch(self: &Arc<Self>, epoch: u64, batch: Vec<PendingCommit>) {
        let crashed = |batch: &[PendingCommit]| {
            for p in batch {
                p.waiter.resolve(Err(DbError::SiteDown(
                    "coordinator crashed (fail point)".into(),
                )));
            }
        };
        // Wave membership: the union of all participants.
        let mut workers: BTreeSet<SiteId> = BTreeSet::new();
        for p in &batch {
            workers.extend(p.participants.iter().copied());
        }
        let bound = self.authority.now();
        // PREPARE wave: one fresh channel per worker (the per-transaction
        // BEGIN channels stay open so disconnect semantics are unchanged),
        // all sends first so the prepares overlap across workers.
        let mut chans: HashMap<SiteId, Box<dyn Channel>> = HashMap::new();
        for site in &workers {
            let txns: Vec<(TransactionId, Vec<SiteId>)> = batch
                .iter()
                .filter(|p| p.participants.contains(site))
                .map(|p| (p.tid, p.participants.clone()))
                .collect();
            let req = Request::PrepareBatch {
                epoch,
                txns,
                time_bound: bound,
            };
            let sent = (|| -> DbResult<Box<dyn Channel>> {
                let addr = self.placement.address(*site)?.to_string();
                let mut chan = self.transport.connect(&addr)?;
                chan.send(&req.to_vec())?;
                Ok(chan)
            })();
            match sent {
                Ok(chan) => {
                    chans.insert(*site, chan);
                }
                // Unreachable = NO vote for every txn it participates in.
                Err(_) => self.mark_dead(*site),
            }
        }
        // Vote collection: per-txn vote vectors, one frame per worker.
        let mut votes: HashMap<(SiteId, TransactionId), bool> = HashMap::new();
        for (site, chan) in &mut chans {
            match Self::wave_recv(
                chan.as_mut(),
                self.cfg.rpc_deadline,
                &self.shutdown,
                &self.metrics,
            ) {
                Ok(Response::VoteBatch { votes: v }) => {
                    for (tid, yes) in v {
                        votes.insert((*site, tid), yes);
                    }
                }
                // A missing or malformed vote vector is a NO for every txn
                // on this worker (§4.3.2 generalized to the batch).
                Ok(_) | Err(_) => self.mark_dead(*site),
            }
        }
        if self.fire_from_runner(CrashPoint::CoordAfterPrepare) {
            crashed(&batch);
            return;
        }
        // Per-txn decisions: commit iff every participant voted YES. A NO
        // or a dead worker dooms only its own transactions.
        let mut commit_times: Vec<Option<Timestamp>> = Vec::with_capacity(batch.len());
        let mut records: Vec<LogRecord> = Vec::with_capacity(batch.len());
        for p in &batch {
            let all_yes = p
                .participants
                .iter()
                .all(|s| votes.get(&(*s, p.tid)).copied() == Some(true));
            if all_yes {
                let t = self.authority.next_commit_time();
                commit_times.push(Some(t));
                records.push(LogRecord::new(
                    p.tid,
                    Lsn::NONE,
                    LogPayload::Commit { commit_time: t },
                ));
            } else {
                commit_times.push(None);
                records.push(LogRecord::new(p.tid, Lsn::NONE, LogPayload::Abort));
            }
        }
        // 2PC commit point for the whole epoch: every decision record goes
        // into the log, then ONE force covers them all (max LSN).
        if let Some(wal) = &self.wal {
            if wal.append_all_forced(&records).is_err() {
                for p in &batch {
                    p.waiter
                        .resolve(Err(DbError::internal("epoch decision force failed")));
                }
                return;
            }
        }
        self.metrics.record_epoch(batch.len());
        // The epoch's decisions are durable: record the commits for
        // in-doubt workers before any COMMIT frame leaves.
        {
            let mut decided = self.decided_commits.lock();
            for (p, t) in batch.iter().zip(commit_times.iter()) {
                if let Some(t) = t {
                    decided.insert(p.tid, *t);
                }
            }
        }
        if self.fire_from_runner(CrashPoint::CoordAfterEpochForce) {
            crashed(&batch);
            return;
        }
        // COMMIT wave: per-worker outcome vectors. Aborts go only to
        // workers that voted YES (a NO voter already rolled back locally).
        let mut waved: Vec<SiteId> = Vec::new();
        let mut sent = 0usize;
        for site in &workers {
            let commits: Vec<(TransactionId, Timestamp)> = batch
                .iter()
                .zip(commit_times.iter())
                .filter(|(p, _)| p.participants.contains(site))
                .filter_map(|(p, t)| t.map(|t| (p.tid, t)))
                .collect();
            let aborts: Vec<TransactionId> = batch
                .iter()
                .zip(commit_times.iter())
                .filter(|(_, t)| t.is_none())
                .filter(|(p, _)| votes.get(&(*site, p.tid)).copied() == Some(true))
                .map(|(p, _)| p.tid)
                .collect();
            if commits.is_empty() && aborts.is_empty() {
                continue;
            }
            let Some(chan) = chans.get_mut(site) else {
                // Dead since the PREPARE wave: it recovers the outcome from
                // its peers (§4.3.3 runs per transaction).
                continue;
            };
            let req = Request::CommitBatch {
                epoch,
                commits,
                aborts,
            };
            if chan.send(&req.to_vec()).is_err() {
                self.mark_dead(*site);
                continue;
            }
            sent += 1;
            waved.push(*site);
            if self.fire_from_runner_counting(
                |p| matches!(p, CrashPoint::CoordAfterCommitSent(n) if sent >= *n),
            ) {
                crashed(&batch);
                return;
            }
        }
        // Vectored acks: one frame per worker, covering its whole batch.
        for site in waved {
            let Some(chan) = chans.get_mut(&site) else {
                continue;
            };
            match Self::wave_recv(
                chan.as_mut(),
                self.cfg.rpc_deadline,
                &self.shutdown,
                &self.metrics,
            ) {
                Ok(Response::AckBatch { .. }) => {}
                // No ack: the worker recovers the committed outcome.
                Ok(_) | Err(_) => self.mark_dead(site),
            }
        }
        // End records (unforced) and client wake-ups.
        if let Some(wal) = &self.wal {
            for (p, t) in batch.iter().zip(commit_times.iter()) {
                let outcome = if t.is_some() {
                    TxnOutcome::Committed
                } else {
                    TxnOutcome::Aborted
                };
                wal.append(&LogRecord::new(
                    p.tid,
                    Lsn::NONE,
                    LogPayload::End { outcome },
                ));
            }
        }
        for (p, t) in batch.iter().zip(commit_times.iter()) {
            match t {
                Some(t) => {
                    self.metrics.add_commits(1);
                    let _ = self.finish(p.tid, true);
                    p.waiter.resolve(Ok(*t));
                }
                None => {
                    let _ = self.finish(p.tid, false);
                    p.waiter.resolve(Err(DbError::TransactionAborted(p.tid)));
                }
            }
        }
    }

    /// Receives one frame of a wave under the liveness deadline, watching
    /// the shutdown flag between poll slices.
    fn wave_recv(
        chan: &mut dyn Channel,
        deadline: Duration,
        shutdown: &AtomicBool,
        metrics: &Metrics,
    ) -> DbResult<Response> {
        let expires = Instant::now() + deadline;
        loop {
            match chan.recv_timeout(Duration::from_millis(50))? {
                Some(frame) => return Response::from_slice(&frame),
                None => {
                    if shutdown.load(Ordering::SeqCst) {
                        return Err(DbError::SiteDown("coordinator crashed".into()));
                    }
                    if Instant::now() >= expires {
                        return Err(crate::liveness_expired(
                            Some(metrics),
                            "commit wave stalled",
                        ));
                    }
                }
            }
        }
    }

    /// [`maybe_fail`](Self::maybe_fail) for epoch runner threads: initiates
    /// the crash but does not join (a tracked thread cannot join itself).
    fn fire_from_runner(&self, at: CrashPoint) -> bool {
        if self.cfg.crash_schedule.fire(self.cfg.site, at) {
            self.initiate_crash();
            return true;
        }
        false
    }

    /// [`maybe_fail_counting`](Self::maybe_fail_counting) for epoch runners.
    fn fire_from_runner_counting(&self, pred: impl Fn(&CrashPoint) -> bool) -> bool {
        if self
            .cfg
            .crash_schedule
            .take_if(self.cfg.site, pred)
            .is_some()
        {
            self.initiate_crash();
            return true;
        }
        false
    }

    // ------------------------------------------------------------------
    // Coordinator server: timestamp authority + join-pending (Fig 5-4)
    // ------------------------------------------------------------------

    fn server_loop(self: &Arc<Self>, listener: Box<dyn harbor_net::Listener>) {
        while !self.shutdown.load(Ordering::SeqCst) {
            match listener.accept_timeout(Duration::from_millis(50)) {
                Ok(Some(chan)) => {
                    let c = self.clone();
                    let spawned = std::thread::Builder::new()
                        .name("coordinator-conn".into())
                        .spawn(move || c.serve_connection(chan));
                    // Dropping the un-spawned closure closes the connection;
                    // the worker retries against a live server rather than
                    // the whole loop dying.
                    if let Ok(h) = spawned {
                        self.handles.lock().push(h);
                    }
                }
                Ok(None) => {}
                Err(_) => break,
            }
        }
    }

    fn serve_connection(self: &Arc<Self>, mut chan: Box<dyn Channel>) {
        loop {
            let frame = match chan.recv_timeout(Duration::from_millis(50)) {
                Ok(Some(f)) => f,
                Ok(None) => {
                    if self.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    continue;
                }
                Err(_) => return,
            };
            let req = match Request::from_slice(&frame) {
                Ok(r) => r,
                Err(_) => return,
            };
            let resp = match req {
                Request::Ping => Response::Ok,
                Request::GetTime => Response::Time {
                    now: self.authority.now(),
                },
                Request::RecComingOnline { site, table } => match self.handle_join(site, &table) {
                    Ok(()) => Response::AllDone,
                    Err(e) => Response::Err { msg: e.to_string() },
                },
                // In-doubt 2PC workers resolve against the coordinator's
                // forced log (presumed abort), not worker-only consensus.
                Request::QueryTxnState { tid } => Response::TxnState {
                    state: self.txn_outcome(tid),
                },
                Request::JoinSite { site, addr } => match self.admit_site(site, &addr) {
                    Ok(()) => Response::Ok,
                    Err(e) => Response::Err { msg: e.to_string() },
                },
                Request::DecommissionSite { site } => match self.decommission_site(site) {
                    Ok(_) => Response::Ok,
                    Err(e) => Response::Err { msg: e.to_string() },
                },
                _ => Response::Err {
                    msg: "not a coordinator request".into(),
                },
            };
            if chan.send(&resp.to_vec()).is_err() {
                return;
            }
        }
    }

    /// Fig 5-4: `table` on `site` is coming online. Mark the site usable
    /// for new transactions, and for every pending transaction that
    /// already touched the table, forward its queued update requests so
    /// the recoverer joins it; the `AllDone` reply is sent by the caller
    /// once this returns.
    fn handle_join(self: &Arc<Self>, site: SiteId, table: &str) -> DbResult<()> {
        // If this object was a join-pending copy (site join or supervisor
        // re-replication), the announcement is what completes it: it is now
        // caught up, locked current, and a valid recovery buddy.
        self.bootstrapping.lock().remove(&(site, table.to_string()));
        self.placement.mutate(|p| p.finish_copy_join(table, site));
        // Gate routing per object: only `table` starts receiving updates
        // now; the site becomes fully alive once every object placed on it
        // has announced (§5.4.2 is per-`rec`).
        {
            let mut partial = self.partially_online.lock();
            let tables = partial.entry(site).or_default();
            tables.insert(table.to_string());
            let all_on_site: std::collections::BTreeSet<String> = self
                .placement
                .objects_on(site)
                .into_iter()
                .map(|(name, _)| name)
                .collect();
            if all_on_site.is_subset(tables) {
                drop(partial);
                self.mark_alive(site);
            }
        }
        let pending: Vec<(TransactionId, Arc<TxnCtx>)> = self
            .txns
            .lock()
            .iter()
            .map(|(t, c)| (*t, c.clone()))
            .collect();
        let mut doomed: Vec<TransactionId> = Vec::new();
        for (tid, ctx) in pending {
            // Snapshot the backlog under the lock but forward it OUTSIDE:
            // connect + RPC under the held ctx mutex would stall every
            // concurrent update/commit on this transaction for full network
            // round trips (and is exactly the guard-across-blocking class
            // harbor-lint flags). The queue only grows while the txn is
            // live, so forwarding resumes from the last sent index until
            // the locked view and the forwarded prefix agree, and only then
            // registers the participant — still under the lock, with no
            // blocking call in scope.
            let mut sent = 0usize;
            let mut chan: Option<Box<dyn Channel>> = None;
            'txn: loop {
                let backlog: Vec<UpdateRequest> = {
                    let mut g = ctx.inner.lock();
                    let stale = g.finished || g.committing || g.participants.contains(&site);
                    let relevant = g
                        .queue
                        .iter()
                        .any(|u| u.table().map(|t| t == table).unwrap_or(false));
                    if stale || !relevant {
                        drop(g);
                        // A BEGIN may already have reached the new site for
                        // a transaction we will not register (it finished or
                        // entered commit while we forwarded): roll the stray
                        // back so its locks release now, not by timeout.
                        if let Some(mut c) = chan.take() {
                            let _ = rpc_expect_ok(
                                c.as_mut(),
                                &Request::Abort { tid },
                                self.cfg.rpc_deadline,
                            );
                        }
                        break 'txn;
                    }
                    if g.queue.len() == sent {
                        if let Some(c) = chan.take() {
                            g.participants.insert(site);
                            g.chans.insert(site, Arc::new(Mutex::new(c)));
                        }
                        break 'txn;
                    }
                    g.queue[sent..].to_vec()
                };
                // Forward: fresh connection + BEGIN on the first pass, then
                // the unsent backlog suffix.
                let forwarded: DbResult<()> = (|| {
                    let c = match &mut chan {
                        Some(c) => c,
                        None => {
                            let addr = self.placement.address(site)?;
                            let mut fresh = self.transport.connect(&addr)?;
                            rpc_expect_ok(
                                fresh.as_mut(),
                                &Request::Begin { tid },
                                self.cfg.rpc_deadline,
                            )?;
                            chan.insert(fresh)
                        }
                    };
                    for u in &backlog {
                        let forward = match u.table() {
                            Some(t) if t == table => true,
                            Some(_) => false,
                            None => true, // CPU work applies everywhere
                        };
                        if forward {
                            rpc_expect_ok(
                                c.as_mut(),
                                &Request::Update {
                                    tid,
                                    req: u.clone(),
                                },
                                self.cfg.rpc_deadline,
                            )?;
                        }
                    }
                    Ok(())
                })();
                match forwarded {
                    Ok(()) => sent += backlog.len(),
                    // The backlog would not replay — typically a lock
                    // timeout against the recoverer's own Phase-3 locks, a
                    // deadlock the victim cannot see (it is blocked in this
                    // very RPC). The *transaction* is the loser (§5.4.1:
                    // deadlocks resolve by timeout), not the join: abort it
                    // and bring the site online.
                    Err(_) => {
                        doomed.push(tid);
                        break 'txn;
                    }
                }
            }
        }
        for tid in doomed {
            let _ = self.abort(tid);
        }
        Ok(())
    }
}

fn rpc_expect_ok(chan: &mut dyn Channel, req: &Request, deadline: Duration) -> DbResult<()> {
    match rpc_liveness(chan, req, deadline, None)? {
        Response::Ok => Ok(()),
        // Preserve the error class across the wire: a worker that tripped
        // on a corrupt page must not read as a protocol violation.
        Response::Err { msg } => Err(DbError::from_remote_msg(msg)),
        other => Err(DbError::protocol(format!("unexpected reply {other:?}"))),
    }
}
