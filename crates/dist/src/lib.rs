//! The distributed layer of the HARBOR reproduction: coordinators, workers,
//! the K-safety placement catalog, and the four commit protocols of thesis
//! Chapter 4 (traditional/optimized two-phase and canonical/optimized
//! three-phase commit), plus the consensus-building protocol that makes the
//! 3PC variants non-blocking under coordinator failure.

pub mod consensus;
pub mod coordinator;
pub mod message;
pub mod placement;
pub mod protocol;
pub mod worker;

pub use consensus::{backup_action, BackupAction, BackupState};
pub use coordinator::{Coordinator, CoordinatorConfig, FailPoint};
pub use message::{RemoteScan, Request, Response, UpdateRequest, WireReadMode, WireTxnState};
pub use placement::{Copy, Part, Placement, RecoveryObject, TablePlacement};
pub use protocol::ProtocolKind;
pub use worker::{simulate_cpu_work, Worker, WorkerConfig};

use harbor_common::codec::Wire;
use harbor_common::{DbError, DbResult, Tuple};
use harbor_net::Channel;

/// One request/response round trip over a channel.
pub fn rpc(chan: &mut dyn Channel, req: &Request) -> DbResult<Response> {
    chan.send(&req.to_vec())?;
    let frame = chan.recv()?;
    Response::from_slice(&frame)
}

/// Issues a [`Request::Scan`] and drains the streamed tuple batches,
/// returning all rows. The worker terminates the stream with a final
/// `done = true` batch followed by `Response::Ok`.
pub fn scan_rpc(chan: &mut dyn Channel, scan: &RemoteScan) -> DbResult<Vec<Tuple>> {
    let mut out = Vec::new();
    scan_rpc_streaming(chan, scan, |mut batch| {
        out.append(&mut batch);
        Ok(())
    })?;
    Ok(out)
}

/// Visits streamed scan batches without materializing the whole result —
/// the recovering site processes tuples as they arrive.
pub fn scan_rpc_streaming(
    chan: &mut dyn Channel,
    scan: &RemoteScan,
    mut visit: impl FnMut(Vec<Tuple>) -> DbResult<()>,
) -> DbResult<()> {
    chan.send(&Request::Scan(scan.clone()).to_vec())?;
    loop {
        let frame = chan.recv()?;
        match Response::from_slice(&frame)? {
            Response::Tuples { batch, done } => {
                visit(batch)?;
                if done {
                    break;
                }
            }
            Response::Err { msg } => return Err(DbError::protocol(msg)),
            other => {
                return Err(DbError::protocol(format!(
                    "unexpected scan reply {other:?}"
                )))
            }
        }
    }
    // Final status frame.
    let frame = chan.recv()?;
    match Response::from_slice(&frame)? {
        Response::Ok => Ok(()),
        Response::Err { msg } => Err(DbError::protocol(msg)),
        other => Err(DbError::protocol(format!(
            "unexpected scan status {other:?}"
        ))),
    }
}
