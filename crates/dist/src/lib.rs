//! The distributed layer of the HARBOR reproduction: coordinators, workers,
//! the K-safety placement catalog, and the four commit protocols of thesis
//! Chapter 4 (traditional/optimized two-phase and canonical/optimized
//! three-phase commit), plus the consensus-building protocol that makes the
//! 3PC variants non-blocking under coordinator failure.

pub mod consensus;
pub mod coordinator;
pub mod failpoint;
pub mod message;
pub mod placement;
pub mod protocol;
pub mod worker;

pub use consensus::{backup_action, BackupAction, BackupState};
pub use coordinator::{Coordinator, CoordinatorConfig, EpochCommitConfig, FailPoint};
pub use failpoint::{CrashPoint, CrashSchedule};
pub use message::{RemoteScan, Request, Response, UpdateRequest, WireReadMode, WireTxnState};
pub use placement::{Copy, Part, Placement, RecoveryObject, SharedPlacement, TablePlacement};
pub use protocol::ProtocolKind;
pub use worker::{simulate_cpu_work, Worker, WorkerConfig};

pub use harbor_common::config::{
    DEFAULT_READ_RETRIES, DEFAULT_RETRY_BACKOFF, DEFAULT_RPC_DEADLINE, DEFAULT_SCAN_BATCH,
};

use harbor_common::codec::Wire;
use harbor_common::{retry_with, DbError, DbResult, Metrics, RetryPolicy, Timestamp, Tuple};
use harbor_net::Channel;
use std::time::Duration;

/// One request/response round trip over a channel, blocking indefinitely for
/// the reply. Prefer [`rpc_deadline`] anywhere a partitioned peer is
/// possible: a blackholed link never closes this channel, so a blocking recv
/// would hang forever.
pub fn rpc(chan: &mut dyn Channel, req: &Request) -> DbResult<Response> {
    chan.send(&req.to_vec())?;
    let frame = chan.recv()?;
    Response::from_slice(&frame)
}

/// One round trip with a per-request deadline. Expiry returns the *transient*
/// [`DbError::Timeout`] — the peer is not presumed dead; callers choose
/// whether to retry (idempotent reads), fail the operation, or escalate.
pub fn rpc_deadline(
    chan: &mut dyn Channel,
    req: &Request,
    deadline: Duration,
) -> DbResult<Response> {
    chan.send(&req.to_vec())?;
    match chan.recv_timeout(deadline)? {
        Some(frame) => Response::from_slice(&frame),
        None => Err(DbError::timeout(format!(
            "{}: no reply within {:?}",
            chan.peer(),
            deadline
        ))),
    }
}

/// One round trip where `deadline` is a *liveness* deadline: expiry means
/// the peer is treated as failed ([`DbError::SiteUnavailable`], classified
/// as a disconnect) even though its socket never closed — how a partitioned
/// participant is detected when closed-connection detection (§5.5.1) cannot
/// fire. Used by the commit protocols, which never retransmit.
pub fn rpc_liveness(
    chan: &mut dyn Channel,
    req: &Request,
    deadline: Duration,
    metrics: Option<&Metrics>,
) -> DbResult<Response> {
    match rpc_deadline(chan, req, deadline) {
        Err(DbError::Timeout(m)) => {
            if let Some(m) = metrics {
                m.add_rpc_timeouts(1);
            }
            Err(DbError::unavailable(format!("liveness deadline: {m}")))
        }
        other => other,
    }
}

/// Classifies an expired *liveness* deadline for callers that slice their
/// own receive loop instead of blocking in [`rpc_liveness`] — the epoch
/// commit waves poll in short ticks so they can watch a shutdown flag
/// between slices. Same contract as [`rpc_liveness`]: the silent peer is
/// treated as failed ([`DbError::SiteUnavailable`], a disconnect), even
/// though its socket never closed.
pub fn liveness_expired(metrics: Option<&Metrics>, context: &str) -> DbError {
    if let Some(m) = metrics {
        m.add_rpc_timeouts(1);
    }
    DbError::unavailable(format!("liveness deadline: {context}"))
}

/// Runs `attempt` with up to `retries` bounded retries (seeded jittered
/// exponential backoff starting at `backoff`, via the shared
/// [`harbor_common::retry`] engine) after transient timeouts or
/// disconnects — the wider read-path classifier, since connection
/// establishment against a restarting site surfaces as a disconnect. Only
/// for *idempotent* operations — historical reads, clock reads, connection
/// establishment. Commit-protocol messages must never pass through here: a
/// retransmitted PREPARE/COMMIT could double-apply its effects. The
/// terminal error is returned verbatim.
pub fn with_read_retries<T>(
    metrics: Option<&Metrics>,
    retries: u32,
    backoff: Duration,
    mut attempt: impl FnMut() -> DbResult<T>,
) -> DbResult<T> {
    let policy = RetryPolicy::new(retries, backoff, backoff.saturating_mul(64), 0x5EED_2EAD);
    retry_with(
        &policy,
        metrics,
        |e| {
            let transient = e.is_timeout() || e.is_disconnect();
            if transient {
                if let Some(m) = metrics {
                    if e.is_timeout() {
                        m.add_rpc_timeouts(1);
                    }
                    m.add_rpc_retries(1);
                }
            }
            transient
        },
        |_| attempt(),
    )
}

/// Issues a [`Request::Scan`] and drains the streamed tuple batches,
/// returning all rows. The worker terminates the stream with a final
/// `done = true` batch followed by `Response::Ok`.
pub fn scan_rpc(chan: &mut dyn Channel, scan: &RemoteScan) -> DbResult<Vec<Tuple>> {
    scan_rpc_deadline(chan, scan, DEFAULT_RPC_DEADLINE)
}

/// As [`scan_rpc`] with an explicit per-frame liveness deadline.
pub fn scan_rpc_deadline(
    chan: &mut dyn Channel,
    scan: &RemoteScan,
    deadline: Duration,
) -> DbResult<Vec<Tuple>> {
    let mut out = Vec::new();
    scan_rpc_streaming_deadline(chan, scan, deadline, |mut batch| {
        out.append(&mut batch);
        Ok(())
    })?;
    Ok(out)
}

/// Visits streamed scan batches without materializing the whole result —
/// the recovering site processes tuples as they arrive.
pub fn scan_rpc_streaming(
    chan: &mut dyn Channel,
    scan: &RemoteScan,
    visit: impl FnMut(Vec<Tuple>) -> DbResult<()>,
) -> DbResult<()> {
    scan_rpc_streaming_deadline(chan, scan, DEFAULT_RPC_DEADLINE, visit)
}

/// As [`scan_rpc_streaming`] with an explicit per-frame liveness deadline.
pub fn scan_rpc_streaming_deadline(
    chan: &mut dyn Channel,
    scan: &RemoteScan,
    deadline: Duration,
    visit: impl FnMut(Vec<Tuple>) -> DbResult<()>,
) -> DbResult<()> {
    drain_scan_stream(chan, &Request::Scan(scan.clone()), deadline, visit)
}

/// As [`scan_rpc_streaming`] but issues a [`Request::ScanRange`]: the scan
/// restricted to insertion times in `(ins_lo, ins_hi]`.
pub fn scan_range_rpc_streaming(
    chan: &mut dyn Channel,
    scan: &RemoteScan,
    ins_lo: Timestamp,
    ins_hi: Timestamp,
    deadline: Duration,
    visit: impl FnMut(Vec<Tuple>) -> DbResult<()>,
) -> DbResult<()> {
    let req = Request::ScanRange {
        scan: scan.clone(),
        ins_lo,
        ins_hi,
    };
    drain_scan_stream(chan, &req, deadline, visit)
}

/// Fetches a buddy's per-segment `(tmin_insert, tmax_insert, tmax_delete)`
/// directory bounds for `table`.
pub fn segment_bounds_rpc(
    chan: &mut dyn Channel,
    table: &str,
    deadline: Duration,
) -> DbResult<Vec<(Timestamp, Timestamp, Timestamp, u64)>> {
    let req = Request::SegmentBounds {
        table: table.to_string(),
    };
    match rpc_liveness(chan, &req, deadline, None)? {
        Response::SegmentBounds { segments } => Ok(segments),
        Response::Err { msg } => Err(DbError::from_remote_msg(msg)),
        other => Err(DbError::protocol(format!(
            "unexpected segment-bounds reply {other:?}"
        ))),
    }
}

/// Drains one scan stream. `deadline` is a per-frame *liveness* deadline: a
/// buddy that stops producing bytes for that long — the partitioned-peer
/// case whose socket never closes — surfaces as [`DbError::SiteUnavailable`]
/// (a disconnect), so Phase-2 range reassignment treats it exactly like a
/// buddy death instead of hanging recovery forever.
fn drain_scan_stream(
    chan: &mut dyn Channel,
    req: &Request,
    deadline: Duration,
    mut visit: impl FnMut(Vec<Tuple>) -> DbResult<()>,
) -> DbResult<()> {
    let recv_frame = |chan: &mut dyn Channel| -> DbResult<Vec<u8>> {
        match chan.recv_timeout(deadline)? {
            Some(frame) => Ok(frame),
            None => Err(DbError::unavailable(format!(
                "{}: scan stream stalled for {:?} (liveness deadline)",
                chan.peer(),
                deadline
            ))),
        }
    };
    chan.send(&req.to_vec())?;
    loop {
        let frame = recv_frame(chan)?;
        match Response::from_slice(&frame)? {
            Response::Tuples { batch, done } => {
                visit(batch)?;
                if done {
                    break;
                }
            }
            // Re-classify wire errors: a buddy reading a corrupt page of
            // its own must surface as `Corrupt` (site-local, repairable —
            // the fetcher fails over), not as a protocol violation.
            Response::Err { msg } => return Err(DbError::from_remote_msg(msg)),
            other => {
                return Err(DbError::protocol(format!(
                    "unexpected scan reply {other:?}"
                )))
            }
        }
    }
    // Final status frame.
    let frame = recv_frame(chan)?;
    match Response::from_slice(&frame)? {
        Response::Ok => Ok(()),
        Response::Err { msg } => Err(DbError::from_remote_msg(msg)),
        other => Err(DbError::protocol(format!(
            "unexpected scan status {other:?}"
        ))),
    }
}
