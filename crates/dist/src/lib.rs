//! The distributed layer of the HARBOR reproduction: coordinators, workers,
//! the K-safety placement catalog, and the four commit protocols of thesis
//! Chapter 4 (traditional/optimized two-phase and canonical/optimized
//! three-phase commit), plus the consensus-building protocol that makes the
//! 3PC variants non-blocking under coordinator failure.

pub mod consensus;
pub mod coordinator;
pub mod message;
pub mod placement;
pub mod protocol;
pub mod worker;

pub use consensus::{backup_action, BackupAction, BackupState};
pub use coordinator::{Coordinator, CoordinatorConfig, FailPoint};
pub use message::{RemoteScan, Request, Response, UpdateRequest, WireReadMode, WireTxnState};
pub use placement::{Copy, Part, Placement, RecoveryObject, TablePlacement};
pub use protocol::ProtocolKind;
pub use worker::{simulate_cpu_work, Worker, WorkerConfig};

pub use harbor_common::config::DEFAULT_SCAN_BATCH;

use harbor_common::codec::Wire;
use harbor_common::{DbError, DbResult, Timestamp, Tuple};
use harbor_net::Channel;

/// One request/response round trip over a channel.
pub fn rpc(chan: &mut dyn Channel, req: &Request) -> DbResult<Response> {
    chan.send(&req.to_vec())?;
    let frame = chan.recv()?;
    Response::from_slice(&frame)
}

/// Issues a [`Request::Scan`] and drains the streamed tuple batches,
/// returning all rows. The worker terminates the stream with a final
/// `done = true` batch followed by `Response::Ok`.
pub fn scan_rpc(chan: &mut dyn Channel, scan: &RemoteScan) -> DbResult<Vec<Tuple>> {
    let mut out = Vec::new();
    scan_rpc_streaming(chan, scan, |mut batch| {
        out.append(&mut batch);
        Ok(())
    })?;
    Ok(out)
}

/// Visits streamed scan batches without materializing the whole result —
/// the recovering site processes tuples as they arrive.
pub fn scan_rpc_streaming(
    chan: &mut dyn Channel,
    scan: &RemoteScan,
    visit: impl FnMut(Vec<Tuple>) -> DbResult<()>,
) -> DbResult<()> {
    drain_scan_stream(chan, &Request::Scan(scan.clone()), visit)
}

/// As [`scan_rpc_streaming`] but issues a [`Request::ScanRange`]: the scan
/// restricted to insertion times in `(ins_lo, ins_hi]`.
pub fn scan_range_rpc_streaming(
    chan: &mut dyn Channel,
    scan: &RemoteScan,
    ins_lo: Timestamp,
    ins_hi: Timestamp,
    visit: impl FnMut(Vec<Tuple>) -> DbResult<()>,
) -> DbResult<()> {
    let req = Request::ScanRange {
        scan: scan.clone(),
        ins_lo,
        ins_hi,
    };
    drain_scan_stream(chan, &req, visit)
}

/// Fetches a buddy's per-segment `(tmin_insert, tmax_insert, tmax_delete)`
/// directory bounds for `table`.
pub fn segment_bounds_rpc(
    chan: &mut dyn Channel,
    table: &str,
) -> DbResult<Vec<(Timestamp, Timestamp, Timestamp, u64)>> {
    let req = Request::SegmentBounds {
        table: table.to_string(),
    };
    match rpc(chan, &req)? {
        Response::SegmentBounds { segments } => Ok(segments),
        Response::Err { msg } => Err(DbError::protocol(msg)),
        other => Err(DbError::protocol(format!(
            "unexpected segment-bounds reply {other:?}"
        ))),
    }
}

fn drain_scan_stream(
    chan: &mut dyn Channel,
    req: &Request,
    mut visit: impl FnMut(Vec<Tuple>) -> DbResult<()>,
) -> DbResult<()> {
    chan.send(&req.to_vec())?;
    loop {
        let frame = chan.recv()?;
        match Response::from_slice(&frame)? {
            Response::Tuples { batch, done } => {
                visit(batch)?;
                if done {
                    break;
                }
            }
            Response::Err { msg } => return Err(DbError::protocol(msg)),
            other => {
                return Err(DbError::protocol(format!(
                    "unexpected scan reply {other:?}"
                )))
            }
        }
    }
    // Final status frame.
    let frame = chan.recv()?;
    match Response::from_slice(&frame)? {
        Response::Ok => Ok(()),
        Response::Err { msg } => Err(DbError::protocol(msg)),
        other => Err(DbError::protocol(format!(
            "unexpected scan status {other:?}"
        ))),
    }
}
