//! Unified error type for every subsystem.

use crate::ids::{PageId, RecordId, TableId, TransactionId};
use std::fmt;
use std::io;

/// Result alias used across the workspace.
pub type DbResult<T> = Result<T, DbError>;

/// All error conditions surfaced by the database.
#[derive(Debug)]
pub enum DbError {
    /// Underlying file-system failure.
    Io(io::Error),
    /// A lock could not be granted before the deadlock timeout expired
    /// (thesis §6.1.2 resolves deadlocks by timeout).
    LockTimeout { txn: TransactionId, what: String },
    /// The transaction was aborted (locally or by the commit protocol).
    TransactionAborted(TransactionId),
    /// Unknown transaction id presented to a worker. Workers answer vote
    /// requests for unknown transactions with NO (§4.3.2 failure handling).
    UnknownTransaction(TransactionId),
    /// Unknown table.
    NoSuchTable(TableId),
    /// Page outside the current extent of its heap file.
    NoSuchPage(PageId),
    /// A record id pointed at an empty slot.
    NoSuchRecord(RecordId),
    /// Page, heap file or log contents failed validation.
    Corrupt(String),
    /// The page / segment / log buffer is full.
    Full(String),
    /// Networking failure; carries a human-readable cause. A closed
    /// connection doubles as failure detection (§5.5.1).
    Net(String),
    /// A single request exceeded its deadline. *Transient*: the peer may be
    /// slow, the link may be lossy, or a frame was delayed — the site is not
    /// presumed dead. Idempotent reads may retry; commit-protocol messages
    /// must never be retransmitted blindly.
    Timeout(String),
    /// A liveness deadline expired (or bounded retries were exhausted): the
    /// peer is treated as failed even though its socket never closed — the
    /// partitioned-peer case the closed-connection detector of §5.5.1 cannot
    /// see. Classified as a disconnect.
    SiteUnavailable(String),
    /// Protocol violation between sites (unexpected message, bad state).
    Protocol(String),
    /// The remote site has crashed or is unreachable.
    SiteDown(String),
    /// Schema mismatch: wrong arity or field type.
    Schema(String),
    /// Constraint violation detected at PREPARE (workers vote NO, §4.3.2).
    Constraint(String),
    /// Recovery cannot proceed (e.g. more than K replicas of an object are
    /// down, §3.2).
    Unrecoverable(String),
    /// Catch-all invariant violation.
    Internal(String),
}

impl DbError {
    /// Convenience constructor for corrupt-state errors.
    pub fn corrupt(msg: impl Into<String>) -> Self {
        DbError::Corrupt(msg.into())
    }

    pub fn net(msg: impl Into<String>) -> Self {
        DbError::Net(msg.into())
    }

    pub fn protocol(msg: impl Into<String>) -> Self {
        DbError::Protocol(msg.into())
    }

    pub fn internal(msg: impl Into<String>) -> Self {
        DbError::Internal(msg.into())
    }

    pub fn timeout(msg: impl Into<String>) -> Self {
        DbError::Timeout(msg.into())
    }

    pub fn unavailable(msg: impl Into<String>) -> Self {
        DbError::SiteUnavailable(msg.into())
    }

    /// `true` for a transient per-request deadline expiry. Never implies the
    /// peer is dead; see [`DbError::is_disconnect`] for that.
    pub fn is_timeout(&self) -> bool {
        matches!(self, DbError::Timeout(_))
    }

    /// `true` for errors that indicate the remote party is gone, which the
    /// commit protocols treat as a worker/coordinator failure. A transient
    /// [`DbError::Timeout`] is deliberately *not* a disconnect — only a
    /// closed connection or an expired liveness deadline
    /// ([`DbError::SiteUnavailable`]) counts as site death.
    pub fn is_disconnect(&self) -> bool {
        matches!(
            self,
            DbError::Net(_) | DbError::SiteDown(_) | DbError::SiteUnavailable(_)
        ) || matches!(self, DbError::Io(e) if matches!(
            e.kind(),
            io::ErrorKind::ConnectionReset
                | io::ErrorKind::ConnectionAborted
                | io::ErrorKind::BrokenPipe
                | io::ErrorKind::UnexpectedEof
        ))
    }
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Io(e) => write!(f, "io error: {e}"),
            DbError::LockTimeout { txn, what } => {
                write!(
                    f,
                    "{txn} timed out waiting for lock on {what} (possible deadlock)"
                )
            }
            DbError::TransactionAborted(t) => write!(f, "{t} aborted"),
            DbError::UnknownTransaction(t) => write!(f, "unknown transaction {t}"),
            DbError::NoSuchTable(t) => write!(f, "no such table {t}"),
            DbError::NoSuchPage(p) => write!(f, "no such page {p}"),
            DbError::NoSuchRecord(r) => write!(f, "no such record {r}"),
            DbError::Corrupt(m) => write!(f, "corrupt state: {m}"),
            DbError::Full(m) => write!(f, "full: {m}"),
            DbError::Net(m) => write!(f, "network error: {m}"),
            DbError::Timeout(m) => write!(f, "request timed out: {m}"),
            DbError::SiteUnavailable(m) => write!(f, "site unavailable: {m}"),
            DbError::Protocol(m) => write!(f, "protocol violation: {m}"),
            DbError::SiteDown(m) => write!(f, "site down: {m}"),
            DbError::Schema(m) => write!(f, "schema error: {m}"),
            DbError::Constraint(m) => write!(f, "constraint violation: {m}"),
            DbError::Unrecoverable(m) => write!(f, "unrecoverable: {m}"),
            DbError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for DbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DbError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for DbError {
    fn from(e: io::Error) -> Self {
        DbError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::SiteId;

    #[test]
    fn disconnect_classification() {
        assert!(DbError::net("peer gone").is_disconnect());
        assert!(DbError::Io(io::Error::new(io::ErrorKind::BrokenPipe, "x")).is_disconnect());
        assert!(!DbError::Io(io::Error::new(io::ErrorKind::NotFound, "x")).is_disconnect());
        let tid = TransactionId::from_parts(SiteId(0), 1);
        assert!(!DbError::TransactionAborted(tid).is_disconnect());
        // Liveness-deadline expiry is site death; a transient per-request
        // timeout is not (the conflation this distinction exists to prevent).
        assert!(DbError::unavailable("site-1: liveness deadline").is_disconnect());
        assert!(!DbError::timeout("site-1: slow reply").is_disconnect());
        assert!(DbError::timeout("x").is_timeout());
        assert!(!DbError::unavailable("x").is_timeout());
        assert!(!DbError::net("x").is_timeout());
    }

    #[test]
    fn display_is_informative() {
        let tid = TransactionId::from_parts(SiteId(1), 2);
        let e = DbError::LockTimeout {
            txn: tid,
            what: "T1.p0".into(),
        };
        let s = e.to_string();
        assert!(s.contains("txn1:2") && s.contains("T1.p0"));
    }
}
