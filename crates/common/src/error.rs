//! Unified error type for every subsystem.

use crate::ids::{PageId, RecordId, TableId, TransactionId};
use std::fmt;
use std::io;

/// Result alias used across the workspace.
pub type DbResult<T> = Result<T, DbError>;

/// All error conditions surfaced by the database.
#[derive(Debug)]
pub enum DbError {
    /// Underlying file-system failure.
    Io(io::Error),
    /// A lock could not be granted before the deadlock timeout expired
    /// (thesis §6.1.2 resolves deadlocks by timeout).
    LockTimeout { txn: TransactionId, what: String },
    /// The transaction was aborted (locally or by the commit protocol).
    TransactionAborted(TransactionId),
    /// Unknown transaction id presented to a worker. Workers answer vote
    /// requests for unknown transactions with NO (§4.3.2 failure handling).
    UnknownTransaction(TransactionId),
    /// Unknown table.
    NoSuchTable(TableId),
    /// Page outside the current extent of its heap file.
    NoSuchPage(PageId),
    /// A record id pointed at an empty slot.
    NoSuchRecord(RecordId),
    /// Page, heap file or log contents failed validation.
    Corrupt(String),
    /// A heap page's checksum trailer did not match its contents on
    /// fault-in: the on-disk copy is damaged (torn write, bit rot, bad
    /// sector). *Site-local and repairable* — the page can be rebuilt from
    /// a live buddy's copy of the same key range, so this is neither a
    /// transient [`DbError::Timeout`] (re-reading the same bytes cannot
    /// help) nor a reason to escalate to [`DbError::SiteUnavailable`]
    /// (the site is otherwise live).
    CorruptPage { table: TableId, page: u32 },
    /// The page / segment / log buffer is full.
    Full(String),
    /// Networking failure; carries a human-readable cause. A closed
    /// connection doubles as failure detection (§5.5.1).
    Net(String),
    /// A single request exceeded its deadline. *Transient*: the peer may be
    /// slow, the link may be lossy, or a frame was delayed — the site is not
    /// presumed dead. Idempotent reads may retry; commit-protocol messages
    /// must never be retransmitted blindly.
    Timeout(String),
    /// A liveness deadline expired (or bounded retries were exhausted): the
    /// peer is treated as failed even though its socket never closed — the
    /// partitioned-peer case the closed-connection detector of §5.5.1 cannot
    /// see. Classified as a disconnect.
    SiteUnavailable(String),
    /// Protocol violation between sites (unexpected message, bad state).
    Protocol(String),
    /// The remote site has crashed or is unreachable.
    SiteDown(String),
    /// Schema mismatch: wrong arity or field type.
    Schema(String),
    /// Constraint violation detected at PREPARE (workers vote NO, §4.3.2).
    Constraint(String),
    /// Recovery cannot proceed (e.g. more than K replicas of an object are
    /// down, §3.2).
    Unrecoverable(String),
    /// The object is down to its last live copy and the cluster is
    /// configured to degrade to read-only rather than risk committing an
    /// update with no surviving replica. *Transient in the large*: the
    /// replication supervisor is (or should be) re-replicating; the write
    /// can be retried once the object is back above its K floor. Not a
    /// timeout and not a disconnect — the site answering is perfectly
    /// healthy, it is declining the write on policy.
    Degraded(String),
    /// The serving layer declined to admit the request: its bounded queue
    /// was over its depth/age watermark or no in-flight permit was
    /// available within the admission budget. *Retryable by construction*
    /// — nothing was executed, so the client may safely resubmit after
    /// backing off at least `retry_after_ms`. Not a timeout (the deadline
    /// never started running against the engine) and not a disconnect
    /// (the front door answered promptly; it is shedding load on policy).
    Overloaded { retry_after_ms: u64 },
    /// Catch-all invariant violation.
    Internal(String),
}

impl DbError {
    /// Convenience constructor for corrupt-state errors.
    pub fn corrupt(msg: impl Into<String>) -> Self {
        DbError::Corrupt(msg.into())
    }

    pub fn net(msg: impl Into<String>) -> Self {
        DbError::Net(msg.into())
    }

    pub fn protocol(msg: impl Into<String>) -> Self {
        DbError::Protocol(msg.into())
    }

    pub fn internal(msg: impl Into<String>) -> Self {
        DbError::Internal(msg.into())
    }

    pub fn timeout(msg: impl Into<String>) -> Self {
        DbError::Timeout(msg.into())
    }

    pub fn unavailable(msg: impl Into<String>) -> Self {
        DbError::SiteUnavailable(msg.into())
    }

    pub fn degraded(msg: impl Into<String>) -> Self {
        DbError::Degraded(msg.into())
    }

    pub fn overloaded(retry_after_ms: u64) -> Self {
        DbError::Overloaded { retry_after_ms }
    }

    /// `true` when the serving layer shed the request before execution.
    /// Always safe to retry after the embedded backoff hint; the request
    /// never reached the engine.
    pub fn is_overloaded(&self) -> bool {
        matches!(self, DbError::Overloaded { .. })
    }

    /// The client-side backoff hint carried by an [`DbError::Overloaded`]
    /// shed, if this is one.
    pub fn retry_after_ms(&self) -> Option<u64> {
        match self {
            DbError::Overloaded { retry_after_ms } => Some(*retry_after_ms),
            _ => None,
        }
    }

    /// `true` when a write was declined because the object is at its last
    /// live copy (read-only degradation policy). Retryable *after*
    /// re-replication, so clients should back off rather than hot-loop.
    pub fn is_degraded(&self) -> bool {
        matches!(self, DbError::Degraded(_))
    }

    /// `true` for a transient per-request deadline expiry. Never implies the
    /// peer is dead; see [`DbError::is_disconnect`] for that.
    pub fn is_timeout(&self) -> bool {
        matches!(self, DbError::Timeout(_))
    }

    /// `true` for errors that indicate the remote party is gone, which the
    /// commit protocols treat as a worker/coordinator failure. A transient
    /// [`DbError::Timeout`] is deliberately *not* a disconnect — only a
    /// closed connection or an expired liveness deadline
    /// ([`DbError::SiteUnavailable`]) counts as site death.
    pub fn is_disconnect(&self) -> bool {
        matches!(
            self,
            DbError::Net(_) | DbError::SiteDown(_) | DbError::SiteUnavailable(_)
        ) || matches!(self, DbError::Io(e) if matches!(
            e.kind(),
            io::ErrorKind::ConnectionReset
                | io::ErrorKind::ConnectionAborted
                | io::ErrorKind::BrokenPipe
                | io::ErrorKind::UnexpectedEof
        ))
    }

    /// `true` for corrupt-state errors: a checksum-failed page or any other
    /// failed content validation. Site-local — the *data* is damaged, not
    /// the site or the link — so callers must neither blindly retry the
    /// same read (it returns the same bytes) nor write the site off as
    /// dead. A corrupt read from a replica is answerable by a different
    /// replica of the same object.
    pub fn is_corrupt(&self) -> bool {
        matches!(self, DbError::Corrupt(_) | DbError::CorruptPage { .. })
    }

    /// Rebuilds a classified error from a remote site's stringly
    /// `Response::Err { msg }`. Corruption must keep its class across the
    /// wire: a recovering site that receives "corrupt page …" from a buddy
    /// should re-fetch the range from a *different* buddy, not retry or
    /// declare the buddy dead. Everything else stays a protocol error.
    pub fn from_remote_msg(msg: impl Into<String>) -> Self {
        let msg = msg.into();
        if msg.contains("corrupt page") || msg.contains("corrupt state") {
            DbError::Corrupt(msg)
        } else if msg.contains("degraded to read-only") {
            // Degradation must keep its class too: the client should back
            // off and retry after re-replication, not report a protocol bug.
            DbError::Degraded(msg)
        } else if let Some(rest) = msg
            .find("overloaded: retry after ")
            .map(|at| &msg[at + "overloaded: retry after ".len()..])
        {
            // A shed must keep both its class *and* its backoff hint across
            // the wire, or remote clients would hot-loop on a front door
            // that local clients back off from.
            let ms: u64 = rest
                .chars()
                .take_while(|c| c.is_ascii_digit())
                .collect::<String>()
                .parse()
                .unwrap_or(crate::config::DEFAULT_RETRY_AFTER_MS);
            DbError::Overloaded { retry_after_ms: ms }
        } else if msg.contains("deadline expired before") {
            // A front-door deadline rejection happens *before* execution, so
            // like a shed it is safe to surface with its real class: the
            // client's budget is spent, but nothing ran.
            DbError::Timeout(msg)
        } else {
            DbError::Protocol(msg)
        }
    }
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Io(e) => write!(f, "io error: {e}"),
            DbError::LockTimeout { txn, what } => {
                write!(
                    f,
                    "{txn} timed out waiting for lock on {what} (possible deadlock)"
                )
            }
            DbError::TransactionAborted(t) => write!(f, "{t} aborted"),
            DbError::UnknownTransaction(t) => write!(f, "unknown transaction {t}"),
            DbError::NoSuchTable(t) => write!(f, "no such table {t}"),
            DbError::NoSuchPage(p) => write!(f, "no such page {p}"),
            DbError::NoSuchRecord(r) => write!(f, "no such record {r}"),
            DbError::Corrupt(m) => write!(f, "corrupt state: {m}"),
            DbError::CorruptPage { table, page } => {
                write!(f, "corrupt page {page} of table {table}: checksum mismatch")
            }
            DbError::Full(m) => write!(f, "full: {m}"),
            DbError::Net(m) => write!(f, "network error: {m}"),
            DbError::Timeout(m) => write!(f, "request timed out: {m}"),
            DbError::SiteUnavailable(m) => write!(f, "site unavailable: {m}"),
            DbError::Protocol(m) => write!(f, "protocol violation: {m}"),
            DbError::SiteDown(m) => write!(f, "site down: {m}"),
            DbError::Schema(m) => write!(f, "schema error: {m}"),
            DbError::Constraint(m) => write!(f, "constraint violation: {m}"),
            DbError::Unrecoverable(m) => write!(f, "unrecoverable: {m}"),
            DbError::Degraded(m) => write!(f, "degraded to read-only: {m}"),
            DbError::Overloaded { retry_after_ms } => {
                write!(f, "overloaded: retry after {retry_after_ms} ms")
            }
            DbError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for DbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DbError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for DbError {
    fn from(e: io::Error) -> Self {
        DbError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::SiteId;

    #[test]
    fn disconnect_classification() {
        assert!(DbError::net("peer gone").is_disconnect());
        assert!(DbError::Io(io::Error::new(io::ErrorKind::BrokenPipe, "x")).is_disconnect());
        assert!(!DbError::Io(io::Error::new(io::ErrorKind::NotFound, "x")).is_disconnect());
        let tid = TransactionId::from_parts(SiteId(0), 1);
        assert!(!DbError::TransactionAborted(tid).is_disconnect());
        // Liveness-deadline expiry is site death; a transient per-request
        // timeout is not (the conflation this distinction exists to prevent).
        assert!(DbError::unavailable("site-1: liveness deadline").is_disconnect());
        assert!(!DbError::timeout("site-1: slow reply").is_disconnect());
        assert!(DbError::timeout("x").is_timeout());
        assert!(!DbError::unavailable("x").is_timeout());
        assert!(!DbError::net("x").is_timeout());
    }

    #[test]
    fn corrupt_classification() {
        let e = DbError::CorruptPage {
            table: TableId(3),
            page: 7,
        };
        // Site-local and repairable: neither transient nor site death.
        assert!(e.is_corrupt());
        assert!(!e.is_timeout());
        assert!(!e.is_disconnect());
        assert!(DbError::corrupt("bad frame").is_corrupt());
        assert!(!DbError::timeout("x").is_corrupt());
        assert!(!DbError::unavailable("x").is_corrupt());
        // Corruption keeps its class across a stringly wire hop.
        assert!(DbError::from_remote_msg(e.to_string()).is_corrupt());
        assert!(!DbError::from_remote_msg("no such table T9").is_corrupt());
    }

    #[test]
    fn degraded_classification() {
        let e = DbError::degraded("\"sales\" is at its last live copy");
        // Policy refusal by a healthy site: none of the other classes.
        assert!(e.is_degraded());
        assert!(!e.is_timeout());
        assert!(!e.is_disconnect());
        assert!(!e.is_corrupt());
        // And it keeps its class across a stringly wire hop.
        assert!(DbError::from_remote_msg(e.to_string()).is_degraded());
    }

    #[test]
    fn overloaded_classification() {
        let e = DbError::overloaded(40);
        // A shed is its own class: retryable by construction, but not a
        // timeout, not site death, not damage, not a policy degrade.
        assert!(e.is_overloaded());
        assert_eq!(e.retry_after_ms(), Some(40));
        assert!(!e.is_timeout());
        assert!(!e.is_disconnect());
        assert!(!e.is_corrupt());
        assert!(!e.is_degraded());
        assert!(!DbError::timeout("x").is_overloaded());
        assert_eq!(DbError::timeout("x").retry_after_ms(), None);
        // Class *and* backoff hint survive the stringly wire hop.
        let back = DbError::from_remote_msg(e.to_string());
        assert!(back.is_overloaded());
        assert_eq!(back.retry_after_ms(), Some(40));
        // A mangled hint still reconstructs the class with a sane default.
        let back = DbError::from_remote_msg("overloaded: retry after ??? ms");
        assert!(back.is_overloaded());
        assert_eq!(
            back.retry_after_ms(),
            Some(crate::config::DEFAULT_RETRY_AFTER_MS)
        );
    }

    #[test]
    fn display_is_informative() {
        let tid = TransactionId::from_parts(SiteId(1), 2);
        let e = DbError::LockTimeout {
            txn: tid,
            what: "T1.p0".into(),
        };
        let s = e.to_string();
        assert!(s.contains("txn1:2") && s.contains("T1.p0"));
    }
}
