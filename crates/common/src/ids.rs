//! Typed identifiers used throughout the system.
//!
//! Every identifier is a thin newtype over an integer so that the compiler
//! catches id-category confusion (e.g. passing a table id where a page number
//! was expected), at zero runtime cost.

use std::fmt;

/// Identifies one site (node) in the distributed database.
///
/// A site may act as a worker, a coordinator, or both (thesis §4.1).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SiteId(pub u16);

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// Identifies one stored database object on a site: a table, or a horizontal
/// partition of a table. Replicated copies on different sites share the same
/// logical table name in the catalog but have independent `TableId`s.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TableId(pub u32);

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Identifies a 4 KB page within a table's heap file.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PageId {
    pub table: TableId,
    pub page_no: u32,
}

impl PageId {
    pub const fn new(table: TableId, page_no: u32) -> Self {
        PageId { table, page_no }
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.p{}", self.table, self.page_no)
    }
}

/// Physical address of a tuple: page plus slot number within the page.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RecordId {
    pub page: PageId,
    pub slot: u16,
}

impl RecordId {
    pub const fn new(page: PageId, slot: u16) -> Self {
        RecordId { page, slot }
    }
}

impl fmt::Display for RecordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.page, self.slot)
    }
}

/// Index of a segment within a segmented heap file (thesis §4.2). Segments
/// are ordered by insertion time; segment 0 is the oldest.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SegmentNo(pub u32);

impl fmt::Display for SegmentNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seg{}", self.0)
    }
}

/// Globally unique transaction identifier.
///
/// Coordinators mint transaction ids from a site-scoped counter; the site id
/// is baked into the high bits so ids from different coordinators never
/// collide (the thesis runs one coordinator, but §4.1 allows several).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TransactionId(pub u64);

impl TransactionId {
    /// Builds an id unique across coordinators: high 16 bits = coordinator
    /// site, low 48 bits = per-coordinator sequence number.
    pub fn from_parts(coordinator: SiteId, seq: u64) -> Self {
        debug_assert!(seq < (1 << 48), "transaction sequence overflow");
        TransactionId(((coordinator.0 as u64) << 48) | seq)
    }

    /// The coordinator that originated this transaction.
    pub fn coordinator(self) -> SiteId {
        SiteId((self.0 >> 48) as u16)
    }

    /// The per-coordinator sequence number.
    pub fn seq(self) -> u64 {
        self.0 & ((1 << 48) - 1)
    }
}

impl fmt::Display for TransactionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txn{}:{}", self.coordinator().0, self.seq())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transaction_id_round_trips_parts() {
        let tid = TransactionId::from_parts(SiteId(7), 123_456);
        assert_eq!(tid.coordinator(), SiteId(7));
        assert_eq!(tid.seq(), 123_456);
    }

    #[test]
    fn transaction_ids_from_different_coordinators_do_not_collide() {
        let a = TransactionId::from_parts(SiteId(1), 5);
        let b = TransactionId::from_parts(SiteId(2), 5);
        assert_ne!(a, b);
    }

    #[test]
    fn display_forms_are_compact() {
        let rid = RecordId::new(PageId::new(TableId(3), 9), 4);
        assert_eq!(rid.to_string(), "T3.p9/4");
        assert_eq!(SiteId(2).to_string(), "S2");
        assert_eq!(SegmentNo(1).to_string(), "seg1");
    }

    #[test]
    fn page_ids_order_by_table_then_page() {
        let a = PageId::new(TableId(1), 9);
        let b = PageId::new(TableId(2), 0);
        assert!(a < b);
    }
}
