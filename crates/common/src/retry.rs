//! The one seeded-backoff retry engine.
//!
//! Every bounded retry loop in the workspace — idempotent read RPCs, clock
//! reads, recovery fetches, supervisor repair attempts — is built on
//! [`retry_with`], so backoff shape, attempt caps, and metrics accounting
//! live in exactly one place. Delays are *seeded jittered exponentials*: a
//! pure function of `(seed, attempt)`, so a chaos-soak run replays its retry
//! schedule byte-identically under the same seed (the determinism contract),
//! while distinct seeds decorrelate retry storms across sites.
//!
//! Taxonomy: callers retry *transient* failures ([`DbError::Timeout`], and
//! optionally disconnect-classified errors for connection establishment);
//! [`DbError::SiteUnavailable`] is already an escalated verdict and must
//! never be retried blindly. [`retry_transient`] encodes that policy and is
//! the single place where exhausting a transient-timeout budget escalates to
//! `SiteUnavailable`.

use crate::error::{DbError, DbResult};
use crate::metrics::Metrics;
use std::time::Duration;

/// Shape of one bounded retry schedule.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Retries *after* the first attempt (`0` = try once, never retry).
    pub attempts: u32,
    /// Delay before the first retry; doubles per retry.
    pub base: Duration,
    /// Upper bound on any single delay.
    pub cap: Duration,
    /// Jitter seed. Derive it from the run seed plus a per-call-site salt so
    /// concurrent loops decorrelate but a replay reproduces every delay.
    pub seed: u64,
}

impl RetryPolicy {
    pub const fn new(attempts: u32, base: Duration, cap: Duration, seed: u64) -> Self {
        RetryPolicy {
            attempts,
            base,
            cap,
            seed,
        }
    }

    /// No delays at all — for tests and for callers that pace themselves.
    pub const fn immediate(attempts: u32) -> Self {
        RetryPolicy::new(attempts, Duration::ZERO, Duration::ZERO, 0)
    }

    /// The delay preceding retry number `attempt` (0-based): an exponential
    /// of `base` capped at `cap`, jittered into `[half, full]` by a pure
    /// hash of `(seed, attempt)` — decorrelated but replayable.
    pub fn delay(&self, attempt: u32) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32.checked_shl(attempt.min(16)).unwrap_or(u32::MAX))
            .min(self.cap);
        let nanos = exp.as_nanos() as u64;
        if nanos == 0 {
            return Duration::ZERO;
        }
        let half = nanos / 2;
        let jitter = splitmix64(self.seed ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        Duration::from_nanos(half + jitter % (nanos - half + 1))
    }
}

/// SplitMix64: the same tiny generator the chaos layer uses — one
/// multiply-xor-shift chain, uniform, stateless here (we feed it a fresh
/// `seed ^ f(attempt)` each time).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs `op` with up to `policy.attempts` bounded retries after failures
/// that `retryable` classifies as worth retrying, sleeping
/// [`RetryPolicy::delay`] between attempts. The terminal error is returned
/// *verbatim* — classification (escalation, wrapping) is the caller's
/// business. `op` receives the 0-based attempt number.
///
/// Only for *idempotent* operations. Commit-protocol messages must never
/// pass through here: a retransmitted PREPARE/COMMIT could double-apply.
pub fn retry_with<T>(
    policy: &RetryPolicy,
    metrics: Option<&Metrics>,
    mut retryable: impl FnMut(&DbError) -> bool,
    mut op: impl FnMut(u32) -> DbResult<T>,
) -> DbResult<T> {
    let mut attempt = 0u32;
    loop {
        match op(attempt) {
            Ok(v) => return Ok(v),
            Err(e) if attempt < policy.attempts && retryable(&e) => {
                if let Some(m) = metrics {
                    m.add_backoff_retries(1);
                }
                let delay = policy.delay(attempt);
                if delay > Duration::ZERO {
                    std::thread::sleep(delay);
                }
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// [`retry_with`] under the transient-failure taxonomy: retries
/// [`DbError::Timeout`] only — never `SiteUnavailable` (already an
/// escalated verdict) and never any other class. If the budget is exhausted
/// while the error is still a timeout, the slow peer graduates to
/// [`DbError::SiteUnavailable`]: bounded retries *are* a liveness deadline,
/// just measured in attempts instead of wall-clock.
pub fn retry_transient<T>(
    policy: &RetryPolicy,
    metrics: Option<&Metrics>,
    op: impl FnMut(u32) -> DbResult<T>,
) -> DbResult<T> {
    match retry_with(policy, metrics, DbError::is_timeout, op) {
        Err(e) if e.is_timeout() => {
            if let Some(m) = metrics {
                m.add_rpc_timeouts(1);
            }
            // harbor-lint: allow(error-taxonomy) — bounded-retry exhaustion is a classification boundary: N transient timeouts in a row IS the liveness verdict
            Err(DbError::unavailable(format!(
                "{} retries exhausted: {e}",
                policy.attempts
            )))
        }
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    fn policy() -> RetryPolicy {
        RetryPolicy::immediate(3)
    }

    #[test]
    fn delays_are_deterministic_capped_and_jittered() {
        let p = RetryPolicy::new(8, Duration::from_millis(10), Duration::from_millis(80), 42);
        let again = RetryPolicy::new(8, Duration::from_millis(10), Duration::from_millis(80), 42);
        for a in 0..8 {
            // Same (seed, attempt) → same delay; bounded by [half, cap].
            assert_eq!(p.delay(a), again.delay(a));
            assert!(p.delay(a) <= Duration::from_millis(80));
            let floor = p
                .delay(a)
                .max(Duration::from_millis(5))
                .min(Duration::from_millis(40));
            assert!(p.delay(a) >= floor.min(p.delay(a)));
        }
        // Different seeds decorrelate (overwhelmingly likely some attempt
        // differs).
        let other = RetryPolicy::new(8, Duration::from_millis(10), Duration::from_millis(80), 43);
        assert!((0..8).any(|a| p.delay(a) != other.delay(a)));
        // Exponential growth reaches the cap's half-floor.
        assert!(p.delay(7) >= Duration::from_millis(40));
    }

    #[test]
    fn retries_timeouts_up_to_cap_then_escalates() {
        let m = Metrics::new();
        let calls = Cell::new(0u32);
        let r: DbResult<()> = retry_transient(&policy(), Some(&m), |_| {
            calls.set(calls.get() + 1);
            Err(DbError::timeout("slow"))
        });
        assert_eq!(calls.get(), 4); // 1 try + 3 retries
                                    // Exhaustion escalates: the slow peer is now presumed dead.
        assert!(r.unwrap_err().is_disconnect());
        assert_eq!(m.backoff_retries(), 3);
    }

    #[test]
    fn never_retries_unavailable_or_other_classes() {
        for err in [
            DbError::unavailable("dead"),
            DbError::net("closed"),
            DbError::internal("bug"),
        ] {
            let msg = err.to_string();
            let calls = Cell::new(0u32);
            let moved = Cell::new(Some(err));
            let r: DbResult<()> = retry_transient(&policy(), None, |_| {
                calls.set(calls.get() + 1);
                Err(moved.take().expect("called once"))
            });
            assert_eq!(calls.get(), 1, "{msg} must not be retried");
            assert_eq!(r.unwrap_err().to_string(), msg, "terminal error verbatim");
        }
    }

    #[test]
    fn success_mid_schedule_stops_retrying() {
        let m = Metrics::new();
        let r = retry_transient(&policy(), Some(&m), |attempt| {
            if attempt < 2 {
                Err(DbError::timeout("warming up"))
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(r.unwrap(), 2);
        assert_eq!(m.backoff_retries(), 2);
    }

    #[test]
    fn custom_classifier_widens_the_retry_set() {
        let calls = Cell::new(0u32);
        let r: DbResult<()> = retry_with(
            &policy(),
            None,
            |e| e.is_timeout() || e.is_disconnect(),
            |_| {
                calls.set(calls.get() + 1);
                Err(DbError::net("connection refused"))
            },
        );
        assert_eq!(calls.get(), 4);
        // retry_with never reclassifies: the net error comes back verbatim.
        assert!(matches!(r.unwrap_err(), DbError::Net(_)));
    }
}
