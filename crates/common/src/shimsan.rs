//! ShimSan: vector-clock happens-before tracking threaded through the
//! vendored concurrency shims — the *dynamic* complement to harbor-lint's
//! static `lockset-race` pass, exactly as [`lockrank`](crate::lockrank) is
//! the dynamic complement to the static `lock-rank` rule.
//!
//! The container is offline, so every lock and every channel in the
//! workspace flows through `shims/parking_lot` and `shims/crossbeam`. That
//! chokepoint makes a sanitizer cheap to retrofit: each shim `Mutex` /
//! `RwLock` carries a [`SyncClock`] (merged into the acquiring thread's
//! vector clock on lock, back out on unlock), and each channel message
//! carries a [`MsgClock`] stamped at `send` and joined at `recv`. A
//! [`RaceWitness`] placed next to a shared location then panics the run the
//! moment two accesses happen with **no** happens-before edge through those
//! instrumented primitives — which is precisely the runtime shape of an
//! "empty / inconsistent lockset" finding from the static pass, so every
//! static verdict can be confirmed (witness fires under the chaos soak) or
//! refuted (soak stays silent with the witness armed).
//!
//! Everything here is compiled to zero-sized no-ops in release builds
//! (`debug_assertions` off): the 6 pinned chaos-soak seeds and the whole
//! debug test suite run with the sanitizer armed, production binaries pay
//! nothing.
//!
//! Clock model: each thread gets a small integer id and a vector clock
//! `clock[tid]`. An access by thread `u` is recorded as the epoch
//! `(u, clock_u[u])`; a later access by thread `t` is ordered after it iff
//! `clock_t[u] >= epoch` (the standard FastTrack-style epoch test). Joins
//! only happen through the shims, so an edge the shims cannot see — two raw
//! threads touching the same witness with no lock and no channel between
//! them — is reported as a race even when the wall clock happened to
//! serialize the accesses. That strictness is the point: "it worked this
//! run" is not synchronization.

/// `true` when the sanitizer actually tracks and checks (debug builds).
pub const fn is_armed() -> bool {
    cfg!(debug_assertions)
}

#[cfg(debug_assertions)]
mod armed {
    use std::cell::RefCell;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    use std::sync::{Mutex, PoisonError};

    static NEXT_TID: AtomicUsize = AtomicUsize::new(0);
    /// Happens-before edges recorded through locks and channels.
    static SYNC_EDGES: AtomicU64 = AtomicU64::new(0);
    /// Witness accesses checked.
    static WITNESS_CHECKS: AtomicU64 = AtomicU64::new(0);

    struct ThreadSan {
        tid: usize,
        clock: Vec<u64>,
    }

    thread_local! {
        static TCB: RefCell<ThreadSan> = RefCell::new({
            let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            let mut clock = vec![0u64; tid + 1];
            clock[tid] = 1;
            ThreadSan { tid, clock }
        });
    }

    fn join(dst: &mut Vec<u64>, src: &[u64]) {
        if dst.len() < src.len() {
            dst.resize(src.len(), 0);
        }
        for (d, s) in dst.iter_mut().zip(src.iter()) {
            if *s > *d {
                *d = *s;
            }
        }
    }

    /// A happens-before rendezvous embedded in a lock: merged into the
    /// acquiring thread on lock, merged back from the releasing thread on
    /// unlock.
    pub struct SyncClock {
        state: Mutex<Vec<u64>>,
    }

    impl SyncClock {
        pub const fn new() -> Self {
            SyncClock {
                state: Mutex::new(Vec::new()),
            }
        }

        /// Lock acquired: everything the previous holder did now
        /// happens-before this thread's next access.
        pub fn acquire(&self) {
            TCB.with(|t| {
                let mut t = t.borrow_mut();
                let state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
                join(&mut t.clock, &state);
            });
            SYNC_EDGES.fetch_add(1, Ordering::Relaxed);
        }

        /// Lock released: publish this thread's history to the next holder
        /// and advance the local epoch.
        pub fn release(&self) {
            TCB.with(|t| {
                let mut t = t.borrow_mut();
                let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
                let snapshot = t.clock.clone();
                join(&mut state, &snapshot);
                drop(state);
                let tid = t.tid;
                t.clock[tid] += 1;
            });
            SYNC_EDGES.fetch_add(1, Ordering::Relaxed);
        }
    }

    impl Default for SyncClock {
        fn default() -> Self {
            SyncClock::new()
        }
    }

    /// The clock a channel message carries from its `send` to its `recv` —
    /// per-message, so a receiver is ordered after exactly the sender that
    /// produced its message, not after every sender of the channel.
    pub struct MsgClock {
        clock: Vec<u64>,
    }

    impl MsgClock {
        /// Snapshot the sending thread's history and advance its epoch.
        pub fn stamp() -> Self {
            let clock = TCB.with(|t| {
                let mut t = t.borrow_mut();
                let snapshot = t.clock.clone();
                let tid = t.tid;
                t.clock[tid] += 1;
                snapshot
            });
            SYNC_EDGES.fetch_add(1, Ordering::Relaxed);
            MsgClock { clock }
        }

        /// Receiving thread: everything the sender did before the send now
        /// happens-before the receiver's next access.
        pub fn join_into_current(self) {
            TCB.with(|t| {
                let mut t = t.borrow_mut();
                join(&mut t.clock, &self.clock);
            });
            SYNC_EDGES.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[derive(Clone, Copy)]
    struct Access {
        tid: usize,
        epoch: u64,
    }

    struct WitnessState {
        last_write: Option<Access>,
        reads: Vec<Access>,
    }

    /// A race detector for one shared location. Place it next to the field
    /// it guards and call [`check_write`](RaceWitness::check_write) /
    /// [`check_read`](RaceWitness::check_read) at every access; the witness
    /// panics when two accesses have no happens-before edge through the
    /// instrumented shims.
    pub struct RaceWitness {
        state: Mutex<WitnessState>,
    }

    impl RaceWitness {
        pub const fn new() -> Self {
            RaceWitness {
                state: Mutex::new(WitnessState {
                    last_write: None,
                    reads: Vec::new(),
                }),
            }
        }

        fn ordered_after(clock: &[u64], a: &Access) -> bool {
            clock.get(a.tid).copied().unwrap_or(0) >= a.epoch
        }

        /// Records a write. Panics if any prior read or write is concurrent
        /// (no happens-before edge) with this thread.
        pub fn check_write(&self, what: &str) {
            WITNESS_CHECKS.fetch_add(1, Ordering::Relaxed);
            TCB.with(|t| {
                let mut t = t.borrow_mut();
                let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
                let racing = st
                    .last_write
                    .iter()
                    .chain(st.reads.iter())
                    .find(|a| a.tid != t.tid && !Self::ordered_after(&t.clock, a))
                    .copied();
                if let Some(a) = racing {
                    // Release the borrows before unwinding through them.
                    drop(st);
                    let tid = t.tid;
                    drop(t);
                    panic!(
                        "ShimSan: data race on `{what}` — write by thread {tid} is \
                         concurrent with an access by thread {} (no happens-before \
                         edge through any instrumented lock or channel)",
                        a.tid
                    );
                }
                let tid = t.tid;
                st.last_write = Some(Access {
                    tid,
                    epoch: t.clock[tid],
                });
                st.reads.clear();
                drop(st);
                t.clock[tid] += 1;
            });
        }

        /// Records a read. Panics if the previous write is concurrent (no
        /// happens-before edge) with this thread. Concurrent reads are fine.
        pub fn check_read(&self, what: &str) {
            WITNESS_CHECKS.fetch_add(1, Ordering::Relaxed);
            TCB.with(|t| {
                let mut t = t.borrow_mut();
                let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
                let racing = st
                    .last_write
                    .filter(|a| a.tid != t.tid && !Self::ordered_after(&t.clock, a));
                if let Some(a) = racing {
                    drop(st);
                    let tid = t.tid;
                    drop(t);
                    panic!(
                        "ShimSan: data race on `{what}` — read by thread {tid} is \
                         concurrent with a write by thread {} (no happens-before \
                         edge through any instrumented lock or channel)",
                        a.tid
                    );
                }
                let tid = t.tid;
                let epoch = t.clock[tid];
                st.reads.push(Access { tid, epoch });
                // Bound the read set: a same-thread later read dominates its
                // earlier ones for the race check.
                if st.reads.len() > 64 {
                    let mut newest: Vec<Access> = Vec::with_capacity(8);
                    for a in st.reads.drain(..) {
                        match newest.iter_mut().find(|n| n.tid == a.tid) {
                            Some(n) => n.epoch = n.epoch.max(a.epoch),
                            None => newest.push(a),
                        }
                    }
                    st.reads = newest;
                }
                drop(st);
                t.clock[tid] += 1;
            });
        }
    }

    impl Default for RaceWitness {
        fn default() -> Self {
            RaceWitness::new()
        }
    }

    /// Happens-before edges recorded so far (locks, unlocks, sends, recvs).
    pub fn sync_edges() -> u64 {
        SYNC_EDGES.load(Ordering::Relaxed)
    }

    /// Witness accesses checked so far.
    pub fn witness_checks() -> u64 {
        WITNESS_CHECKS.load(Ordering::Relaxed)
    }
}

#[cfg(not(debug_assertions))]
mod armed {
    /// Zero-sized in release builds.
    pub struct SyncClock;

    impl SyncClock {
        #[inline(always)]
        pub const fn new() -> Self {
            SyncClock
        }
        #[inline(always)]
        pub fn acquire(&self) {}
        #[inline(always)]
        pub fn release(&self) {}
    }

    impl Default for SyncClock {
        fn default() -> Self {
            SyncClock
        }
    }

    /// Zero-sized in release builds.
    pub struct MsgClock;

    impl MsgClock {
        #[inline(always)]
        pub fn stamp() -> Self {
            MsgClock
        }
        #[inline(always)]
        pub fn join_into_current(self) {}
    }

    /// Zero-sized in release builds.
    pub struct RaceWitness;

    impl RaceWitness {
        #[inline(always)]
        pub const fn new() -> Self {
            RaceWitness
        }
        #[inline(always)]
        pub fn check_write(&self, _what: &str) {}
        #[inline(always)]
        pub fn check_read(&self, _what: &str) {}
    }

    impl Default for RaceWitness {
        fn default() -> Self {
            RaceWitness
        }
    }

    #[inline(always)]
    pub fn sync_edges() -> u64 {
        0
    }

    #[inline(always)]
    pub fn witness_checks() -> u64 {
        0
    }
}

pub use armed::{sync_edges, witness_checks, MsgClock, RaceWitness, SyncClock};

#[cfg(all(test, debug_assertions))]
mod tests {
    use super::*;

    #[test]
    fn same_thread_accesses_never_race() {
        let w = RaceWitness::new();
        w.check_write("x");
        w.check_read("x");
        w.check_write("x");
    }

    #[test]
    fn sync_clock_orders_across_threads() {
        use std::sync::Arc;
        let w = Arc::new(RaceWitness::new());
        let clock = Arc::new(SyncClock::new());
        let (w2, c2) = (w.clone(), clock.clone());
        // Thread 1 writes, then "unlocks"; main "locks", then writes: the
        // release/acquire pair is the happens-before edge.
        let t = std::thread::spawn(move || {
            w2.check_write("shared");
            c2.release();
        });
        t.join().unwrap();
        clock.acquire();
        w.check_write("shared");
    }

    #[test]
    fn msg_clock_orders_sender_before_receiver() {
        use std::sync::mpsc;
        use std::sync::Arc;
        let w = Arc::new(RaceWitness::new());
        let (tx, rx) = mpsc::channel::<MsgClock>();
        let w2 = w.clone();
        let t = std::thread::spawn(move || {
            w2.check_write("via-channel");
            tx.send(MsgClock::stamp()).unwrap();
        });
        rx.recv().unwrap().join_into_current();
        w.check_write("via-channel");
        t.join().unwrap();
    }

    #[test]
    fn edges_and_checks_are_counted() {
        let before = (sync_edges(), witness_checks());
        let c = SyncClock::new();
        c.acquire();
        c.release();
        RaceWitness::new().check_write("counted");
        assert!(sync_edges() >= before.0 + 2);
        assert!(witness_checks() > before.1);
    }
}
