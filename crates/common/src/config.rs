//! Runtime configuration knobs shared by the storage and transaction layers.

use std::time::Duration;

/// Page size used by the heap files and buffer pool. The thesis uses 4 KB
/// pages (§6.1.1).
pub const PAGE_SIZE: usize = 4096;

/// Bytes of every on-disk page reserved for its FNV-1a checksum trailer
/// (the page's last [`PAGE_CRC_LEN`] bytes, covering bytes
/// `0..PAGE_SIZE - PAGE_CRC_LEN`). Stamped on every page write and
/// verified on every fault-in, mirroring the WAL frame checksum. The
/// slotted-page layout and the segment directory both size themselves
/// against [`PAGE_PAYLOAD`] so neither ever writes into the trailer.
pub const PAGE_CRC_LEN: usize = 4;

/// Usable page bytes — everything before the checksum trailer.
pub const PAGE_PAYLOAD: usize = PAGE_SIZE - PAGE_CRC_LEN;

/// Tuples per `Response::Tuples` batch when a worker streams a scan back to
/// a peer. Large enough to amortise framing, small enough that a recovering
/// site can start applying before the stream finishes.
pub const DEFAULT_SCAN_BATCH: usize = 512;

/// Worker threads a partitioned sequential scan fans its page range across
/// (exec-side `ParallelSeqScan` and the worker's zero-copy scan service).
/// Kept small: the fan-out is aligned with the sharded buffer pool, and the
/// merge preserves partition order, so extra threads past the shard count
/// only add channel traffic.
pub const DEFAULT_SCAN_WORKERS: usize = 2;

/// Minimum pruned-page count per scan worker before a scan parallelises:
/// below this the thread spawn plus channel hops exceed the scan itself.
pub const PARALLEL_SCAN_MIN_PAGES: usize = 8;

/// Applier threads draining the Phase-2 recovery pipeline on the recovering
/// site (tuples are fetched from buddies by separate fetcher threads).
pub const DEFAULT_PHASE2_APPLIERS: usize = 2;

/// Maximum number of distinct buddies a segment-parallel Phase 2 fans
/// recovery ranges across.
pub const DEFAULT_MAX_BUDDY_FANOUT: usize = 4;

/// Maximum number of per-segment insertion-time ranges Phase 2 splits an
/// object's catch-up into. Adjacent segment ranges are merged above this.
pub const DEFAULT_MAX_PHASE2_RANGES: usize = 32;

/// Minimum buddy-side data volume (in pages) a Phase-2 range must cover:
/// adjacent segments are merged into one ranged query until their combined
/// page count reaches this, so a small catch-up never pays per-range round
/// trips that exceed its wire time.
pub const DEFAULT_MIN_RANGE_PAGES: u64 = 8;

/// Hard ceiling on a single wire frame's payload. The transports read a
/// 4-byte length prefix and then allocate that many bytes; without a cap a
/// corrupt or hostile prefix allocates up to 4 GiB before the first payload
/// byte arrives. Anything legitimate (scan batches, recovery streams,
/// epoch-commit waves) stays far below this; a frame above it is treated as
/// corrupt framing, not as a request. Must stay above the 1 MiB frames the
/// transport conformance tests exercise.
pub const MAX_FRAME_BYTES: usize = 64 * 1024 * 1024;

/// Backoff hint stamped into [`crate::DbError::Overloaded`] sheds when the
/// shedding site has nothing smarter to say (and the fallback when a
/// remote shed's hint fails to parse back off the wire). Long enough to
/// let a queue of default depth drain at typical commit latency, short
/// enough that a shed burst costs a retrying client only a few tens of
/// milliseconds.
pub const DEFAULT_RETRY_AFTER_MS: u64 = 25;

/// Default per-request deadline the front door stamps on requests that
/// arrive without one. Far below [`DEFAULT_RPC_DEADLINE`]: a serving-path
/// request that cannot start within a second is better shed (the client
/// retries against a drained queue) than queued into uselessness.
pub const DEFAULT_REQUEST_DEADLINE: Duration = Duration::from_secs(1);

/// Default liveness deadline for a single RPC round trip (and for each frame
/// of a streamed scan). A peer that produces no bytes for this long is
/// treated as failed even if its socket never closes — the partitioned-peer
/// case closed-connection detection (§5.5.1) cannot see. Generous by default
/// so ordinary deployments never trip it; chaos/soak runs shrink it.
pub const DEFAULT_RPC_DEADLINE: Duration = Duration::from_secs(30);

/// Default number of *extra* attempts for idempotent read RPCs (historical
/// queries, clock reads) after a transient failure. Commit-protocol messages
/// are never retried — a retransmitted PREPARE/COMMIT could double-apply.
pub const DEFAULT_READ_RETRIES: u32 = 2;

/// Base backoff between idempotent-read retry attempts (doubles per retry).
pub const DEFAULT_RETRY_BACKOFF: Duration = Duration::from_millis(10);

/// Models the latency of stable storage.
///
/// The thesis machines force log records to 2006-era disks where a forced
/// write costs milliseconds; on modern NVMe (or a RAM-backed CI filesystem) a
/// real `fsync` can be ~10 µs, which would flatten Figures 6-2/6-3. The
/// profile decides, per forced write, whether to issue a real `fsync` and/or
/// sleep an emulated latency; every force is counted either way so Table 4.2
/// is measured from real executions. See DESIGN.md §1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DiskProfile {
    /// Issue a real `File::sync_data` on force.
    pub real_fsync: bool,
    /// Additional emulated latency applied to every forced write.
    pub emulated_force_latency: Option<Duration>,
}

impl DiskProfile {
    /// Real fsync, no emulation — what a production deployment would run.
    pub const fn real() -> Self {
        DiskProfile {
            real_fsync: true,
            emulated_force_latency: None,
        }
    }

    /// No fsync, no emulation — fastest; used by unit tests that don't
    /// measure durability costs.
    pub const fn fast() -> Self {
        DiskProfile {
            real_fsync: false,
            emulated_force_latency: None,
        }
    }

    /// Emulates a 2006-era dedicated log disk: no real fsync (the data still
    /// reaches the OS file, so crash *simulation* remains exact) plus a fixed
    /// per-force latency.
    pub fn emulated(latency: Duration) -> Self {
        DiskProfile {
            real_fsync: false,
            emulated_force_latency: Some(latency),
        }
    }
}

impl Default for DiskProfile {
    fn default() -> Self {
        DiskProfile::real()
    }
}

/// Storage-layer configuration.
#[derive(Clone, Debug)]
pub struct StorageConfig {
    /// Buffer pool capacity in pages.
    pub buffer_pool_pages: usize,
    /// Maximum data pages per segment (thesis: 10 MB segments = 2560 pages;
    /// tests and scaled benches use smaller values).
    pub segment_pages: u32,
    /// Disk latency model for forced writes.
    pub disk: DiskProfile,
    /// Lock wait before declaring a deadlock by timeout (§6.1.2).
    pub lock_timeout: Duration,
}

impl Default for StorageConfig {
    fn default() -> Self {
        StorageConfig {
            buffer_pool_pages: 4096, // 16 MB
            segment_pages: 256,      // 1 MB segments by default
            disk: DiskProfile::real(),
            lock_timeout: Duration::from_millis(500),
        }
    }
}

impl StorageConfig {
    /// A small configuration for unit tests: tiny segments so segment
    /// boundaries are exercised with few tuples, and no fsync.
    pub fn for_tests() -> Self {
        StorageConfig {
            buffer_pool_pages: 128,
            segment_pages: 4,
            disk: DiskProfile::fast(),
            lock_timeout: Duration::from_millis(200),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles() {
        assert!(DiskProfile::real().real_fsync);
        assert!(!DiskProfile::fast().real_fsync);
        let e = DiskProfile::emulated(Duration::from_millis(5));
        assert_eq!(e.emulated_force_latency, Some(Duration::from_millis(5)));
    }

    #[test]
    fn test_config_is_small() {
        let c = StorageConfig::for_tests();
        assert!(c.segment_pages <= 8);
        assert_eq!(c.disk, DiskProfile::fast());
    }
}
