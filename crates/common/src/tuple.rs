//! The in-memory tuple and its fixed-width on-disk encoding.

use crate::codec::{Decoder, Encoder};
use crate::error::{DbError, DbResult};
use crate::schema::{TupleDesc, COL_DELETION_TS, COL_INSERTION_TS};
use crate::time::Timestamp;
use crate::value::Value;
use crate::FieldType;
use std::fmt;

/// A row: a vector of values conforming to some [`TupleDesc`].
///
/// Stored tuples carry the two reserved version columns in positions 0 and 1;
/// query outputs may have arbitrary shapes.
#[derive(Clone, PartialEq, Debug)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    pub fn new(values: Vec<Value>) -> Self {
        Tuple { values }
    }

    /// Builds a stored tuple from user fields plus explicit version columns.
    pub fn versioned(insertion: Timestamp, deletion: Timestamp, user: Vec<Value>) -> Self {
        let mut values = Vec::with_capacity(user.len() + 2);
        values.push(Value::Time(insertion));
        values.push(Value::Time(deletion));
        values.extend(user);
        Tuple { values }
    }

    pub fn values(&self) -> &[Value] {
        &self.values
    }

    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    pub fn get(&self, i: usize) -> &Value {
        &self.values[i]
    }

    pub fn set(&mut self, i: usize, v: Value) {
        self.values[i] = v;
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Insertion timestamp of a stored tuple.
    pub fn insertion_ts(&self) -> DbResult<Timestamp> {
        self.values[COL_INSERTION_TS].as_time()
    }

    /// Deletion timestamp of a stored tuple.
    pub fn deletion_ts(&self) -> DbResult<Timestamp> {
        self.values[COL_DELETION_TS].as_time()
    }

    pub fn set_insertion_ts(&mut self, t: Timestamp) {
        self.values[COL_INSERTION_TS] = Value::Time(t);
    }

    pub fn set_deletion_ts(&mut self, t: Timestamp) {
        self.values[COL_DELETION_TS] = Value::Time(t);
    }

    /// The user fields of a stored tuple (everything after the version pair).
    pub fn user_values(&self) -> &[Value] {
        &self.values[crate::schema::NUM_VERSION_COLS..]
    }

    /// Serializes into exactly `desc.byte_width()` bytes.
    pub fn write_fixed(&self, desc: &TupleDesc, enc: &mut Encoder) -> DbResult<()> {
        desc.check(&self.values)?;
        for (i, v) in self.values.iter().enumerate() {
            match (desc.field_type(i), v) {
                (FieldType::Int32, Value::Int32(x)) => enc.put_i32(*x),
                (FieldType::Int64, Value::Int64(x)) => enc.put_i64(*x),
                (FieldType::Time, Value::Time(t)) => enc.put_u64(t.0),
                (FieldType::FixedStr(n), Value::Str(s)) => {
                    let n = n as usize;
                    let bytes = s.as_bytes();
                    enc.put_raw(bytes);
                    // NUL padding to the declared width.
                    for _ in bytes.len()..n {
                        enc.put_u8(0);
                    }
                }
                (ty, v) => {
                    return Err(DbError::Schema(format!(
                        "field {i}: cannot encode {v} as {ty}"
                    )))
                }
            }
        }
        Ok(())
    }

    /// Deserializes a fixed-width tuple.
    pub fn read_fixed(desc: &TupleDesc, dec: &mut Decoder<'_>) -> DbResult<Tuple> {
        let mut values = Vec::with_capacity(desc.len());
        for i in 0..desc.len() {
            let v = match desc.field_type(i) {
                FieldType::Int32 => Value::Int32(dec.get_i32()?),
                FieldType::Int64 => Value::Int64(dec.get_i64()?),
                FieldType::Time => Value::Time(Timestamp(dec.get_u64()?)),
                FieldType::FixedStr(n) => {
                    let raw = dec.get_raw(n as usize)?;
                    let end = raw.iter().position(|&b| b == 0).unwrap_or(raw.len());
                    let s = std::str::from_utf8(&raw[..end])
                        .map_err(|_| DbError::corrupt("invalid utf-8 in fixed string"))?;
                    Value::Str(s.to_string())
                }
            };
            values.push(v);
        }
        Ok(Tuple { values })
    }

    /// Deserializes a fixed-width tuple through a precompiled [`FixedLayout`]
    /// — the chunked scan's decode path, which hoists the per-field
    /// type/offset walk out of the row loop.
    pub fn read_layout(layout: &FixedLayout, bytes: &[u8]) -> DbResult<Tuple> {
        layout.decode(bytes)
    }

    /// Serializes with a self-describing (variable) layout, for the wire.
    pub fn write_wire(&self, enc: &mut Encoder) {
        enc.put_u16(self.values.len() as u16);
        for v in &self.values {
            match v {
                Value::Int32(x) => {
                    enc.put_u8(0);
                    enc.put_i32(*x);
                }
                Value::Int64(x) => {
                    enc.put_u8(1);
                    enc.put_i64(*x);
                }
                Value::Time(t) => {
                    enc.put_u8(2);
                    enc.put_u64(t.0);
                }
                Value::Str(s) => {
                    enc.put_u8(3);
                    enc.put_str(s);
                }
            }
        }
    }

    /// Deserializes the wire layout.
    pub fn read_wire(dec: &mut Decoder<'_>) -> DbResult<Tuple> {
        let n = dec.get_u16()? as usize;
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            let v = match dec.get_u8()? {
                0 => Value::Int32(dec.get_i32()?),
                1 => Value::Int64(dec.get_i64()?),
                2 => Value::Time(Timestamp(dec.get_u64()?)),
                3 => Value::Str(dec.get_str()?),
                t => return Err(DbError::corrupt(format!("bad value tag {t}"))),
            };
            values.push(v);
        }
        Ok(Tuple { values })
    }
}

/// Transcodes the fixed-width stored encoding of a tuple straight into the
/// self-describing wire layout, without materializing a [`Tuple`].
///
/// `deletion` overrides the stored deletion timestamp — the visibility check
/// may mask deletions that happened after the historical read time. The
/// output is byte-identical to `Tuple::read_fixed` + `set_deletion_ts` +
/// `write_wire`, which the equivalence property tests assert.
pub fn transcode_fixed_to_wire(
    desc: &TupleDesc,
    bytes: &[u8],
    deletion: Timestamp,
    enc: &mut Encoder,
) -> DbResult<()> {
    check_fixed_len(desc, bytes)?;
    enc.put_u16(desc.len() as u16);
    for i in 0..desc.len() {
        transcode_field(desc, bytes, i, deletion, enc)?;
    }
    Ok(())
}

/// Like [`transcode_fixed_to_wire`], but projects only the columns in `cols`
/// (in the given order). Used by the ids+deletions recovery scans, which ship
/// `[id, masked deletion]` pairs.
pub fn transcode_fixed_cols_to_wire(
    desc: &TupleDesc,
    bytes: &[u8],
    cols: &[usize],
    deletion: Timestamp,
    enc: &mut Encoder,
) -> DbResult<()> {
    check_fixed_len(desc, bytes)?;
    enc.put_u16(cols.len() as u16);
    for &i in cols {
        transcode_field(desc, bytes, i, deletion, enc)?;
    }
    Ok(())
}

fn check_fixed_len(desc: &TupleDesc, bytes: &[u8]) -> DbResult<()> {
    if bytes.len() < desc.byte_width() {
        return Err(DbError::corrupt(format!(
            "fixed tuple truncated: {} bytes, schema needs {}",
            bytes.len(),
            desc.byte_width()
        )));
    }
    Ok(())
}

fn transcode_field(
    desc: &TupleDesc,
    bytes: &[u8],
    i: usize,
    deletion: Timestamp,
    enc: &mut Encoder,
) -> DbResult<()> {
    if i == COL_DELETION_TS && desc.has_version_columns() {
        enc.put_u8(2);
        enc.put_u64(deletion.0);
        return Ok(());
    }
    let off = desc.field_offset(i);
    match desc.field_type(i) {
        // The fixed and wire encodings are both little-endian, so the
        // numeric payloads copy across verbatim.
        FieldType::Int32 => {
            enc.put_u8(0);
            enc.put_raw(&bytes[off..off + 4]);
        }
        FieldType::Int64 => {
            enc.put_u8(1);
            enc.put_raw(&bytes[off..off + 8]);
        }
        FieldType::Time => {
            enc.put_u8(2);
            enc.put_raw(&bytes[off..off + 8]);
        }
        FieldType::FixedStr(n) => {
            let raw = &bytes[off..off + n as usize];
            let end = raw.iter().position(|&b| b == 0).unwrap_or(raw.len());
            let s = std::str::from_utf8(&raw[..end])
                .map_err(|_| DbError::corrupt("invalid utf-8 in fixed string"))?;
            enc.put_u8(3);
            enc.put_str(s);
        }
    }
    Ok(())
}

/// A stored schema's fixed encoding, flattened to `(type, offset)` pairs in
/// one contiguous vector. Built once per scan so the hot decode loop walks
/// a local slice instead of chasing the descriptor per field.
pub struct FixedLayout {
    fields: Vec<(FieldType, usize)>,
    width: usize,
}

impl FixedLayout {
    pub fn new(desc: &TupleDesc) -> Self {
        let fields = (0..desc.len())
            .map(|i| (desc.field_type(i), desc.field_offset(i)))
            .collect();
        FixedLayout {
            fields,
            width: desc.byte_width(),
        }
    }

    /// Decodes one stored row; equivalent to [`Tuple::read_fixed`] over the
    /// same descriptor. `#[inline]` so the per-page scan loops in other
    /// crates can absorb it without LTO.
    #[inline]
    pub fn decode(&self, bytes: &[u8]) -> DbResult<Tuple> {
        let Some(bytes) = bytes.get(..self.width) else {
            return Err(DbError::corrupt("stored tuple shorter than its layout"));
        };
        let mut values = Vec::with_capacity(self.fields.len());
        for &(ty, off) in &self.fields {
            let v = match ty {
                FieldType::Int32 => {
                    let mut b = [0u8; 4];
                    b.copy_from_slice(&bytes[off..off + 4]);
                    Value::Int32(i32::from_le_bytes(b))
                }
                FieldType::Int64 => {
                    let mut b = [0u8; 8];
                    b.copy_from_slice(&bytes[off..off + 8]);
                    Value::Int64(i64::from_le_bytes(b))
                }
                FieldType::Time => {
                    let mut b = [0u8; 8];
                    b.copy_from_slice(&bytes[off..off + 8]);
                    Value::Time(Timestamp(u64::from_le_bytes(b)))
                }
                FieldType::FixedStr(n) => {
                    let raw = &bytes[off..off + n as usize];
                    let end = raw.iter().position(|&b| b == 0).unwrap_or(raw.len());
                    let s = std::str::from_utf8(&raw[..end])
                        .map_err(|_| DbError::corrupt("invalid utf-8 in fixed string"))?;
                    Value::Str(s.to_string())
                }
            };
            values.push(v);
        }
        Ok(Tuple { values })
    }
}

/// Reads the insertion and deletion timestamps straight from the fixed
/// encoding of a stored tuple (the reserved version pair occupies the first
/// 16 bytes). This is the scan fast path's pre-decode visibility probe.
#[inline]
pub fn raw_version_timestamps(bytes: &[u8]) -> DbResult<(Timestamp, Timestamp)> {
    if bytes.len() < 16 {
        return Err(DbError::corrupt("stored tuple shorter than version pair"));
    }
    let ins = u64::from_le_bytes(bytes[0..8].try_into().unwrap());
    let del = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    Ok((Timestamp(ins), Timestamp(del)))
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::FieldType;

    fn desc() -> TupleDesc {
        TupleDesc::with_version_columns(vec![
            ("id", FieldType::Int64),
            ("qty", FieldType::Int32),
            ("name", FieldType::FixedStr(8)),
        ])
    }

    fn sample() -> Tuple {
        Tuple::versioned(
            Timestamp(4),
            Timestamp::ZERO,
            vec![
                Value::Int64(42),
                Value::Int32(-1),
                Value::Str("colgate".into()),
            ],
        )
    }

    #[test]
    fn fixed_round_trip() {
        let d = desc();
        let t = sample();
        let mut enc = Encoder::new();
        t.write_fixed(&d, &mut enc).unwrap();
        assert_eq!(enc.len(), d.byte_width());
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let back = Tuple::read_fixed(&d, &mut dec).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn wire_round_trip() {
        let t = sample();
        let mut enc = Encoder::new();
        t.write_wire(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(Tuple::read_wire(&mut dec).unwrap(), t);
    }

    #[test]
    fn version_column_accessors() {
        let mut t = sample();
        assert_eq!(t.insertion_ts().unwrap(), Timestamp(4));
        assert_eq!(t.deletion_ts().unwrap(), Timestamp::ZERO);
        t.set_deletion_ts(Timestamp(9));
        assert_eq!(t.deletion_ts().unwrap(), Timestamp(9));
        assert_eq!(t.user_values().len(), 3);
    }

    #[test]
    fn oversized_string_is_rejected() {
        let d = desc();
        let t = Tuple::versioned(
            Timestamp(1),
            Timestamp::ZERO,
            vec![
                Value::Int64(1),
                Value::Int32(1),
                Value::Str("way too long for 8".into()),
            ],
        );
        let mut enc = Encoder::new();
        assert!(t.write_fixed(&d, &mut enc).is_err());
    }
}
