//! Minimal hand-rolled binary encoding helpers.
//!
//! The wire protocol, the WAL and the page format all need a compact,
//! deterministic binary encoding. Rather than pulling in a serialization
//! framework, everything encodes through these two little cursors; each
//! record type owns its own layout, which keeps formats auditable (a property
//! the DataFusion guide calls out for storage formats).

use crate::error::{DbError, DbResult};

/// Append-only encoder over a plain `Vec<u8>`.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    pub fn new() -> Self {
        Encoder { buf: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        Encoder {
            buf: Vec::with_capacity(cap),
        }
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Raw bytes with no length prefix (caller knows the width).
    pub fn put_raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Overwrites 4 bytes at `at` with `v` (little-endian). Used to patch a
    /// placeholder written earlier — e.g. a batch row count or frame length
    /// that is only known once the batch is fully encoded.
    ///
    /// Panics if `at + 4` exceeds the bytes written so far.
    pub fn patch_u32(&mut self, at: usize, v: u32) {
        self.buf[at..at + 4].copy_from_slice(&v.to_le_bytes());
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

/// Consuming decoder over a byte slice. All reads are bounds-checked and
/// return [`DbError::Corrupt`] on underrun, never panicking on hostile input.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
}

impl<'a> Decoder<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf }
    }

    fn need(&self, n: usize) -> DbResult<()> {
        if self.buf.len() < n {
            Err(DbError::corrupt(format!(
                "decode underrun: need {n} bytes, have {}",
                self.buf.len()
            )))
        } else {
            Ok(())
        }
    }

    fn take(&mut self, n: usize) -> DbResult<&'a [u8]> {
        self.need(n)?;
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    pub fn get_u8(&mut self) -> DbResult<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn get_u16(&mut self) -> DbResult<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub fn get_u32(&mut self) -> DbResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn get_u64(&mut self) -> DbResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn get_i32(&mut self) -> DbResult<i32> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn get_i64(&mut self) -> DbResult<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn get_bool(&mut self) -> DbResult<bool> {
        Ok(self.get_u8()? != 0)
    }

    /// Length-prefixed byte string.
    pub fn get_bytes(&mut self) -> DbResult<Vec<u8>> {
        let n = self.get_u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    /// Raw bytes of a known width.
    pub fn get_raw(&mut self, n: usize) -> DbResult<Vec<u8>> {
        Ok(self.take(n)?.to_vec())
    }

    /// Length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> DbResult<String> {
        let bytes = self.get_bytes()?;
        String::from_utf8(bytes).map_err(|_| DbError::corrupt("invalid utf-8 in string"))
    }

    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Asserts the buffer was fully consumed.
    pub fn finish(self) -> DbResult<()> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(DbError::corrupt(format!(
                "{} trailing bytes after decode",
                self.buf.len()
            )))
        }
    }
}

/// Types that define their own binary layout.
pub trait Wire: Sized {
    fn encode(&self, enc: &mut Encoder);
    fn decode(dec: &mut Decoder<'_>) -> DbResult<Self>;

    fn to_vec(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        self.encode(&mut enc);
        enc.into_bytes()
    }

    /// Encodes with a leading 4-byte little-endian length prefix (the frame
    /// header the transports use), so a channel can write `len || payload`
    /// with a single syscall and no extra copy. The prefix covers the
    /// payload only.
    fn to_framed_vec(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_u32(0); // placeholder for the length prefix
        self.encode(&mut enc);
        let mut bytes = enc.into_bytes();
        let len = (bytes.len() - 4) as u32;
        bytes[..4].copy_from_slice(&len.to_le_bytes());
        bytes
    }

    fn from_slice(buf: &[u8]) -> DbResult<Self> {
        let mut dec = Decoder::new(buf);
        let v = Self::decode(&mut dec)?;
        dec.finish()?;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        let mut e = Encoder::new();
        e.put_u8(7);
        e.put_u16(513);
        e.put_u32(70_000);
        e.put_u64(u64::MAX - 1);
        e.put_i32(-5);
        e.put_i64(i64::MIN);
        e.put_bool(true);
        e.put_str("héllo");
        e.put_bytes(&[1, 2, 3]);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.get_u8().unwrap(), 7);
        assert_eq!(d.get_u16().unwrap(), 513);
        assert_eq!(d.get_u32().unwrap(), 70_000);
        assert_eq!(d.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(d.get_i32().unwrap(), -5);
        assert_eq!(d.get_i64().unwrap(), i64::MIN);
        assert!(d.get_bool().unwrap());
        assert_eq!(d.get_str().unwrap(), "héllo");
        assert_eq!(d.get_bytes().unwrap(), vec![1, 2, 3]);
        d.finish().unwrap();
    }

    #[test]
    fn underrun_is_an_error_not_a_panic() {
        let mut d = Decoder::new(&[1, 2]);
        assert!(d.get_u32().is_err());
    }

    #[test]
    fn bogus_length_prefix_is_rejected() {
        let mut e = Encoder::new();
        e.put_u32(u32::MAX); // claims 4 GiB payload
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert!(d.get_bytes().is_err());
    }

    #[test]
    fn finish_rejects_trailing_garbage() {
        let d = Decoder::new(&[0]);
        assert!(d.finish().is_err());
    }
}
