//! Runtime lock-rank witness — the dynamic complement to harbor-lint's
//! static `lock-rank` rule.
//!
//! The static rule is intra-function: it sees `self.frames.lock()` under a
//! held `tables.read()` guard inside one body, but not an inversion spread
//! across a call chain (`flush_frame` → `table()` → catalog). This witness
//! closes that gap at runtime: every ranked acquisition pushes its
//! [`Rank`] onto a thread-local stack and panics if the new rank sorts
//! *before* the current top — i.e. the thread is acquiring a lock that the
//! declared order says must be taken earlier.
//!
//! Declared order (lowest acquired first — keep in sync with
//! `harbor_lint::LOCK_RANK_ORDER`):
//!
//! ```text
//! catalog → lock-manager → table-map → pool-shard → frame → wal
//! ```
//!
//! The witness is compiled to a zero-sized no-op in release builds
//! (`debug_assertions` off): the chaos-soak pinned seeds and the whole
//! debug test suite run with it armed, production binaries pay nothing.
//! Equal-rank re-acquisition is allowed — the sharded pool never takes two
//! shard mutexes at once, but independent frame latches of the same rank
//! are legal in sequence.

/// A ranked lock class. Order of the variants IS the declared acquisition
/// order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Rank {
    /// `Catalog::tables` — schema map.
    Catalog = 0,
    /// `LockManager::state` — table lock queues.
    LockManager = 1,
    /// `BufferPool::tables` — table-id → heap-file map.
    TableMap = 2,
    /// `Shard::frames` — one shard of the page→frame map.
    PoolShard = 3,
    /// `Frame::page` — a single page latch.
    Frame = 4,
    /// `BufferPool::wal` — the WAL handle (forced under the frame latch by
    /// the flush protocol, hence the highest rank).
    Wal = 5,
}

impl Rank {
    pub const fn name(self) -> &'static str {
        match self {
            Rank::Catalog => "catalog",
            Rank::LockManager => "lock-manager",
            Rank::TableMap => "table-map",
            Rank::PoolShard => "pool-shard",
            Rank::Frame => "frame",
            Rank::Wal => "wal",
        }
    }
}

/// `true` when the witness actually checks (debug builds).
pub const fn is_armed() -> bool {
    cfg!(debug_assertions)
}

#[cfg(debug_assertions)]
mod armed {
    use super::Rank;
    use std::cell::RefCell;

    thread_local! {
        static HELD: RefCell<Vec<Rank>> = const { RefCell::new(Vec::new()) };
    }

    /// Witness of one held ranked lock; releases its rank on drop.
    #[must_use = "the rank is only held while the guard lives"]
    pub struct RankGuard {
        rank: Rank,
    }

    /// Records `rank` as held by this thread, panicking on an inversion of
    /// the declared order. Call immediately before the matching lock
    /// acquisition and keep the returned guard alive as long as the lock
    /// guard.
    pub fn acquire(rank: Rank) -> RankGuard {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(&top) = held.last() {
                if rank < top {
                    panic!(
                        "lock-rank inversion: acquiring `{}` (rank {}) while holding `{}` \
                         (rank {}); declared order is catalog → lock-manager → table-map → \
                         pool-shard → frame → wal",
                        rank.name(),
                        rank as u8,
                        top.name(),
                        top as u8
                    );
                }
            }
            held.push(rank);
        });
        RankGuard { rank }
    }

    impl Drop for RankGuard {
        fn drop(&mut self) {
            HELD.with(|held| {
                let mut held = held.borrow_mut();
                if let Some(pos) = held.iter().rposition(|r| *r == self.rank) {
                    held.remove(pos);
                }
            });
        }
    }

    /// The ranks this thread currently holds (outermost first).
    pub fn held() -> Vec<Rank> {
        HELD.with(|held| held.borrow().clone())
    }
}

#[cfg(not(debug_assertions))]
mod armed {
    use super::Rank;

    /// Zero-sized in release builds.
    pub struct RankGuard;

    #[inline(always)]
    pub fn acquire(_rank: Rank) -> RankGuard {
        RankGuard
    }

    #[inline(always)]
    pub fn held() -> Vec<Rank> {
        Vec::new()
    }
}

pub use armed::{acquire, held, RankGuard};

#[cfg(all(test, debug_assertions))]
mod tests {
    use super::*;

    #[test]
    fn ordered_acquisition_passes() {
        let _a = acquire(Rank::Catalog);
        let _b = acquire(Rank::PoolShard);
        let _c = acquire(Rank::Wal);
        assert_eq!(held(), vec![Rank::Catalog, Rank::PoolShard, Rank::Wal]);
    }

    #[test]
    fn equal_rank_reacquisition_passes() {
        let _a = acquire(Rank::Frame);
        let _b = acquire(Rank::Frame);
    }

    #[test]
    fn drop_releases_out_of_order() {
        let a = acquire(Rank::TableMap);
        let b = acquire(Rank::Frame);
        drop(a);
        assert_eq!(held(), vec![Rank::Frame]);
        drop(b);
        // Stack empty again: the lowest rank is legal once more.
        let _c = acquire(Rank::Catalog);
    }

    #[test]
    #[should_panic(expected = "lock-rank inversion")]
    fn inversion_panics() {
        let _wal = acquire(Rank::Wal);
        let _shard = acquire(Rank::PoolShard);
    }
}
