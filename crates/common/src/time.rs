//! Logical time: the versioned-representation timestamps of thesis §3.3.
//!
//! Timestamps are opaque, monotonically increasing logical values handed out
//! by the coordinator's timestamp authority at commit time. They need not
//! correspond to wall-clock time (§4.1); the frontend maps client-visible
//! times to these values. Two values are reserved:
//!
//! * [`Timestamp::ZERO`] — stored in a tuple's deletion field to mean "not
//!   deleted".
//! * [`Timestamp::UNCOMMITTED`] — stored in a tuple's insertion field until
//!   its transaction commits. It is chosen greater than any valid timestamp
//!   so uncommitted tuples always land in the most recent segment and are
//!   filtered by `insertion_time <= T` visibility checks for free (§5.2).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A logical commit timestamp ("epoch").
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// Deletion-field sentinel: tuple has not been deleted.
    pub const ZERO: Timestamp = Timestamp(0);
    /// Insertion-field sentinel: tuple's transaction has not yet committed.
    /// Greater than every valid timestamp by construction.
    pub const UNCOMMITTED: Timestamp = Timestamp(u64::MAX);
    /// Largest valid (assignable) timestamp.
    pub const MAX_VALID: Timestamp = Timestamp(u64::MAX - 1);

    pub fn is_uncommitted(self) -> bool {
        self == Self::UNCOMMITTED
    }

    /// `true` when this is a real, assigned commit time (not a sentinel).
    pub fn is_valid_commit_time(self) -> bool {
        self != Self::ZERO && self != Self::UNCOMMITTED
    }

    /// The timestamp immediately before this one. Used for "current time
    /// minus one" constructions in checkpointing (Fig 3-2) and the HWM (§5.3).
    pub fn prev(self) -> Timestamp {
        Timestamp(self.0.saturating_sub(1))
    }

    pub fn next(self) -> Timestamp {
        debug_assert!(self < Self::MAX_VALID);
        Timestamp(self.0 + 1)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_uncommitted() {
            write!(f, "t<uncommitted>")
        } else {
            write!(f, "t{}", self.0)
        }
    }
}

/// Determines tuple visibility for a historical query as of time `t`
/// (thesis §3.3): the tuple must have been inserted at or before `t` by a
/// committed transaction, and either never deleted or deleted after `t`.
pub fn visible_at(insertion: Timestamp, deletion: Timestamp, t: Timestamp) -> bool {
    if insertion.is_uncommitted() || insertion > t {
        return false;
    }
    deletion == Timestamp::ZERO || deletion > t
}

/// The timestamp authority of §4.1: a designated source that decides the
/// current logical time and mints commit timestamps.
///
/// The thesis points at the C-Store consensus protocol for multi-coordinator
/// deployments; with a single authority an atomic counter suffices and is
/// what the thesis' own 4-node implementation does. Each committing update
/// transaction advances time by one, so "current time" and "latest commit
/// time" coincide, matching the sample tables of Chapter 5.
#[derive(Debug)]
pub struct TimestampAuthority {
    now: AtomicU64,
}

impl TimestampAuthority {
    /// Starts the clock at `start`. Time 0 is reserved (deletion sentinel),
    /// so the earliest usable start is 1.
    pub fn new(start: Timestamp) -> Self {
        assert!(start >= Timestamp(1), "time 0 is reserved");
        TimestampAuthority {
            now: AtomicU64::new(start.0),
        }
    }

    /// The current logical time.
    pub fn now(&self) -> Timestamp {
        Timestamp(self.now.load(Ordering::SeqCst))
    }

    /// Mints a commit timestamp for a transaction and advances the clock.
    pub fn next_commit_time(&self) -> Timestamp {
        let t = self.now.fetch_add(1, Ordering::SeqCst);
        assert!(t < Timestamp::MAX_VALID.0, "logical clock exhausted");
        Timestamp(t)
    }

    /// Advances the clock to at least `t` (used when a backup coordinator
    /// replays a commit with a previously assigned time, §4.3.3).
    pub fn advance_to(&self, t: Timestamp) {
        self.now.fetch_max(t.0 + 1, Ordering::SeqCst);
    }
}

impl Default for TimestampAuthority {
    fn default() -> Self {
        TimestampAuthority::new(Timestamp(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visibility_matches_figure_3_1() {
        // The employees table of Fig 3-1: (insertion, deletion) pairs.
        let rows = [
            (Timestamp(1), Timestamp::ZERO), // Jessica
            (Timestamp(1), Timestamp(3)),    // Kenny, deleted at 3
            (Timestamp(2), Timestamp::ZERO), // Suey
            (Timestamp(4), Timestamp(6)),    // Elliss, updated at 6
            (Timestamp(6), Timestamp::ZERO), // Ellis (corrected)
        ];
        let visible_at_t = |t: u64| -> Vec<usize> {
            rows.iter()
                .enumerate()
                .filter(|(_, (i, d))| visible_at(*i, *d, Timestamp(t)))
                .map(|(n, _)| n)
                .collect()
        };
        assert_eq!(visible_at_t(1), vec![0, 1]);
        assert_eq!(visible_at_t(2), vec![0, 1, 2]);
        assert_eq!(visible_at_t(3), vec![0, 2]);
        assert_eq!(visible_at_t(5), vec![0, 2, 3]);
        assert_eq!(visible_at_t(6), vec![0, 2, 4]);
    }

    #[test]
    fn uncommitted_tuples_are_never_visible() {
        assert!(!visible_at(
            Timestamp::UNCOMMITTED,
            Timestamp::ZERO,
            Timestamp::MAX_VALID
        ));
    }

    #[test]
    fn authority_mints_strictly_increasing_times() {
        let auth = TimestampAuthority::default();
        let a = auth.next_commit_time();
        let b = auth.next_commit_time();
        assert!(b > a);
        assert_eq!(auth.now(), b.next());
    }

    #[test]
    fn advance_to_moves_clock_forward_only() {
        let auth = TimestampAuthority::default();
        auth.advance_to(Timestamp(100));
        assert_eq!(auth.now(), Timestamp(101));
        auth.advance_to(Timestamp(50));
        assert_eq!(auth.now(), Timestamp(101));
    }

    #[test]
    fn prev_saturates_at_zero() {
        assert_eq!(Timestamp::ZERO.prev(), Timestamp::ZERO);
        assert_eq!(Timestamp(5).prev(), Timestamp(4));
    }
}
