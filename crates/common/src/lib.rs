//! Shared foundations for the HARBOR reproduction.
//!
//! This crate holds everything that more than one subsystem needs and that has
//! no dependencies of its own: typed identifiers, the logical [`Timestamp`]
//! model with its `0 = not deleted` and [`Timestamp::UNCOMMITTED`] sentinels
//! (thesis §3.3), the fixed-width tuple model used by the row store, error
//! types, runtime configuration, and the metrics counters that the evaluation
//! harness reads to *measure* (rather than assert) Table 4.2.

pub mod codec;
pub mod config;
pub mod error;
pub mod ids;
pub mod lockrank;
pub mod metrics;
pub mod retry;
pub mod schema;
pub mod shimsan;
pub mod time;
pub mod tuple;
pub mod value;

pub use config::{DiskProfile, StorageConfig};
pub use error::{DbError, DbResult};
pub use ids::{PageId, RecordId, SegmentNo, SiteId, TableId, TransactionId};
pub use metrics::{Metrics, MetricsSnapshot};
pub use retry::{retry_transient, retry_with, RetryPolicy};
pub use schema::{FieldType, TupleDesc};
pub use time::Timestamp;
pub use tuple::Tuple;
pub use value::Value;
