//! Tuple schemas.
//!
//! The physical data model reserves the first two columns of every stored
//! relation for the insertion and deletion timestamps (thesis §6.1.1); user
//! code describes only the user-visible fields and [`TupleDesc::with_version_columns`]
//! prepends the reserved pair.

use crate::error::{DbError, DbResult};
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// Fixed-width field types supported by the row store.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FieldType {
    Int32,
    /// 64-bit signed integer; also used for tuple ids (primary keys).
    Int64,
    /// Logical timestamp column (the two reserved version columns).
    Time,
    /// UTF-8 string padded with NULs to the declared byte width on disk.
    FixedStr(u16),
}

impl FieldType {
    /// On-disk width in bytes.
    pub fn width(self) -> usize {
        match self {
            FieldType::Int32 => 4,
            FieldType::Int64 => 8,
            FieldType::Time => 8,
            FieldType::FixedStr(n) => n as usize,
        }
    }

    /// Compact tag for serialization.
    pub fn tag(self) -> u8 {
        match self {
            FieldType::Int32 => 0,
            FieldType::Int64 => 1,
            FieldType::Time => 2,
            FieldType::FixedStr(_) => 3,
        }
    }
}

impl fmt::Display for FieldType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldType::Int32 => write!(f, "int32"),
            FieldType::Int64 => write!(f, "int64"),
            FieldType::Time => write!(f, "time"),
            FieldType::FixedStr(n) => write!(f, "str({n})"),
        }
    }
}

/// Index of the insertion-timestamp column in a stored tuple.
pub const COL_INSERTION_TS: usize = 0;
/// Index of the deletion-timestamp column in a stored tuple.
pub const COL_DELETION_TS: usize = 1;
/// Number of reserved version columns.
pub const NUM_VERSION_COLS: usize = 2;

/// Describes the fields of a tuple: names and fixed-width types.
///
/// `TupleDesc` is immutable and cheaply cloneable (`Arc` inside); operators
/// share it freely, mirroring `getTupleDesc()` of the thesis' iterator
/// interface (§6.1.5).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TupleDesc {
    inner: Arc<DescInner>,
}

#[derive(PartialEq, Eq, Debug)]
struct DescInner {
    names: Vec<String>,
    types: Vec<FieldType>,
    /// Byte offset of each field within the fixed on-disk encoding.
    offsets: Vec<usize>,
    width: usize,
}

impl TupleDesc {
    /// Builds a descriptor from `(name, type)` pairs.
    pub fn new(fields: Vec<(&str, FieldType)>) -> Self {
        let names = fields.iter().map(|(n, _)| n.to_string()).collect();
        let types: Vec<FieldType> = fields.iter().map(|(_, t)| *t).collect();
        let mut offsets = Vec::with_capacity(types.len());
        let mut width = 0usize;
        for t in &types {
            offsets.push(width);
            width += t.width();
        }
        TupleDesc {
            inner: Arc::new(DescInner {
                names,
                types,
                offsets,
                width,
            }),
        }
    }

    /// Builds the *stored* descriptor for a user schema: prepends the two
    /// reserved timestamp columns.
    pub fn with_version_columns(user_fields: Vec<(&str, FieldType)>) -> Self {
        let mut fields = vec![("__ins", FieldType::Time), ("__del", FieldType::Time)];
        fields.extend(user_fields);
        Self::new(fields)
    }

    /// `true` when the first two columns are the reserved timestamp pair.
    pub fn has_version_columns(&self) -> bool {
        self.len() >= NUM_VERSION_COLS
            && self.field_type(COL_INSERTION_TS) == FieldType::Time
            && self.field_type(COL_DELETION_TS) == FieldType::Time
    }

    pub fn len(&self) -> usize {
        self.inner.types.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.types.is_empty()
    }

    /// Total on-disk tuple width in bytes.
    pub fn byte_width(&self) -> usize {
        self.inner.width
    }

    pub fn field_type(&self, i: usize) -> FieldType {
        self.inner.types[i]
    }

    /// Byte offset of field `i` within the fixed on-disk encoding.
    pub fn field_offset(&self, i: usize) -> usize {
        self.inner.offsets[i]
    }

    pub fn field_name(&self, i: usize) -> &str {
        &self.inner.names[i]
    }

    pub fn types(&self) -> &[FieldType] {
        &self.inner.types
    }

    /// Resolves a field name to its index.
    pub fn index_of(&self, name: &str) -> DbResult<usize> {
        self.inner
            .names
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| DbError::Schema(format!("no field named {name:?}")))
    }

    /// Validates that `values` conforms to this descriptor.
    pub fn check(&self, values: &[Value]) -> DbResult<()> {
        if values.len() != self.len() {
            return Err(DbError::Schema(format!(
                "arity mismatch: tuple has {} fields, schema has {}",
                values.len(),
                self.len()
            )));
        }
        for (i, v) in values.iter().enumerate() {
            if !v.matches(self.field_type(i)) {
                return Err(DbError::Schema(format!(
                    "field {} ({}) expects {}, got {v}",
                    i,
                    self.field_name(i),
                    self.field_type(i)
                )));
            }
        }
        Ok(())
    }

    /// Descriptor for the concatenation of two tuples (join output).
    pub fn concat(&self, other: &TupleDesc) -> TupleDesc {
        let mut fields: Vec<(&str, FieldType)> = Vec::with_capacity(self.len() + other.len());
        for i in 0..self.len() {
            fields.push((self.field_name(i), self.field_type(i)));
        }
        for i in 0..other.len() {
            fields.push((other.field_name(i), other.field_type(i)));
        }
        TupleDesc::new(fields)
    }

    /// Descriptor for a projection of the given column indices.
    pub fn project(&self, cols: &[usize]) -> TupleDesc {
        let fields = cols
            .iter()
            .map(|&i| (self.field_name(i), self.field_type(i)))
            .collect();
        TupleDesc::new(fields)
    }
}

impl fmt::Display for TupleDesc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for i in 0..self.len() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", self.field_name(i), self.field_type(i))?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sales_desc() -> TupleDesc {
        TupleDesc::with_version_columns(vec![("id", FieldType::Int64), ("qty", FieldType::Int32)])
    }

    #[test]
    fn version_columns_are_prepended() {
        let d = sales_desc();
        assert!(d.has_version_columns());
        assert_eq!(d.len(), 4);
        assert_eq!(d.byte_width(), 8 + 8 + 8 + 4);
        assert_eq!(d.index_of("id").unwrap(), 2);
    }

    #[test]
    fn check_rejects_bad_tuples() {
        let d = sales_desc();
        let ok = vec![
            Value::Time(crate::time::Timestamp(1)),
            Value::Time(crate::time::Timestamp::ZERO),
            Value::Int64(7),
            Value::Int32(3),
        ];
        d.check(&ok).unwrap();
        let bad_arity = &ok[..3];
        assert!(d.check(bad_arity).is_err());
        let mut bad_type = ok.clone();
        bad_type[3] = Value::Str("x".into());
        assert!(d.check(&bad_type).is_err());
    }

    #[test]
    fn concat_and_project() {
        let d = sales_desc();
        let joined = d.concat(&d);
        assert_eq!(joined.len(), 8);
        let proj = d.project(&[2, 3]);
        assert_eq!(proj.len(), 2);
        assert_eq!(proj.field_name(0), "id");
        assert!(!proj.has_version_columns());
    }
}
