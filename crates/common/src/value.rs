//! Runtime values for tuple fields.

use crate::error::{DbError, DbResult};
use crate::schema::FieldType;
use crate::time::Timestamp;
use std::cmp::Ordering;
use std::fmt;

/// A single field value. The store is fixed-width: strings are padded to the
/// declared width on disk, but carried unpadded here.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Value {
    Int32(i32),
    Int64(i64),
    /// Logical timestamp (used for the two reserved columns and exposed to
    /// queries in `SeeDeleted` mode, §5.1).
    Time(Timestamp),
    Str(String),
}

impl Value {
    /// The field type this value conforms to, given a declared string width.
    pub fn matches(&self, ty: FieldType) -> bool {
        match (self, ty) {
            (Value::Int32(_), FieldType::Int32) => true,
            (Value::Int64(_), FieldType::Int64) => true,
            (Value::Time(_), FieldType::Time) => true,
            (Value::Str(s), FieldType::FixedStr(n)) => s.len() <= n as usize,
            _ => false,
        }
    }

    pub fn as_i64(&self) -> DbResult<i64> {
        match self {
            Value::Int32(v) => Ok(*v as i64),
            Value::Int64(v) => Ok(*v),
            Value::Time(t) => Ok(t.0 as i64),
            Value::Str(_) => Err(DbError::Schema("string used as integer".into())),
        }
    }

    pub fn as_time(&self) -> DbResult<Timestamp> {
        match self {
            Value::Time(t) => Ok(*t),
            Value::Int64(v) if *v >= 0 => Ok(Timestamp(*v as u64)),
            other => Err(DbError::Schema(format!("{other} used as timestamp"))),
        }
    }

    pub fn as_str(&self) -> DbResult<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(DbError::Schema(format!("{other} used as string"))),
        }
    }

    /// Total order used by comparisons and aggregates. Values of different
    /// types order by type tag; queries never compare across types in
    /// practice because plans are type-checked against the schema.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        match (self, other) {
            (Value::Int32(a), Value::Int32(b)) => a.cmp(b),
            (Value::Int64(a), Value::Int64(b)) => a.cmp(b),
            (Value::Time(a), Value::Time(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            // Numeric cross-width comparison is allowed.
            (Value::Int32(a), Value::Int64(b)) => (*a as i64).cmp(b),
            (Value::Int64(a), Value::Int32(b)) => a.cmp(&(*b as i64)),
            // Timestamps compare numerically against integers (SQL
            // predicates like `insertion_time <= 5`); negative integers
            // sort below every timestamp.
            (Value::Time(a), b @ (Value::Int64(_) | Value::Int32(_))) => {
                let n = b.as_i64().expect("integer");
                if n < 0 {
                    Ordering::Greater
                } else {
                    a.0.cmp(&(n as u64))
                }
            }
            (a @ (Value::Int64(_) | Value::Int32(_)), Value::Time(b)) => {
                let n = a.as_i64().expect("integer");
                if n < 0 {
                    Ordering::Less
                } else {
                    (n as u64).cmp(&b.0)
                }
            }
            (a, b) => tag(a).cmp(&tag(b)),
        }
    }
}

impl crate::codec::Wire for Value {
    fn encode(&self, enc: &mut crate::codec::Encoder) {
        match self {
            Value::Int32(x) => {
                enc.put_u8(0);
                enc.put_i32(*x);
            }
            Value::Int64(x) => {
                enc.put_u8(1);
                enc.put_i64(*x);
            }
            Value::Time(t) => {
                enc.put_u8(2);
                enc.put_u64(t.0);
            }
            Value::Str(s) => {
                enc.put_u8(3);
                enc.put_str(s);
            }
        }
    }

    fn decode(dec: &mut crate::codec::Decoder<'_>) -> DbResult<Self> {
        Ok(match dec.get_u8()? {
            0 => Value::Int32(dec.get_i32()?),
            1 => Value::Int64(dec.get_i64()?),
            2 => Value::Time(Timestamp(dec.get_u64()?)),
            3 => Value::Str(dec.get_str()?),
            t => return Err(DbError::corrupt(format!("bad value tag {t}"))),
        })
    }
}

fn tag(v: &Value) -> u8 {
    match v {
        Value::Int32(_) => 0,
        Value::Int64(_) => 1,
        Value::Time(_) => 2,
        Value::Str(_) => 3,
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int32(v) => write!(f, "{v}"),
            Value::Int64(v) => write!(f, "{v}"),
            Value::Time(t) => write!(f, "{t}"),
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int32(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int64(v)
    }
}

impl From<Timestamp> for Value {
    fn from(v: Timestamp) -> Self {
        Value::Time(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_conformance() {
        assert!(Value::Int32(5).matches(FieldType::Int32));
        assert!(!Value::Int32(5).matches(FieldType::Int64));
        assert!(Value::Str("abc".into()).matches(FieldType::FixedStr(3)));
        assert!(!Value::Str("abcd".into()).matches(FieldType::FixedStr(3)));
    }

    #[test]
    fn cross_width_integer_comparison() {
        assert_eq!(Value::Int32(5).total_cmp(&Value::Int64(5)), Ordering::Equal);
        assert_eq!(Value::Int64(4).total_cmp(&Value::Int32(5)), Ordering::Less);
    }

    #[test]
    fn coercions() {
        assert_eq!(Value::Int32(-3).as_i64().unwrap(), -3);
        assert_eq!(Value::Time(Timestamp(9)).as_i64().unwrap(), 9);
        assert!(Value::Str("x".into()).as_i64().is_err());
        assert_eq!(Value::Int64(7).as_time().unwrap(), Timestamp(7));
    }
}
