//! Lock-free event counters.
//!
//! Every site owns a [`Metrics`] instance; the storage, WAL and networking
//! layers increment it as they work. The evaluation harness reads these to
//! *measure* the costs tabulated in the paper's Table 4.2 (messages per
//! worker, forced writes per coordinator/worker) instead of asserting them.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared, cheaply cloneable counter bundle.
#[derive(Clone, Default, Debug)]
pub struct Metrics {
    inner: Arc<Counters>,
}

#[derive(Default, Debug)]
struct Counters {
    /// Log records appended (forced or not).
    log_writes: AtomicU64,
    /// Synchronous forces of the log to stable storage. Group commit may
    /// satisfy several commits with one physical force; both are counted.
    forced_writes: AtomicU64,
    /// Physical disk syncs actually issued (group commit batches collapse
    /// many logical forces into fewer physical syncs).
    physical_syncs: AtomicU64,
    /// Data pages written to disk.
    page_writes: AtomicU64,
    /// Data pages read from disk.
    page_reads: AtomicU64,
    /// Messages sent over the transport.
    messages_sent: AtomicU64,
    /// Bytes sent over the transport.
    bytes_sent: AtomicU64,
    /// Transactions committed.
    commits: AtomicU64,
    /// Transactions aborted.
    aborts: AtomicU64,
    /// Lock acquisitions that had to wait.
    lock_waits: AtomicU64,
    /// Deadlock timeouts.
    lock_timeouts: AtomicU64,
    /// Buffer pool evictions.
    evictions: AtomicU64,
    /// Buffer pool accesses satisfied by a resident frame.
    pool_hits: AtomicU64,
    /// Buffer pool accesses that had to load the page from disk.
    pool_misses: AtomicU64,
    /// Scan rows admitted by the visibility check and materialized.
    scan_rows_admitted: AtomicU64,
    /// Scan rows rejected on raw timestamps, before any tuple decode.
    scan_rows_skipped_predecode: AtomicU64,
    /// Bytes encoded onto the wire straight from page bytes (no
    /// intermediate `Tuple` materialization).
    scan_bytes_zero_copy: AtomicU64,
    /// Tuples shipped to a recovering site by recovery queries.
    recovery_tuples_shipped: AtomicU64,
    /// Bytes of tuple payload shipped to a recovering site.
    recovery_bytes_shipped: AtomicU64,
    /// Tuples the recovering site applied locally during Phase 2.
    recovery_tuples_applied: AtomicU64,
    /// Phase-2 segment ranges fetched from buddies.
    recovery_ranges_fetched: AtomicU64,
    /// Phase-2 segment ranges reassigned after a buddy failed mid-stream.
    recovery_ranges_reassigned: AtomicU64,
    /// Frames the chaos layer dropped (and severed the link for).
    chaos_drops: AtomicU64,
    /// Frames the chaos layer delivered twice.
    chaos_dups: AtomicU64,
    /// Frames the chaos layer delayed before delivery.
    chaos_delays: AtomicU64,
    /// Links the chaos layer severed abruptly mid-stream.
    chaos_disconnects: AtomicU64,
    /// Frames silently blackholed because a partition blocked the link.
    chaos_partition_drops: AtomicU64,
    /// RPC requests that expired a per-request or liveness deadline.
    rpc_timeouts: AtomicU64,
    /// Idempotent-read RPC attempts retried after a transient failure.
    rpc_retries: AtomicU64,
    /// Disk faults injected by the seeded fault plan (read errors, torn
    /// writes, bit flips).
    disk_faults_injected: AtomicU64,
    /// Page reads whose checksum trailer failed verification.
    checksum_failures: AtomicU64,
    /// Pages whose checksum the scrubber verified.
    scrub_pages_scanned: AtomicU64,
    /// Corrupt pages rebuilt (from a resident frame or a buddy query).
    pages_repaired: AtomicU64,
    /// Segment ranges re-fetched from a buddy to repair corrupt pages.
    repair_ranges_fetched: AtomicU64,
    /// Bytes of tuple payload shipped from buddies for page repair.
    repair_bytes_shipped: AtomicU64,
    /// Log syncs avoided by batching several forced records into one force
    /// (epoch group commit: `epoch size - 1` per epoch decision record).
    batched_syncs_saved: AtomicU64,
    /// Commit epochs decided by the coordinator.
    epochs_committed: AtomicU64,
    /// Transactions carried by those epochs (mean epoch size =
    /// `epoch_txns / epochs_committed`).
    epoch_txns: AtomicU64,
    /// Epoch-size histogram buckets.
    epoch_size_1: AtomicU64,
    epoch_size_2_4: AtomicU64,
    epoch_size_5_16: AtomicU64,
    epoch_size_17_64: AtomicU64,
    epoch_size_gt_64: AtomicU64,
    /// Sites joined to the cluster at runtime.
    joins: AtomicU64,
    /// Sites gracefully decommissioned at runtime.
    decommissions: AtomicU64,
    /// Replicas the supervisor re-created after an object dropped below
    /// its K floor (no manual recovery call).
    auto_repairs: AtomicU64,
    /// Attempts re-run by the shared seeded-backoff retry helper.
    backoff_retries: AtomicU64,
    /// Key-index rebuilds (cold build after restart or post-invalidation).
    index_rebuilds: AtomicU64,
    /// Key-index probes that found at least one record id.
    index_hits: AtomicU64,
    /// Key-index probes that found no record id.
    index_misses: AtomicU64,
    /// Client sessions the front door accepted.
    sessions_accepted: AtomicU64,
    /// Client sessions the front door closed (hangup, error, or drain).
    sessions_closed: AtomicU64,
    /// Requests admitted past the front door's permit gate into the engine.
    requests_admitted: AtomicU64,
    /// Requests shed with `Overloaded` (queue full, over the age watermark,
    /// or no permit within the admission budget).
    requests_shed: AtomicU64,
    /// Requests rejected because their deadline expired before execution.
    deadline_rejects: AtomicU64,
    /// Admissions that had to wait for an in-flight permit (contended gate).
    permit_waits: AtomicU64,
    /// High-water mark of the front door's bounded request queue (maximum,
    /// not a sum).
    queue_peak_depth: AtomicU64,
    /// Microseconds graceful drain spent finishing admitted requests.
    drain_micros: AtomicU64,
}

macro_rules! counter {
    ($inc:ident, $get:ident, $field:ident) => {
        #[doc = concat!("Increments `", stringify!($field), "`.")]
        pub fn $inc(&self, n: u64) {
            self.inner.$field.fetch_add(n, Ordering::Relaxed);
        }

        #[doc = concat!("Current value of `", stringify!($field), "`.")]
        pub fn $get(&self) -> u64 {
            self.inner.$field.load(Ordering::Relaxed)
        }
    };
}

impl Metrics {
    pub fn new() -> Self {
        Metrics::default()
    }

    counter!(add_log_writes, log_writes, log_writes);
    counter!(add_forced_writes, forced_writes, forced_writes);
    counter!(add_physical_syncs, physical_syncs, physical_syncs);
    counter!(add_page_writes, page_writes, page_writes);
    counter!(add_page_reads, page_reads, page_reads);
    counter!(add_messages_sent, messages_sent, messages_sent);
    counter!(add_bytes_sent, bytes_sent, bytes_sent);
    counter!(add_commits, commits, commits);
    counter!(add_aborts, aborts, aborts);
    counter!(add_lock_waits, lock_waits, lock_waits);
    counter!(add_lock_timeouts, lock_timeouts, lock_timeouts);
    counter!(add_evictions, evictions, evictions);
    counter!(add_pool_hits, pool_hits, pool_hits);
    counter!(add_pool_misses, pool_misses, pool_misses);
    counter!(
        add_scan_rows_admitted,
        scan_rows_admitted,
        scan_rows_admitted
    );
    counter!(
        add_scan_rows_skipped_predecode,
        scan_rows_skipped_predecode,
        scan_rows_skipped_predecode
    );
    counter!(
        add_scan_bytes_zero_copy,
        scan_bytes_zero_copy,
        scan_bytes_zero_copy
    );
    counter!(
        add_recovery_tuples_shipped,
        recovery_tuples_shipped,
        recovery_tuples_shipped
    );
    counter!(
        add_recovery_bytes_shipped,
        recovery_bytes_shipped,
        recovery_bytes_shipped
    );
    counter!(
        add_recovery_tuples_applied,
        recovery_tuples_applied,
        recovery_tuples_applied
    );
    counter!(
        add_recovery_ranges_fetched,
        recovery_ranges_fetched,
        recovery_ranges_fetched
    );
    counter!(
        add_recovery_ranges_reassigned,
        recovery_ranges_reassigned,
        recovery_ranges_reassigned
    );
    counter!(add_chaos_drops, chaos_drops, chaos_drops);
    counter!(add_chaos_dups, chaos_dups, chaos_dups);
    counter!(add_chaos_delays, chaos_delays, chaos_delays);
    counter!(add_chaos_disconnects, chaos_disconnects, chaos_disconnects);
    counter!(
        add_chaos_partition_drops,
        chaos_partition_drops,
        chaos_partition_drops
    );
    counter!(add_rpc_timeouts, rpc_timeouts, rpc_timeouts);
    counter!(add_rpc_retries, rpc_retries, rpc_retries);
    counter!(
        add_disk_faults_injected,
        disk_faults_injected,
        disk_faults_injected
    );
    counter!(add_checksum_failures, checksum_failures, checksum_failures);
    counter!(
        add_scrub_pages_scanned,
        scrub_pages_scanned,
        scrub_pages_scanned
    );
    counter!(add_pages_repaired, pages_repaired, pages_repaired);
    counter!(
        add_repair_ranges_fetched,
        repair_ranges_fetched,
        repair_ranges_fetched
    );
    counter!(
        add_repair_bytes_shipped,
        repair_bytes_shipped,
        repair_bytes_shipped
    );
    counter!(
        add_batched_syncs_saved,
        batched_syncs_saved,
        batched_syncs_saved
    );
    counter!(add_epochs_committed, epochs_committed, epochs_committed);
    counter!(add_epoch_txns, epoch_txns, epoch_txns);
    counter!(add_epoch_size_1, epoch_size_1, epoch_size_1);
    counter!(add_epoch_size_2_4, epoch_size_2_4, epoch_size_2_4);
    counter!(add_epoch_size_5_16, epoch_size_5_16, epoch_size_5_16);
    counter!(add_epoch_size_17_64, epoch_size_17_64, epoch_size_17_64);
    counter!(add_epoch_size_gt_64, epoch_size_gt_64, epoch_size_gt_64);
    counter!(add_joins, joins, joins);
    counter!(add_decommissions, decommissions, decommissions);
    counter!(add_auto_repairs, auto_repairs, auto_repairs);
    counter!(add_backoff_retries, backoff_retries, backoff_retries);
    counter!(add_index_rebuilds, index_rebuilds, index_rebuilds);
    counter!(add_index_hits, index_hits, index_hits);
    counter!(add_index_misses, index_misses, index_misses);
    counter!(add_sessions_accepted, sessions_accepted, sessions_accepted);
    counter!(add_sessions_closed, sessions_closed, sessions_closed);
    counter!(add_requests_admitted, requests_admitted, requests_admitted);
    counter!(add_requests_shed, requests_shed, requests_shed);
    counter!(add_deadline_rejects, deadline_rejects, deadline_rejects);
    counter!(add_permit_waits, permit_waits, permit_waits);
    counter!(add_drain_micros, drain_micros, drain_micros);

    /// Raises the queue high-water mark to `depth` if it is the new peak.
    pub fn note_queue_depth(&self, depth: u64) {
        self.inner
            .queue_peak_depth
            .fetch_max(depth, Ordering::Relaxed);
    }

    /// Current value of `queue_peak_depth` (a maximum, not a sum).
    pub fn queue_peak_depth(&self) -> u64 {
        self.inner.queue_peak_depth.load(Ordering::Relaxed)
    }

    /// Records one decided commit epoch of `n` transactions: bumps the
    /// epoch counters and the matching size-histogram bucket.
    pub fn record_epoch(&self, n: usize) {
        self.add_epochs_committed(1);
        self.add_epoch_txns(n as u64);
        match n {
            0..=1 => self.add_epoch_size_1(1),
            2..=4 => self.add_epoch_size_2_4(1),
            5..=16 => self.add_epoch_size_5_16(1),
            17..=64 => self.add_epoch_size_17_64(1),
            _ => self.add_epoch_size_gt_64(1),
        }
    }

    /// Snapshot of all counters, for diffing across an experiment.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            log_writes: self.log_writes(),
            forced_writes: self.forced_writes(),
            physical_syncs: self.physical_syncs(),
            page_writes: self.page_writes(),
            page_reads: self.page_reads(),
            messages_sent: self.messages_sent(),
            bytes_sent: self.bytes_sent(),
            commits: self.commits(),
            aborts: self.aborts(),
            lock_waits: self.lock_waits(),
            lock_timeouts: self.lock_timeouts(),
            evictions: self.evictions(),
            pool_hits: self.pool_hits(),
            pool_misses: self.pool_misses(),
            scan_rows_admitted: self.scan_rows_admitted(),
            scan_rows_skipped_predecode: self.scan_rows_skipped_predecode(),
            scan_bytes_zero_copy: self.scan_bytes_zero_copy(),
            recovery_tuples_shipped: self.recovery_tuples_shipped(),
            recovery_bytes_shipped: self.recovery_bytes_shipped(),
            recovery_tuples_applied: self.recovery_tuples_applied(),
            recovery_ranges_fetched: self.recovery_ranges_fetched(),
            recovery_ranges_reassigned: self.recovery_ranges_reassigned(),
            chaos_drops: self.chaos_drops(),
            chaos_dups: self.chaos_dups(),
            chaos_delays: self.chaos_delays(),
            chaos_disconnects: self.chaos_disconnects(),
            chaos_partition_drops: self.chaos_partition_drops(),
            rpc_timeouts: self.rpc_timeouts(),
            rpc_retries: self.rpc_retries(),
            disk_faults_injected: self.disk_faults_injected(),
            checksum_failures: self.checksum_failures(),
            scrub_pages_scanned: self.scrub_pages_scanned(),
            pages_repaired: self.pages_repaired(),
            repair_ranges_fetched: self.repair_ranges_fetched(),
            repair_bytes_shipped: self.repair_bytes_shipped(),
            batched_syncs_saved: self.batched_syncs_saved(),
            epochs_committed: self.epochs_committed(),
            epoch_txns: self.epoch_txns(),
            epoch_size_1: self.epoch_size_1(),
            epoch_size_2_4: self.epoch_size_2_4(),
            epoch_size_5_16: self.epoch_size_5_16(),
            epoch_size_17_64: self.epoch_size_17_64(),
            epoch_size_gt_64: self.epoch_size_gt_64(),
            joins: self.joins(),
            decommissions: self.decommissions(),
            auto_repairs: self.auto_repairs(),
            backoff_retries: self.backoff_retries(),
            index_rebuilds: self.index_rebuilds(),
            index_hits: self.index_hits(),
            index_misses: self.index_misses(),
            sessions_accepted: self.sessions_accepted(),
            sessions_closed: self.sessions_closed(),
            requests_admitted: self.requests_admitted(),
            requests_shed: self.requests_shed(),
            deadline_rejects: self.deadline_rejects(),
            permit_waits: self.permit_waits(),
            queue_peak_depth: self.queue_peak_depth(),
            drain_micros: self.drain_micros(),
        }
    }
}

/// Point-in-time copy of every counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub log_writes: u64,
    pub forced_writes: u64,
    pub physical_syncs: u64,
    pub page_writes: u64,
    pub page_reads: u64,
    pub messages_sent: u64,
    pub bytes_sent: u64,
    pub commits: u64,
    pub aborts: u64,
    pub lock_waits: u64,
    pub lock_timeouts: u64,
    pub evictions: u64,
    pub pool_hits: u64,
    pub pool_misses: u64,
    pub scan_rows_admitted: u64,
    pub scan_rows_skipped_predecode: u64,
    pub scan_bytes_zero_copy: u64,
    pub recovery_tuples_shipped: u64,
    pub recovery_bytes_shipped: u64,
    pub recovery_tuples_applied: u64,
    pub recovery_ranges_fetched: u64,
    pub recovery_ranges_reassigned: u64,
    pub chaos_drops: u64,
    pub chaos_dups: u64,
    pub chaos_delays: u64,
    pub chaos_disconnects: u64,
    pub chaos_partition_drops: u64,
    pub rpc_timeouts: u64,
    pub rpc_retries: u64,
    pub disk_faults_injected: u64,
    pub checksum_failures: u64,
    pub scrub_pages_scanned: u64,
    pub pages_repaired: u64,
    pub repair_ranges_fetched: u64,
    pub repair_bytes_shipped: u64,
    pub batched_syncs_saved: u64,
    pub epochs_committed: u64,
    pub epoch_txns: u64,
    pub epoch_size_1: u64,
    pub epoch_size_2_4: u64,
    pub epoch_size_5_16: u64,
    pub epoch_size_17_64: u64,
    pub epoch_size_gt_64: u64,
    pub joins: u64,
    pub decommissions: u64,
    pub auto_repairs: u64,
    pub backoff_retries: u64,
    pub index_rebuilds: u64,
    pub index_hits: u64,
    pub index_misses: u64,
    pub sessions_accepted: u64,
    pub sessions_closed: u64,
    pub requests_admitted: u64,
    pub requests_shed: u64,
    pub deadline_rejects: u64,
    pub permit_waits: u64,
    /// High-water mark, not a sum; `since` keeps the later snapshot's peak.
    pub queue_peak_depth: u64,
    pub drain_micros: u64,
}

impl MetricsSnapshot {
    /// Per-field difference `self - earlier` (saturating).
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            log_writes: self.log_writes.saturating_sub(earlier.log_writes),
            forced_writes: self.forced_writes.saturating_sub(earlier.forced_writes),
            physical_syncs: self.physical_syncs.saturating_sub(earlier.physical_syncs),
            page_writes: self.page_writes.saturating_sub(earlier.page_writes),
            page_reads: self.page_reads.saturating_sub(earlier.page_reads),
            messages_sent: self.messages_sent.saturating_sub(earlier.messages_sent),
            bytes_sent: self.bytes_sent.saturating_sub(earlier.bytes_sent),
            commits: self.commits.saturating_sub(earlier.commits),
            aborts: self.aborts.saturating_sub(earlier.aborts),
            lock_waits: self.lock_waits.saturating_sub(earlier.lock_waits),
            lock_timeouts: self.lock_timeouts.saturating_sub(earlier.lock_timeouts),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            pool_hits: self.pool_hits.saturating_sub(earlier.pool_hits),
            pool_misses: self.pool_misses.saturating_sub(earlier.pool_misses),
            scan_rows_admitted: self
                .scan_rows_admitted
                .saturating_sub(earlier.scan_rows_admitted),
            scan_rows_skipped_predecode: self
                .scan_rows_skipped_predecode
                .saturating_sub(earlier.scan_rows_skipped_predecode),
            scan_bytes_zero_copy: self
                .scan_bytes_zero_copy
                .saturating_sub(earlier.scan_bytes_zero_copy),
            recovery_tuples_shipped: self
                .recovery_tuples_shipped
                .saturating_sub(earlier.recovery_tuples_shipped),
            recovery_bytes_shipped: self
                .recovery_bytes_shipped
                .saturating_sub(earlier.recovery_bytes_shipped),
            recovery_tuples_applied: self
                .recovery_tuples_applied
                .saturating_sub(earlier.recovery_tuples_applied),
            recovery_ranges_fetched: self
                .recovery_ranges_fetched
                .saturating_sub(earlier.recovery_ranges_fetched),
            recovery_ranges_reassigned: self
                .recovery_ranges_reassigned
                .saturating_sub(earlier.recovery_ranges_reassigned),
            chaos_drops: self.chaos_drops.saturating_sub(earlier.chaos_drops),
            chaos_dups: self.chaos_dups.saturating_sub(earlier.chaos_dups),
            chaos_delays: self.chaos_delays.saturating_sub(earlier.chaos_delays),
            chaos_disconnects: self
                .chaos_disconnects
                .saturating_sub(earlier.chaos_disconnects),
            chaos_partition_drops: self
                .chaos_partition_drops
                .saturating_sub(earlier.chaos_partition_drops),
            rpc_timeouts: self.rpc_timeouts.saturating_sub(earlier.rpc_timeouts),
            rpc_retries: self.rpc_retries.saturating_sub(earlier.rpc_retries),
            disk_faults_injected: self
                .disk_faults_injected
                .saturating_sub(earlier.disk_faults_injected),
            checksum_failures: self
                .checksum_failures
                .saturating_sub(earlier.checksum_failures),
            scrub_pages_scanned: self
                .scrub_pages_scanned
                .saturating_sub(earlier.scrub_pages_scanned),
            pages_repaired: self.pages_repaired.saturating_sub(earlier.pages_repaired),
            repair_ranges_fetched: self
                .repair_ranges_fetched
                .saturating_sub(earlier.repair_ranges_fetched),
            repair_bytes_shipped: self
                .repair_bytes_shipped
                .saturating_sub(earlier.repair_bytes_shipped),
            batched_syncs_saved: self
                .batched_syncs_saved
                .saturating_sub(earlier.batched_syncs_saved),
            epochs_committed: self
                .epochs_committed
                .saturating_sub(earlier.epochs_committed),
            epoch_txns: self.epoch_txns.saturating_sub(earlier.epoch_txns),
            epoch_size_1: self.epoch_size_1.saturating_sub(earlier.epoch_size_1),
            epoch_size_2_4: self.epoch_size_2_4.saturating_sub(earlier.epoch_size_2_4),
            epoch_size_5_16: self.epoch_size_5_16.saturating_sub(earlier.epoch_size_5_16),
            epoch_size_17_64: self
                .epoch_size_17_64
                .saturating_sub(earlier.epoch_size_17_64),
            epoch_size_gt_64: self
                .epoch_size_gt_64
                .saturating_sub(earlier.epoch_size_gt_64),
            joins: self.joins.saturating_sub(earlier.joins),
            decommissions: self.decommissions.saturating_sub(earlier.decommissions),
            auto_repairs: self.auto_repairs.saturating_sub(earlier.auto_repairs),
            backoff_retries: self.backoff_retries.saturating_sub(earlier.backoff_retries),
            index_rebuilds: self.index_rebuilds.saturating_sub(earlier.index_rebuilds),
            index_hits: self.index_hits.saturating_sub(earlier.index_hits),
            index_misses: self.index_misses.saturating_sub(earlier.index_misses),
            sessions_accepted: self
                .sessions_accepted
                .saturating_sub(earlier.sessions_accepted),
            sessions_closed: self.sessions_closed.saturating_sub(earlier.sessions_closed),
            requests_admitted: self
                .requests_admitted
                .saturating_sub(earlier.requests_admitted),
            requests_shed: self.requests_shed.saturating_sub(earlier.requests_shed),
            deadline_rejects: self
                .deadline_rejects
                .saturating_sub(earlier.deadline_rejects),
            permit_waits: self.permit_waits.saturating_sub(earlier.permit_waits),
            // A high-water mark does not difference; the later peak stands.
            queue_peak_depth: self.queue_peak_depth,
            drain_micros: self.drain_micros.saturating_sub(earlier.drain_micros),
        }
    }

    /// Human-readable summary of the read-hot-path counters (buffer pool
    /// locality, late-materialization selectivity, zero-copy shipping), for
    /// the fig6_6 and chaos-soak printouts.
    pub fn read_path_summary(&self) -> String {
        let accesses = self.pool_hits + self.pool_misses;
        let hit_pct = if accesses == 0 {
            100.0
        } else {
            100.0 * self.pool_hits as f64 / accesses as f64
        };
        format!(
            "pool_hits={} pool_misses={} ({hit_pct:.1}% hit) evictions={} \
             rows_admitted={} rows_skipped_predecode={} bytes_zero_copy={} \
             index_rebuilds={} index_hits={} index_misses={}",
            self.pool_hits,
            self.pool_misses,
            self.evictions,
            self.scan_rows_admitted,
            self.scan_rows_skipped_predecode,
            self.scan_bytes_zero_copy,
            self.index_rebuilds,
            self.index_hits,
            self.index_misses,
        )
    }

    /// Human-readable summary of the commit-path durability counters: how
    /// well group commit and epoch batching are coalescing log forces, for
    /// the fig6_6 and chaos-soak printouts alongside `forced_writes`.
    pub fn commit_path_summary(&self) -> String {
        let mean = if self.epochs_committed == 0 {
            0.0
        } else {
            self.epoch_txns as f64 / self.epochs_committed as f64
        };
        format!(
            "forced_writes={} physical_syncs={} batched_syncs_saved={} \
             epochs={} epoch_txns={} (mean size {mean:.1}) \
             epoch_sizes[1|2-4|5-16|17-64|>64]={}|{}|{}|{}|{}",
            self.forced_writes,
            self.physical_syncs,
            self.batched_syncs_saved,
            self.epochs_committed,
            self.epoch_txns,
            self.epoch_size_1,
            self.epoch_size_2_4,
            self.epoch_size_5_16,
            self.epoch_size_17_64,
            self.epoch_size_gt_64,
        )
    }

    /// Human-readable summary of the chaos-layer and retry counters, for the
    /// soak report and the lossy-LAN experiment printouts.
    pub fn chaos_summary(&self) -> String {
        format!(
            "drops={} dups={} delays={} disconnects={} partition_drops={} rpc_timeouts={} rpc_retries={}",
            self.chaos_drops,
            self.chaos_dups,
            self.chaos_delays,
            self.chaos_disconnects,
            self.chaos_partition_drops,
            self.rpc_timeouts,
            self.rpc_retries,
        )
    }

    /// Human-readable summary of the membership and self-healing counters
    /// (runtime joins/decommissions, supervisor auto-repairs, seeded-backoff
    /// retries), for the fig6_6 and chaos-soak printouts.
    pub fn membership_summary(&self) -> String {
        format!(
            "joins={} decommissions={} auto_repairs={} backoff_retries={}",
            self.joins, self.decommissions, self.auto_repairs, self.backoff_retries,
        )
    }

    /// Human-readable summary of the front-door serving counters (session
    /// churn, admission/shed split, queue high-water mark, drain cost), for
    /// the fig6_6 and chaos-soak printouts.
    pub fn serve_summary(&self) -> String {
        let active = self.sessions_accepted.saturating_sub(self.sessions_closed);
        format!(
            "sessions_accepted={} sessions_closed={} sessions_active={active} \
             requests_admitted={} requests_shed={} deadline_rejects={} \
             permit_waits={} queue_peak_depth={} drain_micros={}",
            self.sessions_accepted,
            self.sessions_closed,
            self.requests_admitted,
            self.requests_shed,
            self.deadline_rejects,
            self.permit_waits,
            self.queue_peak_depth,
            self.drain_micros,
        )
    }

    /// Human-readable summary of the storage-fault-plane counters (scrub
    /// coverage, detections, repairs), for the fig6_6 and chaos-soak
    /// printouts next to the buffer-pool shard stats.
    pub fn scrub_summary(&self) -> String {
        format!(
            "disk_faults={} checksum_failures={} scrubbed={} repaired={} \
             repair_ranges={} repair_bytes={}",
            self.disk_faults_injected,
            self.checksum_failures,
            self.scrub_pages_scanned,
            self.pages_repaired,
            self.repair_ranges_fetched,
            self.repair_bytes_shipped,
        )
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "log_writes={} forced={} syncs={} pg_w={} pg_r={} msgs={} bytes={} commits={} aborts={}",
            self.log_writes,
            self.forced_writes,
            self.physical_syncs,
            self.page_writes,
            self.page_reads,
            self.messages_sent,
            self.bytes_sent,
            self.commits,
            self.aborts,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_diff() {
        let m = Metrics::new();
        m.add_forced_writes(2);
        m.add_messages_sent(5);
        let a = m.snapshot();
        m.add_forced_writes(1);
        let b = m.snapshot();
        let d = b.since(&a);
        assert_eq!(d.forced_writes, 1);
        assert_eq!(d.messages_sent, 0);
        assert_eq!(b.forced_writes, 3);
    }

    #[test]
    fn record_epoch_buckets_by_size() {
        let m = Metrics::new();
        for n in [1, 3, 16, 17, 200] {
            m.record_epoch(n);
        }
        let s = m.snapshot();
        assert_eq!(s.epochs_committed, 5);
        assert_eq!(s.epoch_txns, 1 + 3 + 16 + 17 + 200);
        assert_eq!(s.epoch_size_1, 1);
        assert_eq!(s.epoch_size_2_4, 1);
        assert_eq!(s.epoch_size_5_16, 1);
        assert_eq!(s.epoch_size_17_64, 1);
        assert_eq!(s.epoch_size_gt_64, 1);
        assert!(s.commit_path_summary().contains("mean size 47.4"));
    }

    #[test]
    fn queue_peak_is_a_maximum() {
        let m = Metrics::new();
        m.note_queue_depth(3);
        m.note_queue_depth(9);
        m.note_queue_depth(5);
        assert_eq!(m.queue_peak_depth(), 9);
        let a = m.snapshot();
        m.add_requests_shed(2);
        let d = m.snapshot().since(&a);
        // The peak is carried through `since`, not differenced to zero.
        assert_eq!(d.queue_peak_depth, 9);
        assert_eq!(d.requests_shed, 2);
        assert!(m.snapshot().serve_summary().contains("queue_peak_depth=9"));
    }

    #[test]
    fn clones_share_state() {
        let m = Metrics::new();
        let m2 = m.clone();
        m2.add_commits(4);
        assert_eq!(m.commits(), 4);
    }
}
