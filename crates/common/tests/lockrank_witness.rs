//! Regression tests for the runtime lock-rank witness: it must be armed in
//! debug builds, stay silent on the declared order, and actually fire on a
//! deliberate inversion. The chaos-soak pinned seeds (tests/chaos_soak.rs)
//! are the steady-state half of this contract — they run armed and must
//! stay green.

use harbor_common::lockrank::{acquire, held, is_armed, Rank};

#[test]
fn arming_tracks_debug_assertions() {
    assert_eq!(is_armed(), cfg!(debug_assertions));
}

#[test]
fn full_declared_order_is_silent() {
    let _a = acquire(Rank::Catalog);
    let _b = acquire(Rank::LockManager);
    let _c = acquire(Rank::TableMap);
    let _d = acquire(Rank::PoolShard);
    let _e = acquire(Rank::Frame);
    let _f = acquire(Rank::Wal);
    if is_armed() {
        assert_eq!(held().len(), 6);
    }
}

#[test]
fn skipping_ranks_is_silent() {
    // The order constrains relative position, not contiguity: the flush
    // path takes frame → wal without ever touching the catalog.
    let _frame = acquire(Rank::Frame);
    let _wal = acquire(Rank::Wal);
}

#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "lock-rank inversion")]
fn deliberate_inversion_fires() {
    // WAL (rank 5) then pool-shard (rank 3): the exact reverse of the
    // flush protocol's declared order.
    let _wal = acquire(Rank::Wal);
    let _shard = acquire(Rank::PoolShard);
}

#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "lock-rank inversion")]
fn frame_then_catalog_fires() {
    let _frame = acquire(Rank::Frame);
    let _catalog = acquire(Rank::Catalog);
}

#[test]
fn release_restores_legality() {
    let a = acquire(Rank::Wal);
    drop(a);
    // With the WAL rank released, the lowest rank is legal again.
    let _b = acquire(Rank::Catalog);
}
