//! ShimSan race regression: two threads touching a shared location with no
//! guard and no channel hand-off have no happens-before edge, and the
//! witness must say so by panicking — even when the wall clock happens to
//! serialize the accesses perfectly.
//!
//! The cross-thread hand-off below uses `std::sync::mpsc`, which ShimSan
//! deliberately does *not* instrument (all production code goes through the
//! shims): the accesses are strictly ordered in real time, yet carry no
//! tracked synchronization, which is exactly the bug shape the static
//! `lockset-race` rule flags ("field written with an empty lockset").

use harbor_common::shimsan::{self, RaceWitness};
use std::sync::mpsc;
use std::sync::Arc;

#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "ShimSan: data race")]
fn unguarded_cross_thread_writes_panic() {
    let w = Arc::new(RaceWitness::new());
    let (tx, rx) = mpsc::channel::<()>();
    let w2 = w.clone();
    let t = std::thread::spawn(move || {
        w2.check_write("unguarded cell");
        tx.send(()).unwrap();
    });
    // Real-time ordering without a tracked happens-before edge.
    rx.recv().unwrap();
    let _ = t.join();
    w.check_write("unguarded cell");
}

#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "ShimSan: data race")]
fn unguarded_read_after_foreign_write_panics() {
    let w = Arc::new(RaceWitness::new());
    let (tx, rx) = mpsc::channel::<()>();
    let w2 = w.clone();
    let t = std::thread::spawn(move || {
        w2.check_write("unguarded cell");
        tx.send(()).unwrap();
    });
    rx.recv().unwrap();
    let _ = t.join();
    w.check_read("unguarded cell");
}

#[test]
fn arming_matches_build_profile() {
    assert_eq!(shimsan::is_armed(), cfg!(debug_assertions));
    if !shimsan::is_armed() {
        // Release builds: witnesses are free and silent.
        let w = RaceWitness::new();
        w.check_write("noop");
        assert_eq!(shimsan::sync_edges(), 0);
        assert_eq!(shimsan::witness_checks(), 0);
    }
}
