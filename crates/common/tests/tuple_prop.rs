//! Property tests for the fixed-width tuple codec: arbitrary schemas and
//! conforming rows survive the on-disk encoding exactly, and encode to
//! exactly the declared byte width.

use harbor_common::codec::{Decoder, Encoder};
use harbor_common::{FieldType, Timestamp, Tuple, TupleDesc, Value};
use proptest::prelude::*;

fn field_type() -> impl Strategy<Value = FieldType> {
    prop_oneof![
        Just(FieldType::Int32),
        Just(FieldType::Int64),
        (1u16..24).prop_map(FieldType::FixedStr),
    ]
}

fn value_for(ty: FieldType) -> BoxedStrategy<Value> {
    match ty {
        FieldType::Int32 => any::<i32>().prop_map(Value::Int32).boxed(),
        FieldType::Int64 => any::<i64>().prop_map(Value::Int64).boxed(),
        FieldType::Time => (0u64..u64::MAX)
            .prop_map(|t| Value::Time(Timestamp(t)))
            .boxed(),
        FieldType::FixedStr(n) => {
            // ASCII so byte length == char count <= n.
            proptest::collection::vec(0x20u8..0x7f, 0..=n as usize)
                .prop_map(|bytes| Value::Str(String::from_utf8(bytes).unwrap()))
                .boxed()
        }
    }
}

fn schema_and_row() -> impl Strategy<Value = (Vec<FieldType>, Vec<Value>)> {
    proptest::collection::vec(field_type(), 1..10).prop_flat_map(|types| {
        let values: Vec<BoxedStrategy<Value>> = types.iter().map(|t| value_for(*t)).collect();
        (Just(types), values)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn fixed_encoding_round_trips_any_schema(
        (types, user_values) in schema_and_row(),
        ins in 1u64..u64::MAX,
        del in proptest::option::of(1u64..u64::MAX),
    ) {
        let names: Vec<String> = (0..types.len()).map(|i| format!("f{i}")).collect();
        let fields: Vec<(&str, FieldType)> = names
            .iter()
            .map(|n| n.as_str())
            .zip(types.iter().copied())
            .collect();
        let desc = TupleDesc::with_version_columns(fields);
        let tuple = Tuple::versioned(
            Timestamp(ins),
            del.map(Timestamp).unwrap_or(Timestamp::ZERO),
            user_values,
        );
        let mut enc = Encoder::new();
        tuple.write_fixed(&desc, &mut enc).unwrap();
        prop_assert_eq!(enc.len(), desc.byte_width(), "width is exactly as declared");
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let back = Tuple::read_fixed(&desc, &mut dec).unwrap();
        dec.finish().unwrap();
        prop_assert_eq!(back, tuple);
    }

    #[test]
    fn truncated_fixed_encoding_errors_cleanly(
        (types, user_values) in schema_and_row(),
        cut in 0usize..8,
    ) {
        let names: Vec<String> = (0..types.len()).map(|i| format!("f{i}")).collect();
        let fields: Vec<(&str, FieldType)> = names
            .iter()
            .map(|n| n.as_str())
            .zip(types.iter().copied())
            .collect();
        let desc = TupleDesc::with_version_columns(fields);
        let tuple = Tuple::versioned(Timestamp(1), Timestamp::ZERO, user_values);
        let mut enc = Encoder::new();
        tuple.write_fixed(&desc, &mut enc).unwrap();
        let bytes = enc.into_bytes();
        let cut = cut.min(bytes.len()).max(1);
        let truncated = &bytes[..bytes.len() - cut];
        let mut dec = Decoder::new(truncated);
        // Must error (no panic); the page layer guarantees full widths, so
        // any short read indicates corruption.
        prop_assert!(Tuple::read_fixed(&desc, &mut dec).is_err());
    }
}
